//! Observability tour: run a small durable rule workload with a live
//! metrics registry, EXPLAIN one insert through the Figure-1 match
//! path, then dump the Prometheus-style exposition — WAL fsyncs, shard
//! lock waits, per-attribute IBS stab work, cascade depths, all of it.
//!
//! Run with `cargo run --example observability`.

use predmatch::durable::{
    ActionRegistry, ActionSpec, DurableRuleEngine, Options, RuleSpec, SyncPolicy,
};
use predmatch::predicate::FunctionRegistry;
use predmatch::prelude::*;
use predmatch::rules::EventMask;
use std::sync::Arc;

fn spec(name: &str, condition: &str, msg: &str) -> RuleSpec {
    RuleSpec {
        name: name.into(),
        condition: condition.into(),
        mask: EventMask::INSERT_UPDATE,
        priority: 0,
        action: ActionSpec::Log(msg.into()),
    }
}

fn main() {
    let dir = std::env::temp_dir().join(format!("predmatch-observe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // One registry observes the whole stack: WAL, recovery, predicate
    // index shards, IBS-tree stabs, and rule firings.
    let registry = Arc::new(Registry::new());
    let mut engine = DurableRuleEngine::open_with_metrics(
        &dir,
        FunctionRegistry::default(),
        ActionRegistry::new(),
        Options {
            sync: SyncPolicy::Always,
            snapshot_every: Some(64),
        },
        registry.clone(),
    )
    .unwrap();

    engine
        .create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("age", AttrType::Int)
                .attr("salary", AttrType::Int)
                .attr("dept", AttrType::Str)
                .build(),
        )
        .unwrap();

    // The paper's example predicate plus two more, so the salary and
    // age attributes both carry interval indexes.
    engine
        .add_rule(spec(
            "underpaid-senior",
            "emp.salary < 20000 and emp.age > 50",
            "senior employee below 20k",
        ))
        .unwrap();
    engine
        .add_rule(spec(
            "young-hire",
            "emp.age < 25",
            "junior hire — assign a mentor",
        ))
        .unwrap();
    engine
        .add_rule(spec(
            "exec-band",
            "emp.salary >= 150000",
            "executive compensation review",
        ))
        .unwrap();

    // A small workload: single inserts (each one WAL append + fsync +
    // shard-locked match) and one batch.
    for i in 0..40i64 {
        engine
            .insert(
                "emp",
                vec![
                    Value::str(format!("emp{i}")),
                    Value::Int(22 + i % 45),
                    Value::Int(12_000 + i * 4_000),
                    Value::str(if i % 3 == 0 { "toys" } else { "tools" }),
                ],
            )
            .unwrap();
    }
    engine
        .insert_batch(
            "emp",
            (0..8i64)
                .map(|i| {
                    vec![
                        Value::str(format!("batch{i}")),
                        Value::Int(30 + i),
                        Value::Int(60_000),
                        Value::str("ops"),
                    ]
                })
                .collect(),
        )
        .unwrap();
    engine.snapshot().unwrap();

    // EXPLAIN one insert: the trace mirrors Figure 1 — relation hash,
    // one IBS stab per indexed attribute, the non-indexable sweep, and
    // the residual test on every partial match.
    let (trace, report) = engine
        .explain_insert(
            "emp",
            vec![
                Value::str("al"),
                Value::Int(61),
                Value::Int(12_000),
                Value::str("toys"),
            ],
        )
        .unwrap();
    println!("{trace}");
    println!(
        "=> fired {} rule(s): {}",
        report.fired.len(),
        report
            .fired
            .iter()
            .map(|(_, name)| name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );

    println!("\n--- metrics exposition ---");
    print!("{}", registry.render_text());

    let _ = std::fs::remove_dir_all(&dir);
}
