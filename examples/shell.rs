//! An interactive predicate-matching shell: define relations, register
//! rule predicates, insert tuples, and watch the Figure 1 index match
//! them — the paper's system as a toy console.
//!
//! ```text
//! cargo run --example shell            # interactive
//! cargo run --example shell -- --demo  # scripted demo
//! echo 'help' | cargo run --example shell
//! ```
//!
//! Commands:
//! ```text
//! relation <name> <attr>:<type> ...     create a relation (types: int, float, str, bool)
//! predicate <condition>                 register a predicate (disjunctions split)
//! rule <name> <condition>               add a rule; multi-relation conditions become joins
//! insert <relation> <value> ...         insert a tuple, show matches and rule firings
//! drop <id>                             remove a predicate by id
//! stats                                 show the index structure
//! list                                  list registered predicates
//! :memo                                 per-rule join-memo state (partial-match counts)
//! :metrics                              Prometheus text exposition of the match counters
//! :explain <relation> <value> ...       EXPLAIN the match path a tuple would take
//! :trace <path>                         drain the span ring to <path> as Chrome JSON
//! :top [k]                              the k most expensive rule cost accounts (default 10)
//! :slow                                 recent per-insert cost captures (the slow-op ring)
//! :advise                               workload-driven index recommendations (§5.2 costs)
//! help                                  this text
//! quit
//! ```

use predmatch::predicate::parse_predicates;
use predmatch::predindex::{Advisor, Matcher};
use predmatch::prelude::*;
use predmatch::rules::{Action, Rule, RuleEngine};
use predmatch::telemetry::{Profiler, Tracer, WorkloadStats};
use std::io::{self, BufRead, Write};
use std::sync::Arc;
use std::time::Instant;

struct Shell {
    engine: RuleEngine,
    index: PredicateIndex,
    sources: Vec<(PredicateIdWrap, String)>,
    registry: Arc<Registry>,
    tracer: Tracer,
    profiler: Profiler,
    advisor: Advisor,
}

type PredicateIdWrap = predmatch::predindex::PredicateId;

impl Shell {
    fn new() -> Self {
        // Live telemetry so :metrics and :trace have something to show;
        // the counters and the span ring cost nothing until rendered.
        let registry = Arc::new(Registry::new());
        let tracer = Tracer::new(predmatch::telemetry::DEFAULT_TRACE_CAPACITY);
        let mut index = PredicateIndex::new();
        index.attach_telemetry(&registry, tracer.clone());
        let mut engine = RuleEngine::new(Database::new());
        engine.attach_telemetry(Arc::clone(&registry), tracer.clone());
        // A zero threshold captures every insert in the slow-op ring,
        // so :slow doubles as a recent-op cost log in the shell.
        let profiler = Profiler::new(&registry);
        profiler.set_slow_threshold_nanos(0);
        engine.attach_profiler(profiler.clone());
        // One workload-accounts handle feeds both the shell's direct
        // index and the engine's, so :advise sees every stab.
        let workload = WorkloadStats::new(&registry);
        index.attach_workload(workload.clone());
        engine.attach_workload(workload.clone());
        let advisor = Advisor::new(workload);
        Shell {
            engine,
            index,
            sources: Vec::new(),
            registry,
            tracer,
            profiler,
            advisor,
        }
    }

    fn exec(&mut self, line: &str) -> Result<String, String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(String::new());
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "relation" => self.cmd_relation(rest),
            "predicate" => self.cmd_predicate(rest),
            "rule" => self.cmd_rule(rest),
            "insert" => self.cmd_insert(rest),
            "drop" => self.cmd_drop(rest),
            "stats" => Ok(self.index.stats().to_string()),
            "list" => Ok(self
                .sources
                .iter()
                .map(|(id, s)| format!("  {id}: {s}"))
                .collect::<Vec<_>>()
                .join("\n")),
            ":memo" => Ok(self.cmd_memo()),
            ":metrics" => Ok(self.registry.render_text()),
            ":explain" => self.cmd_explain(rest),
            ":trace" => self.cmd_trace(rest),
            ":top" => self.cmd_top(rest),
            ":slow" => Ok(self.profiler.render_slow_text()),
            ":advise" => Ok(self.advisor.render_text()),
            "help" => Ok(
                "commands: relation, predicate, rule, insert, drop, stats, list, \
                 :memo, :metrics, :explain, :trace, :top, :slow, :advise, help, quit"
                    .to_string(),
            ),
            other => Err(format!("unknown command {other:?} (try 'help')")),
        }
    }

    fn cmd_relation(&mut self, rest: &str) -> Result<String, String> {
        let mut parts = rest.split_whitespace();
        let name = parts
            .next()
            .ok_or("usage: relation <name> <attr>:<type> ...")?;
        let mut b = Schema::builder(name);
        let mut arity = 0;
        for spec in parts {
            let (attr, ty) = spec
                .split_once(':')
                .ok_or_else(|| format!("bad attribute spec {spec:?} (want name:type)"))?;
            let ty = match ty {
                "int" => AttrType::Int,
                "float" => AttrType::Float,
                "str" => AttrType::Str,
                "bool" => AttrType::Bool,
                other => return Err(format!("unknown type {other:?}")),
            };
            b = b.attr(attr, ty);
            arity += 1;
        }
        if arity == 0 {
            return Err("a relation needs at least one attribute".into());
        }
        self.engine
            .create_relation(b.build())
            .map_err(|e| e.to_string())?;
        Ok(format!("created relation {name} ({arity} attributes)"))
    }

    fn cmd_rule(&mut self, rest: &str) -> Result<String, String> {
        let (name, condition) = rest
            .split_once(' ')
            .ok_or("usage: rule <name> <condition>")?;
        let rule = Rule::builder(name)
            .when(condition.trim())
            .map_err(|e| e.to_string())?
            .then(Action::log(format!("{name} fired")))
            .build();
        let singles = rule.conditions.len();
        let joins = rule.joins.len();
        let id = self.engine.add_rule(rule).map_err(|e| e.to_string())?;
        let mut out = format!(
            "added rule {id:?} {name:?} ({singles} single-relation, {joins} join condition(s))"
        );
        if joins > 0 {
            out.push_str("; existing tuples pre-seeded the memo (see :memo)");
        }
        Ok(out)
    }

    fn cmd_memo(&self) -> String {
        let stats = self.engine.join_stats();
        if stats.is_empty() {
            return "no join rules registered".into();
        }
        let mut out = Vec::new();
        for (id, name, conds) in stats {
            out.push(format!("rule {id:?} {name:?}:"));
            for s in conds {
                let complete = s.level_counts.last().copied().unwrap_or(0);
                let partials: usize = s.level_counts.iter().take(s.level_counts.len() - 1).sum();
                out.push(format!(
                    "  {}: alpha {:?}, tokens per level {:?} ({partials} partial, {complete} complete), ~{} bytes",
                    s.relations.join(" ⋈ "),
                    s.alpha_counts,
                    s.level_counts,
                    s.approx_bytes,
                ));
            }
        }
        out.join("\n")
    }

    fn cmd_predicate(&mut self, rest: &str) -> Result<String, String> {
        let preds = parse_predicates(rest).map_err(|e| e.to_string())?;
        let mut out = Vec::new();
        for p in preds {
            let id = self
                .index
                .insert(p.clone(), self.engine.db().catalog())
                .map_err(|e| e.to_string())?;
            let rendered = p.to_source().unwrap_or_else(|| p.to_string());
            out.push(format!("registered {id}: {rendered}"));
            self.sources.push((id, rendered));
        }
        Ok(out.join("\n"))
    }

    /// Parses whitespace-separated values against a relation's schema.
    fn parse_values(&self, rel_name: &str, raw: &[&str]) -> Result<Vec<Value>, String> {
        let schema = self
            .engine
            .db()
            .catalog()
            .relation(rel_name)
            .ok_or_else(|| format!("no relation {rel_name:?}"))?
            .schema()
            .clone();
        if raw.len() != schema.arity() {
            return Err(format!(
                "{rel_name} takes {} values, got {}",
                schema.arity(),
                raw.len()
            ));
        }
        let mut values = Vec::with_capacity(raw.len());
        for (spec, attr) in raw.iter().zip(schema.attributes()) {
            let v = match attr.ty {
                AttrType::Int => Value::Int(spec.parse().map_err(|e| format!("{e}"))?),
                AttrType::Float => Value::Float(spec.parse().map_err(|e| format!("{e}"))?),
                AttrType::Bool => Value::Bool(spec.parse().map_err(|e| format!("{e}"))?),
                AttrType::Str => Value::str(spec.trim_matches('"')),
            };
            values.push(v);
        }
        Ok(values)
    }

    fn cmd_insert(&mut self, rest: &str) -> Result<String, String> {
        let mut parts = rest.split_whitespace();
        let rel_name = parts.next().ok_or("usage: insert <relation> <value> ...")?;
        let raw: Vec<&str> = parts.collect();
        let values = self.parse_values(rel_name, &raw)?;
        let tuple = Tuple::new(values.clone());
        let matches = self.index.match_tuple(rel_name, &tuple);
        let before = self.profiler.source_snapshot();
        let started = Instant::now();
        let report = self
            .engine
            .insert(rel_name, values)
            .map_err(|e| e.to_string())?;
        let cost = self.profiler.source_snapshot().delta_since(&before);
        self.profiler
            .record_request("insert", None, started.elapsed().as_nanos() as u64, cost);
        let mut out = if matches.is_empty() {
            format!("inserted {tuple}; no predicates match")
        } else {
            let lines: Vec<String> = matches
                .iter()
                .map(|m| {
                    let src = self
                        .sources
                        .iter()
                        .find(|(id, _)| id == m)
                        .map(|(_, s)| s.as_str())
                        .unwrap_or("?");
                    format!("  {m}: {src}")
                })
                .collect();
            format!("inserted {tuple}; matches:\n{}", lines.join("\n"))
        };
        for firing in &report.firings {
            if firing.bindings.is_empty() {
                out.push_str(&format!("\n  fired {:?}", firing.name));
            } else {
                let bound: Vec<String> = firing
                    .bindings
                    .iter()
                    .map(|b| format!("{}#{}{}", b.relation, b.id.0, b.tuple))
                    .collect();
                out.push_str(&format!(
                    "\n  fired {:?} on {}",
                    firing.name,
                    bound.join(" * ")
                ));
            }
        }
        Ok(out)
    }

    fn cmd_explain(&mut self, rest: &str) -> Result<String, String> {
        let mut parts = rest.split_whitespace();
        let rel_name = parts
            .next()
            .ok_or("usage: :explain <relation> <value> ...")?;
        let raw: Vec<&str> = parts.collect();
        let values = self.parse_values(rel_name, &raw)?;
        // Explain only — the tuple is probed, not stored.
        let trace = self.index.explain_tuple(rel_name, &Tuple::new(values));
        Ok(trace.to_string())
    }

    fn cmd_trace(&mut self, rest: &str) -> Result<String, String> {
        let path = rest.trim();
        if path.is_empty() {
            return Err("usage: :trace <path>".into());
        }
        let events = self.tracer.events().len();
        let json = self.tracer.drain_chrome_json();
        std::fs::write(path, json).map_err(|e| format!("cannot write {path:?}: {e}"))?;
        Ok(format!(
            "wrote {events} trace event(s) to {path} (load in Perfetto / chrome://tracing)"
        ))
    }

    fn cmd_top(&self, rest: &str) -> Result<String, String> {
        let k = match rest.trim() {
            "" => 10,
            raw => raw.parse().map_err(|_| "usage: :top [k]".to_string())?,
        };
        Ok(self.profiler.render_top_text(k))
    }

    fn cmd_drop(&mut self, rest: &str) -> Result<String, String> {
        let raw: u32 = rest
            .trim()
            .trim_start_matches('#')
            .parse()
            .map_err(|_| "usage: drop <id>".to_string())?;
        let id = predmatch::interval::IntervalId(raw);
        match self.index.remove(id) {
            Some(_) => {
                self.sources.retain(|(i, _)| *i != id);
                Ok(format!("dropped {id}"))
            }
            None => Err(format!("no predicate {id}")),
        }
    }
}

const DEMO: &str = r#"
relation emp name:str age:int salary:int dept:str
predicate emp.salary < 20000 and emp.age > 50
predicate 20000 <= emp.salary <= 30000
predicate emp.dept = "Shoe" or emp.dept = "Hat"
insert emp al 61 12000 Shoe
insert emp bo 30 25000 Sales
insert emp cy 45 90000 Hat
stats
list
drop 0
insert emp di 70 5000 Toys
relation dept name:str floor:int
rule same-dept emp.dept = dept.name and dept.floor = 1
insert dept Shoe 1
insert emp fi 28 21000 Shoe
:memo
:explain emp ed 55 18000 Shoe
:top
:slow
:advise
:metrics
"#;

fn main() {
    let demo = std::env::args().any(|a| a == "--demo");
    let mut shell = Shell::new();

    if demo {
        for line in DEMO.lines() {
            if line.trim().is_empty() {
                continue;
            }
            println!("> {line}");
            match shell.exec(line) {
                Ok(out) if !out.is_empty() => println!("{out}"),
                Ok(_) => {}
                Err(e) => println!("error: {e}"),
            }
        }
        return;
    }

    println!("predmatch shell — 'help' for commands, 'quit' to exit");
    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        print!("> ");
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        if line == "quit" || line == "exit" {
            break;
        }
        match shell.exec(line) {
            Ok(o) if !o.is_empty() => println!("{o}"),
            Ok(_) => {}
            Err(e) => println!("error: {e}"),
        }
    }
}
