//! Rule-base analysis with interval-overlap queries and index
//! introspection: "which rules could ever fire for salaries in the
//! 20k–30k band?", "how is the index laid out?".
//!
//! Point stabs answer *matching* (the paper's problem); the
//! `stab_interval` extension answers *coverage* questions a rule-base
//! administrator asks, and `PredicateIndex::stats` exposes the Figure 1
//! structure for capacity planning.
//!
//! Run with `cargo run --example rule_analysis`.

use predmatch::ibs::IbsTree;
use predmatch::interval::{Interval, IntervalId};
use predmatch::predindex::Matcher;
use predmatch::prelude::*;

fn main() {
    let mut db = Database::new();
    db.create_relation(
        Schema::builder("emp")
            .attr("age", AttrType::Int)
            .attr("salary", AttrType::Int)
            .build(),
    )
    .unwrap();

    // A small rule base over salaries and ages.
    let sources = [
        "emp.salary < 15000",
        "15000 <= emp.salary < 25000",
        "25000 <= emp.salary < 40000",
        "emp.salary >= 40000",
        "emp.salary = 22000",
        "emp.age > 60 and emp.salary < 30000",
        "isodd(emp.age)",
    ];
    let mut index = PredicateIndex::new();
    for s in sources {
        index
            .insert(parse_predicate(s).unwrap(), db.catalog())
            .unwrap();
    }

    // Structure introspection (Figure 1 live).
    println!("{}", index.stats());

    // Coverage analysis: rebuild the salary clauses in a standalone
    // IBS-tree and ask which predicates' salary ranges intersect the
    // 20k..30k band.
    let mut salary_tree: IbsTree<i64> = IbsTree::new();
    for (i, s) in sources.iter().enumerate() {
        let p = parse_predicate(s).unwrap();
        for c in p.clauses() {
            if let predmatch::predicate::Clause::Range { attr, interval } = c {
                if attr == "salary" {
                    // Extract the i64 payload of the Value interval.
                    let get = |b: Option<&Value>| match b {
                        Some(Value::Int(v)) => Some(*v),
                        _ => None,
                    };
                    let lo = get(interval.lo().value());
                    let hi = get(interval.hi().value());
                    let iv = match (lo, hi) {
                        (Some(a), Some(b)) if a == b => Interval::point(a),
                        (Some(a), Some(b)) => {
                            let lo = if interval.lo().is_inclusive() {
                                predmatch::interval::Lower::Inclusive(a)
                            } else {
                                predmatch::interval::Lower::Exclusive(a)
                            };
                            let hi = if interval.hi().is_inclusive() {
                                predmatch::interval::Upper::Inclusive(b)
                            } else {
                                predmatch::interval::Upper::Exclusive(b)
                            };
                            Interval::new(lo, hi).unwrap()
                        }
                        (Some(a), None) => {
                            if interval.lo().is_inclusive() {
                                Interval::at_least(a)
                            } else {
                                Interval::greater_than(a)
                            }
                        }
                        (None, Some(b)) => {
                            if interval.hi().is_inclusive() {
                                Interval::at_most(b)
                            } else {
                                Interval::less_than(b)
                            }
                        }
                        (None, None) => continue,
                    };
                    salary_tree.insert(IntervalId(i as u32), iv).unwrap();
                }
            }
        }
    }

    let band = Interval::closed_open(20_000i64, 30_000);
    let mut hits = salary_tree.stab_interval(&band);
    hits.sort();
    println!("salary predicates overlapping [20000, 30000):");
    for id in hits {
        println!("  #{}: {}", id.0, sources[id.index()]);
    }

    // Sanity: a concrete tuple in the band matches a subset of those.
    let t = db
        .insert("emp", vec![Value::Int(65), Value::Int(22_000)])
        .unwrap();
    println!("\ntuple (age 65, salary 22000) matches:");
    for id in index.match_tuple("emp", &t) {
        println!("  #{}: {}", id.0, sources[id.index()]);
    }
}
