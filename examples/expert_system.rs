//! An OPS5-flavoured forward-chaining demo: working-memory facts are
//! tuples, rules chain through intermediate conclusions.
//!
//! The paper positions its algorithm as a drop-in improvement for
//! exactly this kind of engine ("the algorithm could also be used to
//! improve the performance of forward-chaining inference engines for
//! large expert systems applications"); this example shows the rule
//! engine behaving like a small classifier while the §2.2 hash +
//! sequential layer is replaced by the IBS-tree index.
//!
//! Run with `cargo run --example expert_system`.

use predmatch::prelude::*;
use predmatch::rules::DbOp;

fn main() {
    let mut db = Database::new();
    // Working memory: patient observations.
    db.create_relation(
        Schema::builder("patient")
            .attr("name", AttrType::Str)
            .attr("temp_c10", AttrType::Int) // temperature * 10
            .attr("heart_rate", AttrType::Int)
            .attr("age", AttrType::Int)
            .build(),
    )
    .unwrap();
    // Derived facts asserted by rules.
    db.create_relation(
        Schema::builder("finding")
            .attr("name", AttrType::Str)
            .attr("kind", AttrType::Str)
            .attr("severity", AttrType::Int)
            .build(),
    )
    .unwrap();

    let mut engine = RuleEngine::new(db);

    // Layer 1: observations → findings.
    engine
        .add_rule(
            Rule::builder("fever")
                .when("patient.temp_c10 >= 380")
                .unwrap()
                .then(Action::callback(|ctx| {
                    let t = ctx.event.current().expect("insert").clone();
                    let severe = t.get(1) >= &Value::Int(395);
                    ctx.queue(DbOp::Insert {
                        relation: "finding".into(),
                        values: vec![
                            t.get(0).clone(),
                            Value::str("fever"),
                            Value::Int(if severe { 3 } else { 1 }),
                        ],
                    });
                }))
                .build(),
        )
        .unwrap();
    engine
        .add_rule(
            Rule::builder("tachycardia")
                .when("patient.heart_rate > 100 or patient.heart_rate < 40")
                .unwrap()
                .then(Action::callback(|ctx| {
                    let t = ctx.event.current().expect("insert").clone();
                    ctx.queue(DbOp::Insert {
                        relation: "finding".into(),
                        values: vec![t.get(0).clone(), Value::str("arrhythmia"), Value::Int(2)],
                    });
                }))
                .build(),
        )
        .unwrap();

    // Layer 2: findings → alerts (chained inference).
    engine
        .add_rule(
            Rule::builder("urgent")
                .when("finding.severity >= 3")
                .unwrap()
                .priority(100)
                .then(Action::log("URGENT"))
                .build(),
        )
        .unwrap();
    engine
        .add_rule(
            Rule::builder("observe")
                .when("1 <= finding.severity <= 2")
                .unwrap()
                .then(Action::log("keep under observation"))
                .build(),
        )
        .unwrap();

    let patients: [(&str, i64, i64, i64); 4] = [
        ("ann", 366, 72, 34),  // healthy
        ("ben", 384, 88, 51),  // mild fever
        ("cha", 401, 120, 67), // severe fever + tachycardia
        ("dot", 370, 38, 80),  // bradycardia
    ];
    for (name, temp, hr, age) in patients {
        let report = engine
            .insert(
                "patient",
                vec![
                    Value::str(name),
                    Value::Int(temp),
                    Value::Int(hr),
                    Value::Int(age),
                ],
            )
            .unwrap();
        println!(
            "assert {name}: {} rule firings across the chain",
            report.fired.len()
        );
    }

    println!("\nconclusions:");
    for line in engine.log() {
        println!("  {line}");
    }
    let findings = engine.db().catalog().relation("finding").unwrap();
    println!("\nderived facts ({}):", findings.len());
    for (_, t) in findings.iter() {
        println!("  finding{t}");
    }
}
