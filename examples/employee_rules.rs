//! Database triggers over the paper's EMP schema: monitoring and
//! integrity rules fire as personnel records change.
//!
//! Run with `cargo run --example employee_rules`.

use predmatch::prelude::*;
use predmatch::relation::TupleId;
use predmatch::rules::DbOp;

fn main() {
    let mut db = Database::new();
    db.create_relation(
        Schema::builder("emp")
            .attr("name", AttrType::Str)
            .attr("age", AttrType::Int)
            .attr("salary", AttrType::Int)
            .attr("dept", AttrType::Str)
            .build(),
    )
    .unwrap();
    db.create_relation(Schema::builder("audit").attr("note", AttrType::Str).build())
        .unwrap();

    let mut engine = RuleEngine::new(db);

    // Monitoring rule straight from the paper's first example predicate.
    engine
        .add_rule(
            Rule::builder("underpaid-senior")
                .when("emp.salary < 20000 and emp.age > 50")
                .unwrap()
                .then(Action::log("senior employee below 20k"))
                .priority(10)
                .build(),
        )
        .unwrap();

    // Integrity rule: salaries are clamped into a legal band.
    engine
        .add_rule(
            Rule::builder("salary-cap")
                .when("emp.salary > 200000")
                .unwrap()
                .then(Action::callback(|ctx| {
                    let t = ctx.event.current().expect("insert/update").clone();
                    ctx.log(format!("[salary-cap] clamping {}", t));
                    ctx.queue(DbOp::UpdateCurrent {
                        values: vec![
                            t.get(0).clone(),
                            t.get(1).clone(),
                            Value::Int(200_000),
                            t.get(3).clone(),
                        ],
                    });
                }))
                .priority(20)
                .build(),
        )
        .unwrap();

    // Forward chaining: salary band changes leave an audit trail.
    engine
        .add_rule(
            Rule::builder("audit-trail")
                .when("20000 <= emp.salary <= 30000 or emp.salary = 200000")
                .unwrap()
                .then(Action::callback(|ctx| {
                    let t = ctx.event.current().expect("insert/update").clone();
                    ctx.queue(DbOp::Insert {
                        relation: "audit".into(),
                        values: vec![Value::str(format!("band check: {t}"))],
                    });
                }))
                .build(),
        )
        .unwrap();

    let staff: [(&str, i64, i64, &str); 4] = [
        ("al", 61, 12_000, "Shoe"),
        ("bo", 30, 25_000, "Sales"),
        ("cy", 45, 450_000, "Exec"),
        ("di", 28, 55_000, "Eng"),
    ];
    for (name, age, salary, dept) in staff {
        let report = engine
            .insert(
                "emp",
                vec![
                    Value::str(name),
                    Value::Int(age),
                    Value::Int(salary),
                    Value::str(dept),
                ],
            )
            .expect("insert runs the chain");
        println!(
            "insert {name:>3}: fired {:?}",
            report
                .fired
                .iter()
                .map(|(_, n)| n.as_str())
                .collect::<Vec<_>>()
        );
    }

    // A raise that drops someone into the monitored band.
    let al: TupleId = engine
        .db()
        .catalog()
        .relation("emp")
        .unwrap()
        .iter()
        .next()
        .unwrap()
        .0;
    engine
        .update(
            "emp",
            al,
            vec![
                Value::str("al"),
                Value::Int(61),
                Value::Int(21_000),
                Value::str("Shoe"),
            ],
        )
        .unwrap();

    println!("\nengine log:");
    for line in engine.log() {
        println!("  {line}");
    }
    println!(
        "\naudit rows: {}",
        engine.db().catalog().relation("audit").unwrap().len()
    );
    println!("total rule firings: {}", engine.total_fired());
}
