//! Quickstart: the paper's predicate-matching pipeline end to end.
//!
//! Run with `cargo run --example quickstart`.

use predmatch::prelude::*;

fn main() {
    // 1. A database with the paper's EMP relation (§1).
    let mut db = Database::new();
    db.create_relation(
        Schema::builder("emp")
            .attr("name", AttrType::Str)
            .attr("age", AttrType::Int)
            .attr("salary", AttrType::Int)
            .attr("dept", AttrType::Str)
            .build(),
    )
    .expect("fresh relation");

    // 2. The four example predicates from the paper's introduction.
    let sources = [
        "emp.salary < 20000 and emp.age > 50",
        "20000 <= emp.salary <= 30000",
        r#"emp.dept = "Salesperson""#,
        r#"isodd(emp.age) and emp.dept = "Shoe""#,
    ];

    // 3. Register them in the Figure 1 predicate index.
    let mut index = PredicateIndex::new();
    let mut ids = Vec::new();
    for src in sources {
        let pred = parse_predicate(src).expect("valid predicate source");
        let id = index.insert(pred, db.catalog()).expect("registers cleanly");
        println!("registered {id}: {src}");
        ids.push(id);
    }

    // 4. Insert tuples; each insert is matched against all predicates.
    let people: [(&str, i64, i64, &str); 4] = [
        ("al", 61, 12_000, "Shoe"),
        ("bo", 30, 25_000, "Salesperson"),
        ("cy", 53, 19_000, "Toys"),
        ("di", 41, 99_000, "Shoe"),
    ];
    println!();
    for (name, age, salary, dept) in people {
        let tuple = db
            .insert(
                "emp",
                vec![
                    Value::str(name),
                    Value::Int(age),
                    Value::Int(salary),
                    Value::str(dept),
                ],
            )
            .expect("typed tuple");
        let matches = index.match_tuple("emp", &tuple);
        println!("{name:>3} {tuple} matches {matches:?}");
    }

    // 5. The IBS-tree is also usable directly as a dynamic interval
    //    index (conclusion: "useful anywhere an index for intervals is
    //    required which must be dynamically updatable").
    let mut tree: IbsTree<i64> = IbsTree::new();
    tree.insert(predmatch::interval::IntervalId(0), Interval::closed(9, 19))
        .unwrap();
    tree.insert(predmatch::interval::IntervalId(1), Interval::at_most(17))
        .unwrap();
    println!("\nIBS-tree stab at 10 -> {:?}", tree.stab(&10));
    println!(
        "IBS-tree height {}, markers {}",
        tree.height(),
        tree.marker_count()
    );
}
