//! One-of-everything tour of the rule server's wire protocol.
//!
//! ```text
//! cargo run --release --example rule_server                   # in-process server
//! cargo run --release --example rule_server -- --addr HOST:PORT   # running daemon
//! ```
//!
//! Exercises every request opcode exactly as a real client would —
//! ping, DDL, all four mutations, rule add/remove, subscribe/event/
//! unsubscribe, health, sync — printing one `ok <opcode>` line per
//! step. CI runs this against a freshly started daemon as the protocol
//! smoke test.

use durable::{ActionRegistry, ActionSpec, DurableRuleEngine, Options, RuleSpec};
use predicate::FunctionRegistry;
use relation::{AttrType, Schema, TupleId, Value};
use rules::EventMask;
use ruleserv::{serve, Client, ServerOptions};
use std::time::Duration;

fn main() {
    if let Err(e) = run() {
        eprintln!("rule_server example: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let addr = match (args.next().as_deref(), args.next()) {
        (Some("--addr"), Some(addr)) => Some(addr),
        (None, _) => None,
        _ => {
            eprintln!("usage: rule_server [--addr HOST:PORT]");
            std::process::exit(2);
        }
    };

    // No daemon given: serve in-process over a throwaway directory.
    let mut local = None;
    let target = match addr {
        Some(addr) => addr.parse()?,
        None => {
            let dir = std::env::temp_dir().join(format!("rule-server-ex-{}", std::process::id()));
            if dir.exists() {
                std::fs::remove_dir_all(&dir)?;
            }
            let engine = DurableRuleEngine::open(
                &dir,
                FunctionRegistry::default(),
                ActionRegistry::new(),
                Options::default(),
            )?;
            let server = serve("127.0.0.1:0", engine, ServerOptions::default())?;
            let addr = server.addr();
            local = Some((server, dir));
            addr
        }
    };

    let mut client = Client::connect(target)?;
    let mut watcher = Client::connect(target)?;

    client.ping()?;
    println!("ok ping");

    client.create_relation(
        Schema::builder("ex_emp")
            .attr("name", AttrType::Str)
            .attr("salary", AttrType::Int)
            .build(),
    )?;
    println!("ok create_relation");

    let rule = client.add_rule(RuleSpec {
        name: "ex_rich".into(),
        condition: "ex_emp.salary > 1000".into(),
        mask: EventMask::INSERT_UPDATE,
        priority: 0,
        action: ActionSpec::Log("well paid".into()),
    })?;
    println!("ok add_rule (rule {rule})");

    watcher.subscribe()?;
    println!("ok subscribe");

    let ack = client.insert("ex_emp", vec![Value::Str("ann".into()), Value::Int(2000)])?;
    println!(
        "ok insert (seq {}, fired {:?})",
        ack.seq,
        ack.fired
            .iter()
            .map(|(_, name)| name.as_str())
            .collect::<Vec<_>>()
    );

    let event = watcher
        .wait_event(Duration::from_secs(5))?
        .ok_or("no event pushed to the subscriber")?;
    println!("ok event (rule {} at seq {})", event.rule, event.seq);

    let upd = client.update(
        "ex_emp",
        TupleId(0),
        vec![Value::Str("ann".into()), Value::Int(500)],
    )?;
    println!("ok update (seq {})", upd.seq);

    let batch = client.insert_batch(
        "ex_emp",
        vec![
            vec![Value::Str("bob".into()), Value::Int(1500)],
            vec![Value::Str("cho".into()), Value::Int(700)],
        ],
    )?;
    println!(
        "ok insert_batch (seq {}, {} firing(s))",
        batch.seq,
        batch.fired.len()
    );

    let del = client.delete("ex_emp", TupleId(0))?;
    println!("ok delete (seq {})", del.seq);

    let health = client.health()?;
    println!("ok health ({})", health.lines().next().unwrap_or(""));

    client.sync()?;
    println!("ok sync");

    watcher.unsubscribe()?;
    println!("ok unsubscribe");

    client.remove_rule(rule)?;
    println!("ok remove_rule");

    client.drop_relation("ex_emp")?;
    println!("ok drop_relation");

    drop(client);
    drop(watcher);
    if let Some((server, dir)) = local {
        server.shutdown();
        let _ = std::fs::remove_dir_all(dir);
    }
    println!("all opcodes round-tripped");
    Ok(())
}
