//! The IBS-tree as a general dynamic interval index, outside the rule
//! system — the conclusion's "VLSI CAD tools, geographic information
//! systems, and other applications that deal with geometric data".
//!
//! Scenario: a scheduling service tracks meeting-room bookings as time
//! intervals (minutes of the day) and answers "which bookings cover
//! minute X?" while bookings are created and cancelled on-line. The same
//! workload is answered by every interval structure in the workspace to
//! show they agree and how their update capabilities differ.
//!
//! Run with `cargo run --release --example interval_analytics`.

use predmatch::altindex::{
    BulkBuild, CenteredIntervalTree, DynamicStabIndex, IntervalSkipList, IntervalTreap,
    NaiveIntervalList, SegmentTree, StabIndex,
};
use predmatch::interval::{Interval, IntervalId};
use predmatch::prelude::IbsTree;
use std::time::Instant;

const BOOKINGS: u32 = 20_000;

fn booking(i: u32) -> Interval<i32> {
    let start = ((i as i64 * 37) % 1380) as i32;
    let len = ((i as i64 * 13) % 170 + 10) as i32;
    Interval::closed_open(start, start + len)
}

fn main() {
    let items: Vec<(IntervalId, Interval<i32>)> =
        (0..BOOKINGS).map(|i| (IntervalId(i), booking(i))).collect();

    // Dynamic structures build incrementally, static ones bulk-build.
    let t0 = Instant::now();
    let mut ibs: IbsTree<i32> = IbsTree::new();
    for (id, iv) in &items {
        ibs.insert(*id, iv.clone()).unwrap();
    }
    let ibs_build = t0.elapsed();

    let t0 = Instant::now();
    let seg = SegmentTree::build(items.clone());
    let seg_build = t0.elapsed();

    let cit = CenteredIntervalTree::build(items.clone());
    let treap = IntervalTreap::build(items.clone());
    let skip = IntervalSkipList::build(items.clone());
    let naive = NaiveIntervalList::build(items.clone());

    println!("{BOOKINGS} bookings indexed");
    println!(
        "  IBS-tree: built in {ibs_build:?}, height {}, {} markers",
        ibs.height(),
        ibs.marker_count()
    );
    println!("  segment tree: built in {seg_build:?} (static)");

    // Peak occupancy probe: every structure must agree.
    let mut peak = (0, 0usize);
    for minute in 0..1440 {
        let n = ibs.stab_count(&minute);
        if n > peak.1 {
            peak = (minute, n);
        }
        let want = {
            let mut v = naive.stab(&minute);
            v.sort_unstable();
            v
        };
        for (name, got) in [
            ("ibs", StabIndex::stab(&ibs, &minute)),
            ("segment", seg.stab(&minute)),
            ("interval-tree", cit.stab(&minute)),
            ("treap", treap.stab(&minute)),
            ("skip-list", skip.stab(&minute)),
        ] {
            let mut got = got;
            got.sort_unstable();
            assert_eq!(got, want, "{name} diverged at minute {minute}");
        }
    }
    println!("\nall six structures agree at every minute of the day");
    println!("peak occupancy: {} bookings at minute {}", peak.1, peak.0);

    // Cancellations arrive: only the dynamic structures keep up without
    // a rebuild (the IBS-tree's reason for existing, §4.1).
    let t0 = Instant::now();
    let mut ibs2 = ibs.clone();
    let mut treap2 = treap;
    let mut skip2 = skip;
    for i in (0..BOOKINGS).step_by(2) {
        ibs2.remove(IntervalId(i)).unwrap();
        DynamicStabIndex::remove(&mut treap2, IntervalId(i)).unwrap();
        DynamicStabIndex::remove(&mut skip2, IntervalId(i)).unwrap();
    }
    println!(
        "\ncancelled {} bookings dynamically in {:?} (IBS, treap, skip list)",
        BOOKINGS / 2,
        t0.elapsed()
    );
    let t0 = Instant::now();
    let remaining: Vec<_> = (0..BOOKINGS)
        .filter(|i| i % 2 == 1)
        .map(|i| (IntervalId(i), booking(i)))
        .collect();
    let _seg2 = SegmentTree::build(remaining);
    println!("segment tree needed a full rebuild: {:?}", t0.elapsed());

    let noon = 720;
    println!(
        "\nbookings covering noon after cancellations: {}",
        ibs2.stab_count(&noon)
    );
}
