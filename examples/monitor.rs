//! Live monitoring demo: a durable rule engine under load with the
//! telemetry exposition server attached.
//!
//! ```text
//! cargo run --release --example monitor -- --port 9898 --seconds 5 --trace-out trace.json
//! # elsewhere:
//! curl -s http://127.0.0.1:9898/metrics | head
//! curl -s http://127.0.0.1:9898/health
//! curl -s http://127.0.0.1:9898/trace > trace.json   # drains the span ring
//! curl -s http://127.0.0.1:9898/profile              # cost accounts + quantiles + slow ops
//! curl -s http://127.0.0.1:9898/top                  # the 10 most expensive rule accounts
//! curl -s http://127.0.0.1:9898/advisor              # workload-driven index recommendations
//! ```
//!
//! The workload is a two-level cascade (underpaid employees raise
//! alerts, level-2 alerts escalate) driven in small batches until
//! `--seconds` elapse, so every span family — cascade levels, match
//! phases, WAL appends and fsyncs, snapshots — shows up in the ring.
//! On exit the remaining ring is written to `--trace-out` as Chrome
//! trace-event JSON (loadable in Perfetto), the server shuts down
//! gracefully, and the scratch durable directory is removed.
//!
//! CI uses this binary as its smoke test: start it, curl the
//! endpoints, keep the trace as an artifact.

use predmatch::durable::{ActionRegistry, ActionSpec, DurableRuleEngine, Options, RuleSpec};
use predmatch::predicate::FunctionRegistry;
use predmatch::predindex::Advisor;
use predmatch::prelude::*;
use predmatch::rules::{DbOp, EventMask};
use predmatch::telemetry::{
    chrome_trace_json, serve_with_advisor, AdvisorHook, Profiler, Tracer, WorkloadStats,
    DEFAULT_TRACE_CAPACITY,
};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Config {
    port: u16,
    seconds: u64,
    trace_out: Option<String>,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        port: 0,
        seconds: 5,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--port" => {
                cfg.port = value("--port").parse().unwrap_or_else(|e| {
                    eprintln!("bad --port: {e}");
                    std::process::exit(2);
                })
            }
            "--seconds" => {
                cfg.seconds = value("--seconds").parse().unwrap_or_else(|e| {
                    eprintln!("bad --seconds: {e}");
                    std::process::exit(2);
                })
            }
            "--trace-out" => cfg.trace_out = Some(value("--trace-out")),
            other => {
                eprintln!(
                    "unknown flag {other:?}; usage: monitor [--port P] [--seconds S] [--trace-out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    cfg
}

fn build_engine(
    dir: &std::path::Path,
    registry: Arc<Registry>,
    tracer: Tracer,
) -> DurableRuleEngine {
    let mut actions = ActionRegistry::new();
    actions.register("raise-alert", |ctx| {
        ctx.queue(DbOp::Insert {
            relation: "alerts".into(),
            values: vec![Value::str("underpaid"), Value::Int(2)],
        });
    });
    let mut engine = DurableRuleEngine::open_with_telemetry(
        dir,
        FunctionRegistry::default(),
        actions,
        Options {
            snapshot_every: Some(256),
            ..Options::default()
        },
        registry,
        tracer,
    )
    .expect("fresh durable dir opens");
    engine
        .create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("age", AttrType::Int)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .expect("create emp");
    engine
        .create_relation(
            Schema::builder("alerts")
                .attr("kind", AttrType::Str)
                .attr("level", AttrType::Int)
                .build(),
        )
        .expect("create alerts");
    engine
        .add_rule(RuleSpec {
            name: "raise-alert".into(),
            condition: "emp.salary < 1000".into(),
            mask: EventMask::INSERT_UPDATE,
            priority: 0,
            action: ActionSpec::Named("raise-alert".into()),
        })
        .expect("add raise-alert");
    engine
        .add_rule(RuleSpec {
            name: "escalate".into(),
            condition: "alerts.level >= 2".into(),
            mask: EventMask::INSERT_UPDATE,
            priority: 0,
            action: ActionSpec::Log("escalated".into()),
        })
        .expect("add escalate");
    engine
}

fn main() {
    let cfg = parse_args();
    let registry = Arc::new(Registry::new());
    let tracer = Tracer::new(DEFAULT_TRACE_CAPACITY);
    let dir = std::env::temp_dir().join(format!("predmatch-monitor-{}", std::process::id()));

    let mut built = build_engine(&dir, registry.clone(), tracer.clone());
    // Cost attribution on: per-rule accounts feed /profile and /top,
    // and inserts slower than 50ms land in the slow-op ring.
    let profiler = Profiler::new(&registry);
    profiler.set_slow_threshold_nanos(50_000_000);
    built.attach_profiler(profiler.clone());
    // Workload accounts + index advisor: /advisor serves the ranked
    // §5.2 cost projection, and flight dumps carry the text report.
    let workload = WorkloadStats::new(&registry);
    built.attach_workload(workload.clone());
    let advisor = Advisor::new(workload);
    let flight_advisor = advisor.clone();
    built.attach_advisor(move || flight_advisor.render_text());
    let engine = Arc::new(Mutex::new(built));

    // /health reports through the engine (WAL seq, rule count, shard
    // imbalance); the workload shares it behind a mutex.
    let health_engine = engine.clone();
    let json_advisor = advisor.clone();
    let server = serve_with_advisor(
        &format!("127.0.0.1:{}", cfg.port),
        registry.clone(),
        tracer.clone(),
        Some(Box::new(move || {
            health_engine.lock().expect("engine lock").health_text()
        })),
        profiler,
        Some(AdvisorHook::new(
            move || json_advisor.report_json(),
            move || advisor.metrics_comment_lines(),
        )),
    )
    .expect("exposition server binds");
    // Parsed by CI; keep the format stable.
    println!("serving on http://{}", server.addr());
    println!("  curl http://{}/metrics", server.addr());
    println!("  curl http://{}/health", server.addr());
    println!("  curl http://{}/trace", server.addr());
    println!("  curl http://{}/profile", server.addr());
    println!("  curl http://{}/top", server.addr());
    println!("  curl http://{}/advisor", server.addr());

    let deadline = Instant::now() + Duration::from_secs(cfg.seconds);
    let mut i: i64 = 0;
    let mut fired_total = 0u64;
    while Instant::now() < deadline {
        let mut e = engine.lock().expect("engine lock");
        for _ in 0..16 {
            // Every 4th employee is underpaid and triggers the cascade.
            let salary = if i % 4 == 0 {
                500
            } else {
                5_000 + (i % 100) * 10
            };
            let report = e
                .insert(
                    "emp",
                    vec![
                        Value::str(format!("e{i}")),
                        Value::Int(20 + (i % 50)),
                        Value::Int(salary),
                    ],
                )
                .expect("insert");
            fired_total += report.fired.len() as u64;
            i += 1;
        }
        drop(e);
        std::thread::sleep(Duration::from_millis(20));
    }

    println!("workload done: {i} inserts, {fired_total} rule firings");
    if let Some(path) = &cfg.trace_out {
        let json = chrome_trace_json(&tracer.events());
        std::fs::write(path, json).expect("write trace");
        println!("trace written to {path}");
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
