//! The grocery-store stock-reordering application from §3 of the paper,
//! implemented both ways the paper contrasts:
//!
//! * **rule-per-item** (the anti-pattern): one reorder rule for every
//!   item, each testing `stock.level < <that item's threshold>` — tens of
//!   thousands of rules;
//! * **data-driven** (the recommended design): the threshold is a field
//!   of the ITEMS relation and a *single* rule compares the two fields.
//!
//! "This second implementation is clearly preferable" — the example
//! shows both give the same reorders, and how many predicates each
//! design puts in the index.
//!
//! Run with `cargo run --release --example stock_reorder`.

use predmatch::prelude::*;
use std::time::Instant;

const ITEMS: usize = 2_000;

/// Deterministic pseudo-random threshold per item.
fn threshold(item: usize) -> i64 {
    (item as i64 * 37 + 11) % 90 + 10
}

fn item_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        Schema::builder("stock")
            .attr("item", AttrType::Int)
            .attr("level", AttrType::Int)
            .attr("threshold", AttrType::Int)
            .build(),
    )
    .unwrap();
    db
}

/// Design A: one rule per item. Every stock update is matched against
/// ITEMS predicates (all on the same two attributes).
fn rule_per_item() -> RuleEngine {
    let mut engine = RuleEngine::new(item_db());
    for item in 0..ITEMS {
        engine
            .add_rule(
                Rule::builder(format!("reorder-{item}"))
                    .when(&format!(
                        "stock.item = {item} and stock.level < {}",
                        threshold(item)
                    ))
                    .unwrap()
                    .then(Action::log("reorder"))
                    .build(),
            )
            .unwrap();
    }
    engine
}

/// Design B: the threshold lives in the data; one rule with an opaque
/// comparison between two fields of the same tuple stands in for the
/// paper's "single rule which compares the current stock level to the
/// re-order stock level".
fn data_driven() -> RuleEngine {
    let mut engine = RuleEngine::new(item_db());
    engine
        .add_rule(
            Rule::builder("reorder")
                // level < 100 is the indexable guard (levels are always
                // below 100 when a reorder can trigger); the exact
                // field-to-field comparison runs in the action.
                .when("stock.level < 100")
                .unwrap()
                .then(Action::callback(|ctx| {
                    let t = ctx.event.current().expect("insert/update");
                    let (level, threshold) = (t.get(1).clone(), t.get(2).clone());
                    if level < threshold {
                        ctx.log(format!("[reorder] reorder: stock{t}"));
                    }
                }))
                .build(),
        )
        .unwrap();
    engine
}

fn run(label: &str, mut engine: RuleEngine) -> usize {
    let start = Instant::now();
    for item in 0..ITEMS {
        // Each item's stock arrives; a third dips below its threshold.
        let level = match item % 3 {
            0 => threshold(item) - 5,
            _ => threshold(item) + 40,
        };
        engine
            .insert(
                "stock",
                vec![
                    Value::Int(item as i64),
                    Value::Int(level),
                    Value::Int(threshold(item)),
                ],
            )
            .unwrap();
    }
    let reorders = engine
        .log()
        .iter()
        .filter(|l| l.contains("reorder"))
        .count();
    println!(
        "{label:>14}: {reorders} reorders, {} rules, {:?} for {ITEMS} stock updates",
        engine.rule_count(),
        start.elapsed()
    );
    reorders
}

fn main() {
    println!("stock reordering for {ITEMS} items, two designs (paper §3):\n");
    let a = run("rule-per-item", rule_per_item());
    let b = run("data-driven", data_driven());
    assert_eq!(a, b, "both designs must order the same restocks");
    println!("\nidentical reorder decisions; the data-driven design keeps the");
    println!("rule base (and the predicate index) constant-size as the catalog grows.");
}
