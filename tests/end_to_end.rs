//! Cross-crate integration: database + parser + predicate index + rule
//! engine working together through the public facade.

use predmatch::predindex::{
    HashSequentialMatcher, PhysicalLockingMatcher, RTreeMatcher, SequentialMatcher,
};
use predmatch::prelude::*;
use predmatch::rules::DbOp;

fn company_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        Schema::builder("emp")
            .attr("name", AttrType::Str)
            .attr("age", AttrType::Int)
            .attr("salary", AttrType::Int)
            .attr("dept", AttrType::Str)
            .build(),
    )
    .unwrap();
    db.create_relation(
        Schema::builder("dept")
            .attr("dname", AttrType::Str)
            .attr("headcount", AttrType::Int)
            .attr("budget", AttrType::Int)
            .build(),
    )
    .unwrap();
    db
}

#[test]
fn parsed_predicates_match_through_the_index() {
    let mut db = company_db();
    let mut index = PredicateIndex::new();
    let sources = [
        "emp.salary < 20000 and emp.age > 50",
        "20000 <= emp.salary <= 30000",
        r#"emp.dept = "Salesperson""#,
        r#"isodd(emp.age) and emp.dept = "Shoe""#,
        "dept.budget > 1000000",
    ];
    let ids: Vec<_> = sources
        .iter()
        .map(|s| {
            index
                .insert(parse_predicate(s).unwrap(), db.catalog())
                .unwrap()
        })
        .collect();

    let t = db
        .insert(
            "emp",
            vec![
                Value::str("al"),
                Value::Int(61),
                Value::Int(12_000),
                Value::str("Shoe"),
            ],
        )
        .unwrap();
    assert_eq!(index.match_tuple("emp", &t), vec![ids[0], ids[3]]);

    let d = db
        .insert(
            "dept",
            vec![Value::str("toys"), Value::Int(12), Value::Int(2_000_000)],
        )
        .unwrap();
    assert_eq!(index.match_tuple("dept", &d), vec![ids[4]]);
    // Tuples never cross relations.
    assert_eq!(index.match_tuple("emp", &t).len(), 2);
}

#[test]
fn index_and_baselines_agree_on_a_realistic_workload() {
    let mut db = company_db();
    // Populate and analyze so selectivity-driven clause choice is
    // exercised.
    for i in 0..500i64 {
        db.insert(
            "emp",
            vec![
                Value::str(format!("e{i}")),
                Value::Int(20 + i % 45),
                Value::Int(10_000 + (i * 137) % 90_000),
                Value::str(if i % 3 == 0 { "Shoe" } else { "Sales" }),
            ],
        )
        .unwrap();
    }
    db.catalog_mut().analyze();

    let sources: Vec<String> = (0..60)
        .map(|i| match i % 5 {
            0 => format!("emp.age = {}", 20 + i % 45),
            1 => format!("emp.salary < {}", 15_000 + i * 1_000),
            2 => format!("{} <= emp.salary <= {}", 20_000 + i * 500, 30_000 + i * 500),
            3 => format!("emp.age > {} and emp.salary >= {}", 25 + i % 20, 40_000),
            _ => r#"isodd(emp.age) and emp.dept = "Shoe""#.to_string(),
        })
        .collect();

    let mut index = PredicateIndex::new();
    let mut seq = SequentialMatcher::new();
    let mut hash = HashSequentialMatcher::new();
    let mut lock = PhysicalLockingMatcher::with_indexed_attrs(db.catalog(), [("emp", "salary")]);
    let mut rt = RTreeMatcher::new();
    for s in &sources {
        let p = parse_predicate(s).unwrap();
        index.insert(p.clone(), db.catalog()).unwrap();
        seq.insert(p.clone(), db.catalog()).unwrap();
        hash.insert(p.clone(), db.catalog()).unwrap();
        lock.insert(p.clone(), db.catalog()).unwrap();
        rt.insert(p, db.catalog()).unwrap();
    }

    let rel = db.catalog().relation("emp").unwrap();
    for (_, t) in rel.iter().take(200) {
        let want = seq.match_tuple("emp", t);
        assert_eq!(index.match_tuple("emp", t), want, "index vs oracle");
        assert_eq!(hash.match_tuple("emp", t), want, "hash vs oracle");
        assert_eq!(lock.match_tuple("emp", t), want, "locking vs oracle");
        assert_eq!(rt.match_tuple("emp", t), want, "rtree vs oracle");
    }
}

#[test]
fn rule_engine_chains_across_relations() {
    let mut engine = RuleEngine::new(company_db());
    // Hiring into a department bumps its headcount; a full department
    // logs a capacity alert.
    engine
        .add_rule(
            Rule::builder("hire-shoe")
                .when(r#"emp.dept = "Shoe""#)
                .unwrap()
                .then(Action::callback(|ctx| {
                    ctx.queue(DbOp::Insert {
                        relation: "dept".into(),
                        values: vec![Value::str("Shoe"), Value::Int(1), Value::Int(0)],
                    });
                }))
                .build(),
        )
        .unwrap();
    engine
        .add_rule(
            Rule::builder("dept-watch")
                .when("dept.headcount >= 1")
                .unwrap()
                .then(Action::log("department grew"))
                .build(),
        )
        .unwrap();

    let report = engine
        .insert(
            "emp",
            vec![
                Value::str("zed"),
                Value::Int(33),
                Value::Int(44_000),
                Value::str("Shoe"),
            ],
        )
        .unwrap();
    assert_eq!(report.fired.len(), 2);
    assert!(engine.log().iter().any(|l| l.contains("department grew")));
}

#[test]
fn predicates_survive_heavy_rule_churn() {
    let mut engine = RuleEngine::new(company_db());
    let mut ids = Vec::new();
    for round in 0..10 {
        for i in 0..20 {
            let id = engine
                .add_rule(
                    Rule::builder(format!("r{round}-{i}"))
                        .when(&format!("emp.salary < {}", 1_000 * (i + 1)))
                        .unwrap()
                        .then(Action::log("hit"))
                        .build(),
                )
                .unwrap();
            ids.push(id);
        }
        // Retire the oldest half.
        for id in ids.drain(..10) {
            engine.remove_rule(id).unwrap();
        }
    }
    assert_eq!(engine.rule_count(), 100);
    let report = engine
        .insert(
            "emp",
            vec![
                Value::str("a"),
                Value::Int(30),
                Value::Int(500),
                Value::str("d"),
            ],
        )
        .unwrap();
    // Salary 500 matches every remaining "salary < k*1000" rule.
    assert_eq!(report.fired.len(), 100);
}

#[test]
fn update_events_rematch_new_values() {
    let mut db = company_db();
    let mut index = PredicateIndex::new();
    let low = index
        .insert(parse_predicate("emp.salary < 1000").unwrap(), db.catalog())
        .unwrap();
    let high = index
        .insert(parse_predicate("emp.salary > 90000").unwrap(), db.catalog())
        .unwrap();

    let ev = db
        .insert_event(
            "emp",
            vec![
                Value::str("m"),
                Value::Int(30),
                Value::Int(500),
                Value::str("d"),
            ],
        )
        .unwrap();
    let relation::TupleEvent::Inserted { id, tuple, .. } = ev else {
        panic!("expected insert event");
    };
    assert_eq!(index.match_tuple("emp", &tuple), vec![low]);

    let ev = db
        .update_event(
            "emp",
            id,
            vec![
                Value::str("m"),
                Value::Int(30),
                Value::Int(95_000),
                Value::str("d"),
            ],
        )
        .unwrap();
    let new = ev.current().unwrap();
    assert_eq!(index.match_tuple("emp", new), vec![high]);
}
