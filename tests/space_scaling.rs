//! §5.1's analytical claims, asserted as tests:
//!
//! * disjoint intervals place Θ(N) markers,
//! * heavily-overlapping intervals stay within O(N log N) markers,
//! * search path work is logarithmic in N (measured structurally via
//!   tree height rather than wall time, which would flake in CI).

use predmatch::ibs::{BalanceMode, IbsTree};
use predmatch::interval::{Interval, IntervalId};

fn build(items: impl IntoIterator<Item = (u32, Interval<i64>)>, mode: BalanceMode) -> IbsTree<i64> {
    let mut t = IbsTree::with_mode(mode);
    for (i, iv) in items {
        t.insert(IntervalId(i), iv).unwrap();
    }
    t
}

#[test]
fn disjoint_markers_are_linear() {
    for n in [256u32, 1024, 4096] {
        let t = build(
            (0..n).map(|i| (i, Interval::closed(i as i64 * 10, i as i64 * 10 + 6))),
            BalanceMode::Avl,
        );
        let per = t.marker_count() as f64 / n as f64;
        assert!(
            per <= 4.0,
            "disjoint N={n}: {per} markers per interval (expected O(1))"
        );
    }
}

#[test]
fn nested_markers_are_at_most_n_log_n() {
    for n in [256u32, 1024, 4096] {
        let t = build(
            (0..n).map(|i| (i, Interval::closed(-(i as i64), i as i64))),
            BalanceMode::Avl,
        );
        let markers = t.marker_count() as f64;
        let bound = 3.0 * (n as f64) * (n as f64).log2();
        assert!(
            markers <= bound,
            "nested N={n}: {markers} markers exceeds 3·N·log2(N) = {bound}"
        );
        // And the growth really is super-linear: well above the disjoint
        // case's constant per-interval count.
        assert!(
            markers / n as f64 > 6.0,
            "nested N={n}: markers unexpectedly linear"
        );
    }
}

#[test]
fn balanced_height_is_logarithmic_even_for_sorted_input() {
    let n = 8_192u32;
    let t = build(
        (0..n).map(|i| (i, Interval::point(i as i64))),
        BalanceMode::Avl,
    );
    // AVL bound: 1.44 log2(N + 2).
    let bound = (1.44 * ((n + 2) as f64).log2()).ceil() as u32 + 1;
    assert!(
        t.height() <= bound,
        "height {} exceeds AVL bound {bound}",
        t.height()
    );
}

#[test]
fn unbalanced_random_order_is_near_logarithmic() {
    // The paper's justification for skipping balancing in its
    // measurements: random insertion order keeps a BST shallow.
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let n = 8_192u32;
    let mut keys: Vec<i64> = (0..n as i64).collect();
    keys.shuffle(&mut rand::rngs::StdRng::seed_from_u64(3));
    let t = build(
        keys.iter()
            .enumerate()
            .map(|(i, &k)| (i as u32, Interval::point(k))),
        BalanceMode::None,
    );
    // Random BSTs average ~2.99 log2(N); allow generous slack.
    assert!(
        t.height() <= 4 * ((n as f64).log2() as u32),
        "random-order unbalanced height {} looks degenerate",
        t.height()
    );
}

#[test]
fn search_output_sensitivity() {
    // O(log N + L): with L = N (query inside every interval) the result
    // must still be complete; with L = 0 it must be empty.
    let n = 4_096u32;
    let t = build(
        (0..n).map(|i| (i, Interval::closed(-(i as i64) - 1, i as i64 + 1))),
        BalanceMode::Avl,
    );
    assert_eq!(t.stab(&0).len(), n as usize);
    assert_eq!(t.stab(&(n as i64 * 2)).len(), 0);
    assert_eq!(t.stab_count(&0), n as usize);
}
