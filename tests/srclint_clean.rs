//! The workspace is srclint-clean: every invariant in DESIGN.md §13
//! holds across every crate, so a violation fails `cargo test` even
//! before CI's dedicated `srclint --deny` step runs.

use std::path::Path;

#[test]
fn workspace_has_no_srclint_findings() {
    let report =
        srclint::run_workspace(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace lints");
    assert!(
        report.files_scanned > 100,
        "walker regressed: only {} files scanned",
        report.files_scanned
    );
    assert!(
        !report.is_failure(true),
        "srclint findings in the workspace:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.render_human())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
