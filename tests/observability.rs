//! EXPLAIN traces and metrics counters, checked against a hand-run of
//! the Figure-1 match path.
//!
//! The predicate set is built so every stage has a knowable cost: each
//! indexed attribute carries exactly one interval (a one-node,
//! height-one IBS tree), so the stab must visit one node and scan one
//! mark, and the function predicate must land on the non-indexable
//! list and be swept on every match.

use predmatch::prelude::*;
use predmatch::rules::DbOp;
use predmatch::telemetry::{Profiler, EXTERNAL_ACCOUNT};

/// `emp(name, age, salary)` with three rules:
/// * `underpaid`:  emp.salary < 20000   — salary tree, one interval
/// * `senior`:     emp.age > 50         — age tree, one interval
/// * `odd-age`:    isodd(emp.age)       — non-indexable
fn engine() -> RuleEngine {
    let mut db = Database::new();
    db.create_relation(
        Schema::builder("emp")
            .attr("name", AttrType::Str)
            .attr("age", AttrType::Int)
            .attr("salary", AttrType::Int)
            .build(),
    )
    .unwrap();
    let mut engine = RuleEngine::with_metrics(db);
    for (name, cond, msg) in [
        ("underpaid", "emp.salary < 20000", "below 20k"),
        ("senior", "emp.age > 50", "over 50"),
        ("odd-age", "isodd(emp.age)", "odd age"),
    ] {
        engine
            .add_rule(
                Rule::builder(name)
                    .when(cond)
                    .unwrap()
                    .then(Action::log(msg))
                    .build(),
            )
            .unwrap();
    }
    engine
}

fn tuple() -> Vec<Value> {
    // age 60: stabs the age tree above 50 but fails isodd; salary
    // 12000 stabs the salary tree below 20000.
    vec![Value::str("al"), Value::Int(60), Value::Int(12_000)]
}

#[test]
fn explain_counts_match_a_hand_computed_stab() {
    let mut engine = engine();
    let (trace, report) = engine.explain_insert("emp", tuple()).unwrap();

    // Stage 1: relation hash found the second-level index on a shard.
    assert_eq!(trace.relation, "emp");
    assert!(trace.relation_indexed);
    assert!(trace.shard.is_some());

    // Stage 2: one stab per indexed attribute, in attribute order.
    // Each tree holds a single interval, hence exactly one node
    // visited and one mark scanned per stab.
    assert_eq!(trace.stabs.len(), 2);
    let age = &trace.stabs[0];
    assert_eq!((age.attr, age.attr_name.as_str()), (1, "age"));
    assert_eq!(age.nodes_visited, 1);
    assert_eq!(age.marks_scanned, 1);
    assert_eq!(age.greater_hits, 1); // 60 is right of the node key 50
    assert_eq!(age.less_hits + age.eq_hits + age.universal_hits, 0);
    assert_eq!((age.tree_intervals, age.tree_height), (1, 1));
    let salary = &trace.stabs[1];
    assert_eq!((salary.attr, salary.attr_name.as_str()), (2, "salary"));
    assert_eq!(salary.nodes_visited, 1);
    assert_eq!(salary.marks_scanned, 1);
    assert_eq!(salary.less_hits, 1); // 12000 is left of the node key 20000
    assert_eq!(
        salary.greater_hits + salary.eq_hits + salary.universal_hits,
        0
    );
    assert_eq!((salary.tree_intervals, salary.tree_height), (1, 1));

    // Stage 3: the lone function predicate is swept sequentially.
    assert_eq!(trace.non_indexable_scanned, 1);

    // Stage 4: three partial matches, residual-tested; isodd(60) fails.
    assert_eq!(trace.partial_matches(), 3);
    assert_eq!(trace.residual.len(), 3);
    assert_eq!(trace.matched().len(), 2);
    let failed: Vec<&str> = trace
        .residual
        .iter()
        .filter(|r| !r.pass)
        .map(|r| r.source.as_str())
        .collect();
    assert_eq!(failed, ["isodd(emp.age)"]);

    // Aggregates and the two rules the insert actually fired.
    assert_eq!(trace.nodes_visited(), 2);
    assert_eq!(trace.marks_scanned(), 2);
    let mut fired: Vec<&str> = report.fired.iter().map(|(_, n)| n.as_str()).collect();
    fired.sort_unstable();
    assert_eq!(fired, ["senior", "underpaid"]);

    // The rendering names every stage and the §5.2 cost terms.
    let text = trace.to_string();
    for needle in [
        "EXPLAIN match emp",
        "attr age",
        "attr salary",
        "non-indexable",
        "residual tests",
        "3 partial match(es) -> 2 full match(es)",
        "ibs_nodes=2",
        "residual_tests=3",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn counters_agree_with_the_explain_trace() {
    let mut engine = engine();
    let (trace, _) = engine.explain_insert("emp", tuple()).unwrap();
    let registry = engine.metrics().clone();

    let before = |name: &str| registry.counter_value(name).unwrap_or(0);
    let nodes0 = before("predindex_ibs_nodes_visited_total");
    let marks0 = before("predindex_ibs_marks_scanned_total");
    let sweeps0 = before("predindex_non_indexable_scanned_total");
    let tests0 = before("predindex_residual_tests_total");
    let passes0 = before("predindex_residual_passes_total");

    // A plain insert of the same tuple performs exactly the work the
    // trace describes: the counters must advance by the trace's counts.
    engine.insert("emp", tuple()).unwrap();
    let delta = |name: &str, base: u64| before(name) - base;
    assert_eq!(
        delta("predindex_ibs_nodes_visited_total", nodes0),
        trace.nodes_visited()
    );
    assert_eq!(
        delta("predindex_ibs_marks_scanned_total", marks0),
        trace.marks_scanned()
    );
    assert_eq!(
        delta("predindex_non_indexable_scanned_total", sweeps0),
        trace.non_indexable_scanned as u64
    );
    assert_eq!(
        delta("predindex_residual_tests_total", tests0),
        trace.partial_matches() as u64
    );
    assert_eq!(
        delta("predindex_residual_passes_total", passes0),
        trace.matched().len() as u64
    );
}

/// The profiler's attribution invariant (DESIGN.md §16): the per-rule
/// accounts *partition* the global §5.2 cost counters. For every cost
/// term, summing the `profile_rule_*_total{rule=...}` cells across all
/// accounts must reproduce the global counter exactly — no work is
/// dropped, none is double-billed — under a workload that exercises
/// every account kind: external inserts, a cascading rule (its queued
/// ops bill *its* account, not external), and a two-relation join rule.
#[test]
fn per_rule_accounts_sum_to_the_global_counters() {
    let mut db = Database::new();
    for schema in [
        Schema::builder("emp")
            .attr("name", AttrType::Str)
            .attr("salary", AttrType::Int)
            .attr("dept", AttrType::Str)
            .build(),
        Schema::builder("dept")
            .attr("name", AttrType::Str)
            .attr("floor", AttrType::Int)
            .build(),
        Schema::builder("alerts")
            .attr("kind", AttrType::Str)
            .attr("level", AttrType::Int)
            .build(),
    ] {
        db.create_relation(schema).unwrap();
    }
    let mut engine = RuleEngine::with_metrics(db);
    let registry = engine.metrics().clone();
    let profiler = Profiler::new(&registry);
    engine.attach_profiler(profiler.clone());

    engine
        .add_rule(
            Rule::builder("raise-alert")
                .when("emp.salary < 1000")
                .unwrap()
                .then(Action::callback(|ctx| {
                    ctx.queue(DbOp::Insert {
                        relation: "alerts".into(),
                        values: vec![Value::str("underpaid"), Value::Int(2)],
                    });
                }))
                .build(),
        )
        .unwrap();
    engine
        .add_rule(
            Rule::builder("escalate")
                .when("alerts.level >= 2")
                .unwrap()
                .then(Action::log("escalated"))
                .build(),
        )
        .unwrap();
    engine
        .add_rule(
            Rule::builder("same-dept")
                .when("emp.dept = dept.name and dept.floor = 1")
                .unwrap()
                .then(Action::log("colleagues"))
                .build(),
        )
        .unwrap();

    engine
        .insert("dept", vec![Value::str("Shoe"), Value::Int(1)])
        .unwrap();
    for i in 0i64..32 {
        // Every 4th employee is underpaid: raise-alert fires, its
        // queued alert cascades into escalate.
        let salary = if i % 4 == 0 { 500 } else { 5_000 + i };
        engine
            .insert(
                "emp",
                vec![
                    Value::str(format!("e{i}")),
                    Value::Int(salary),
                    Value::str("Shoe"),
                ],
            )
            .unwrap();
    }

    let accounts = profiler.accounts();
    assert!(
        accounts.len() >= 3,
        "expected external + cascading + fired accounts, got {accounts:?}"
    );

    // Sum every account's cost terms and compare against the globals.
    let global = |name: &str| registry.counter_value(name).unwrap_or(0);
    let sum = |f: fn(&predmatch::telemetry::AccountSnapshot) -> u64| -> u64 {
        accounts.iter().map(f).sum()
    };
    for (term, summed, counter) in [
        (
            "ibs_nodes",
            sum(|a| a.cost.ibs_nodes),
            "predindex_ibs_nodes_visited_total",
        ),
        (
            "ibs_marks",
            sum(|a| a.cost.ibs_marks),
            "predindex_ibs_marks_scanned_total",
        ),
        (
            "residual_tests",
            sum(|a| a.cost.residual_tests),
            "predindex_residual_tests_total",
        ),
        (
            "residual_passes",
            sum(|a| a.cost.residual_passes),
            "predindex_residual_passes_total",
        ),
        (
            "non_indexable",
            sum(|a| a.cost.non_indexable),
            "predindex_non_indexable_scanned_total",
        ),
        (
            "join_probes",
            sum(|a| a.cost.join_probes),
            "join_probes_total",
        ),
        (
            "join_retractions",
            sum(|a| a.cost.join_retractions),
            "join_retractions_total",
        ),
        ("firings", sum(|a| a.cost.firings), "rules_fired_total"),
        ("ops", sum(|a| a.cost.ops), "rules_ops_applied_total"),
    ] {
        assert_eq!(
            summed,
            global(counter),
            "accounts do not partition {counter} ({term})"
        );
    }

    // The workload really exercised every attribution path.
    let by_name = |wanted: &str| {
        accounts
            .iter()
            .find(|a| a.name.as_deref() == Some(wanted))
            .unwrap_or_else(|| panic!("no account named {wanted:?} in {accounts:?}"))
    };
    let external = accounts
        .iter()
        .find(|a| a.rule.is_none())
        .expect("external account exists");
    // 33 client-injected inserts bill the external account; the alerts
    // the cascade queued bill raise-alert, the rule that caused them.
    assert_eq!(external.cost.ops, 33);
    assert_eq!(by_name("raise-alert").cost.ops, 8);
    assert_eq!(by_name("raise-alert").cost.firings, 8);
    assert_eq!(by_name("escalate").cost.firings, 8);
    assert!(by_name("same-dept").cost.join_probes > 0);
    assert!(external.cost.ibs_nodes > 0 && external.cost.stab_nanos > 0);

    // /profile reads the same cells.
    let json = profiler.profile_json(&registry);
    assert!(
        json.contains("\"schema\":\"telemetry/profile-v1\""),
        "{json}"
    );
    assert!(
        json.contains(&format!("\"rule\":\"{EXTERNAL_ACCOUNT}\"")),
        "{json}"
    );
    assert!(json.contains("\"name\":\"raise-alert\""), "{json}");
}
