//! The paper's running example, end to end: the seven intervals of
//! Figure 2 behave identically in every interval structure, and the
//! equivalent predicates behave identically in every matcher.

use predmatch::altindex::{
    BulkBuild, CenteredIntervalTree, IntervalSkipList, IntervalTreap, NaiveIntervalList,
    SegmentTree, StabIndex,
};
use predmatch::interval::IntervalId;
use predmatch::predindex::SequentialMatcher;
use predmatch::prelude::*;

/// Figure 2's interval set (A–G).
fn figure2() -> Vec<(IntervalId, Interval<i64>)> {
    vec![
        (IntervalId(0), Interval::closed(9, 19)),     // A
        (IntervalId(1), Interval::closed(2, 7)),      // B
        (IntervalId(2), Interval::closed_open(1, 3)), // C [1,3)
        (IntervalId(3), Interval::closed(17, 20)),    // D
        (IntervalId(4), Interval::closed(7, 12)),     // E
        (IntervalId(5), Interval::point(18)),         // F
        (IntervalId(6), Interval::at_most(17)),       // G (-inf,17]
    ]
}

#[test]
fn every_structure_reports_figure2_identically() {
    let items = figure2();
    let ibs: IbsTree<i64> = BulkBuild::build(items.clone());
    let seg = SegmentTree::build(items.clone());
    let cit = CenteredIntervalTree::build(items.clone());
    let treap = IntervalTreap::build(items.clone());
    let skip = IntervalSkipList::build(items.clone());
    let naive = NaiveIntervalList::build(items.clone());

    for x in -3..25 {
        let mut want: Vec<IntervalId> = items
            .iter()
            .filter(|(_, iv)| iv.contains(&x))
            .map(|(id, _)| *id)
            .collect();
        want.sort();
        for (name, mut got) in [
            ("ibs", StabIndex::stab(&ibs, &x)),
            ("segment", seg.stab(&x)),
            ("interval-tree", cit.stab(&x)),
            ("treap", treap.stab(&x)),
            ("skip-list", skip.stab(&x)),
            ("naive", naive.stab(&x)),
        ] {
            got.sort();
            assert_eq!(got, want, "{name} at {x}");
        }
    }
}

#[test]
fn figure2_as_salary_predicates() {
    // The same seven intervals phrased as salary predicates (in $1000s)
    // and pushed through the full scheme.
    let mut db = Database::new();
    db.create_relation(
        Schema::builder("emp")
            .attr("name", AttrType::Str)
            .attr("salary", AttrType::Int)
            .build(),
    )
    .unwrap();
    let sources = [
        "9 <= emp.salary <= 19",  // A
        "2 <= emp.salary <= 7",   // B
        "1 <= emp.salary < 3",    // C
        "17 <= emp.salary <= 20", // D
        "7 <= emp.salary <= 12",  // E
        "emp.salary = 18",        // F
        "emp.salary <= 17",       // G
    ];
    let mut index = PredicateIndex::new();
    let mut oracle = SequentialMatcher::new();
    for s in sources {
        let p = parse_predicate(s).unwrap();
        index.insert(p.clone(), db.catalog()).unwrap();
        oracle.insert(p, db.catalog()).unwrap();
    }
    for salary in -3i64..25 {
        let t = db
            .insert("emp", vec![Value::str("x"), Value::Int(salary)])
            .unwrap();
        assert_eq!(
            index.match_tuple("emp", &t),
            oracle.match_tuple("emp", &t),
            "salary {salary}"
        );
    }
    // Spot values from the figure: 18 hits A, D, F.
    let t = db
        .insert("emp", vec![Value::str("spot"), Value::Int(18)])
        .unwrap();
    let hits = index.match_tuple("emp", &t);
    assert_eq!(
        hits,
        vec![
            predmatch::predindex::PredicateId(0),
            predmatch::predindex::PredicateId(3),
            predmatch::predindex::PredicateId(5)
        ]
    );
}

#[test]
fn dynamic_removal_tracks_the_figure() {
    let mut ibs: IbsTree<i64> = IbsTree::new();
    for (id, iv) in figure2() {
        ibs.insert(id, iv).unwrap();
    }
    // Remove G (the open-ended interval) and re-check a few points.
    ibs.remove(IntervalId(6)).unwrap();
    let mut at2 = ibs.stab(&2);
    at2.sort();
    assert_eq!(at2, vec![IntervalId(1), IntervalId(2)]); // B, C
    assert_eq!(ibs.stab(&0), vec![]);
    // Remove everything; the tree must be fully reclaimed.
    for i in 0..6 {
        ibs.remove(IntervalId(i)).unwrap();
    }
    assert!(ibs.is_empty());
    assert_eq!(ibs.node_count(), 0);
    assert_eq!(ibs.marker_count(), 0);
}
