//! Index advisor end-to-end: on each canonical workload shape, the
//! §5.2 projection's top pick must be the backend that is actually
//! cheapest when the same op log is replayed against real structures.
//!
//! Constants are calibrated in-process, so the test is self-adjusting
//! across machines and build profiles: projection and measurement see
//! the same code on the same box. `churn_heavy` and
//! `non_indexable_heavy` have decisive winners (the measured margins
//! are many-fold), so those demand exact agreement; `stab_heavy`'s top
//! two backends (IBS-tree vs static interval tree) are legitimately
//! within ~1.2x of each other, so there the pick must merely be within
//! 1.5x of the measured cheapest — still a real claim, without flaking
//! on a coin-flip between near-ties.

use predmatch::predindex::advisor::{calibrate_constants, quick_shapes, run_shape, Backend};
use predmatch::prelude::*;
use predmatch::telemetry::WorkloadStats;
use std::sync::Arc;

#[test]
fn advisor_pick_is_measured_cheapest_on_the_canonical_shapes() {
    let constants = calibrate_constants();
    let shapes = quick_shapes();
    assert_eq!(shapes.len(), 3);
    for spec in &shapes {
        let outcome = run_shape(spec, &constants);
        let pick = outcome.recommendation.best();
        let cheapest = outcome.measured_cheapest();
        let measured_ns = |b: Backend| {
            outcome
                .measured
                .iter()
                .find(|(x, _)| *x == b)
                .map(|(_, ns)| *ns)
                .unwrap_or(f64::INFINITY)
        };
        if outcome.name == "stab_heavy" {
            assert!(
                measured_ns(pick) <= 1.5 * measured_ns(cheapest),
                "{}: advisor picked {} ({:.0} ns) but {} measured {:.0} ns",
                outcome.name,
                pick.name(),
                measured_ns(pick),
                cheapest.name(),
                measured_ns(cheapest),
            );
        } else {
            assert_eq!(
                pick,
                cheapest,
                "{}: advisor picked {} but {} measured cheapest ({:?})",
                outcome.name,
                pick.name(),
                cheapest.name(),
                outcome.measured,
            );
        }
        // The projection ran on real observed statistics, not defaults.
        assert!(outcome.recommendation.stabs > 0, "{}", outcome.name);
        assert!(
            outcome.recommendation.margin >= 1.0,
            "{}: margin {:.2}",
            outcome.name,
            outcome.recommendation.margin
        );
    }
}

#[test]
fn engine_workload_feeds_the_advisor_report() {
    // The full plumbing at the root crate's level: workload accounts
    // attached to a rule engine, traffic driven through rule matching,
    // and the advisor report built from what the accounts observed.
    let mut db = Database::new();
    db.create_relation(
        Schema::builder("emp")
            .attr("age", AttrType::Int)
            .attr("salary", AttrType::Int)
            .build(),
    )
    .unwrap();
    let mut engine = RuleEngine::new(db);
    let registry = Arc::new(predmatch::telemetry::Registry::new());
    let workload = WorkloadStats::new(&registry);
    engine.attach_workload(workload.clone());
    for (name, cond) in [
        ("senior", "emp.age > 50"),
        ("underpaid", "emp.salary < 20000"),
    ] {
        engine
            .add_rule(
                Rule::builder(name)
                    .when(cond)
                    .unwrap()
                    .then(Action::log(name))
                    .build(),
            )
            .unwrap();
    }
    for i in 0..40 {
        engine
            .insert(
                "emp",
                vec![Value::Int(30 + i), Value::Int(10_000 + 500 * i)],
            )
            .unwrap();
    }

    let advisor = predmatch::predindex::Advisor::new(workload);
    let recs = advisor.recommendations();
    assert!(!recs.is_empty(), "two live trees should yield accounts");
    for rec in &recs {
        assert_eq!(rec.relation, "emp");
        assert_eq!(rec.stabs, 40, "every insert stabs every attr tree");
        assert_eq!(rec.live, 1);
        assert_eq!(rec.ranked.len(), 4);
    }
    let json = advisor.report_json();
    assert!(
        json.contains("\"schema\":\"telemetry/advisor-v1\""),
        "{json}"
    );
    assert!(json.contains("\"relation\":\"emp\""), "{json}");
    let text = advisor.render_text();
    assert!(text.contains("emp"), "{text}");
}
