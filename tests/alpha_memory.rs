//! Integration: the alpha-memory layer (`MatchMemory`) stays consistent
//! with ground truth while the database churns — the §6 "first layer of
//! a two-layer network" contract.

use predmatch::predindex::{MatchMemory, Matcher, PredicateIndex};
use predmatch::prelude::*;
use predmatch::relation::{TupleEvent, TupleId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn ground_truth(
    db: &Database,
    index: &PredicateIndex,
    pred: predmatch::predindex::PredicateId,
) -> Vec<TupleId> {
    let stored = index.get(pred).expect("registered predicate");
    let rel = db
        .catalog()
        .relation(stored.bound.relation())
        .expect("relation exists");
    stored.bound.scan(rel).map(|(tid, _)| tid).collect()
}

#[test]
fn memory_tracks_random_churn() {
    let mut db = Database::new();
    db.create_relation(
        Schema::builder("m")
            .attr("a", AttrType::Int)
            .attr("b", AttrType::Int)
            .build(),
    )
    .unwrap();

    let mut index = PredicateIndex::new();
    let preds: Vec<_> = [
        "m.a < 250",
        "250 <= m.a < 750",
        "m.a >= 750",
        "m.b = 7",
        "m.a > 100 and m.b < 50",
    ]
    .iter()
    .map(|s| {
        index
            .insert(parse_predicate(s).unwrap(), db.catalog())
            .unwrap()
    })
    .collect();

    let mut mem = MatchMemory::new();
    let mut live: Vec<TupleId> = Vec::new();
    let mut rng = StdRng::seed_from_u64(0xa1fa);

    for step in 0..1_500 {
        let roll = rng.gen_range(0..10);
        let ev: TupleEvent = if live.is_empty() || roll < 5 {
            let ev = db
                .insert_event(
                    "m",
                    vec![
                        Value::Int(rng.gen_range(0..1000)),
                        Value::Int(rng.gen_range(0..100)),
                    ],
                )
                .unwrap();
            if let TupleEvent::Inserted { id, .. } = &ev {
                live.push(*id);
            }
            ev
        } else if roll < 8 {
            let id = live[rng.gen_range(0..live.len())];
            db.update_event(
                "m",
                id,
                vec![
                    Value::Int(rng.gen_range(0..1000)),
                    Value::Int(rng.gen_range(0..100)),
                ],
            )
            .unwrap()
        } else {
            let k = rng.gen_range(0..live.len());
            let id = live.swap_remove(k);
            db.delete_event("m", id).unwrap()
        };
        mem.apply(&index, &ev);

        if step % 100 == 99 {
            for &p in &preds {
                let want = ground_truth(&db, &index, p);
                let got: Vec<TupleId> = mem.matches_of(p).collect();
                assert_eq!(got, want, "predicate {p} diverged at step {step}");
            }
        }
    }
    // Final full check.
    let total: usize = preds.iter().map(|&p| mem.count(p)).sum();
    assert_eq!(
        total,
        preds
            .iter()
            .map(|&p| ground_truth(&db, &index, p).len())
            .sum::<usize>()
    );
}

#[test]
fn memory_seed_after_late_registration() {
    // Registering a predicate late: seed its memory from a scan, then
    // keep maintaining incrementally.
    let mut db = Database::new();
    db.create_relation(Schema::builder("m").attr("a", AttrType::Int).build())
        .unwrap();
    for i in 0..100i64 {
        db.insert("m", vec![Value::Int(i)]).unwrap();
    }
    let mut index = PredicateIndex::new();
    let p = index
        .insert(parse_predicate("m.a < 10").unwrap(), db.catalog())
        .unwrap();

    let mut mem = MatchMemory::new();
    // Seed: replay existing tuples as synthetic insert events.
    let seeds: Vec<TupleEvent> = db
        .catalog()
        .relation("m")
        .unwrap()
        .iter()
        .map(|(tid, t)| TupleEvent::Inserted {
            relation: "m".into(),
            id: tid,
            tuple: t.clone(),
        })
        .collect();
    for ev in seeds {
        mem.apply(&index, &ev);
    }
    assert_eq!(mem.count(p), 10);

    // Incremental from here.
    let ev = db.insert_event("m", vec![Value::Int(5)]).unwrap();
    mem.apply(&index, &ev);
    assert_eq!(mem.count(p), 11);
}
