//! End-to-end span tracing: a two-level rule cascade must come out of
//! the tracer as a correctly parented span tree whose child durations
//! fit inside their parents.

use predmatch::prelude::*;
use predmatch::rules::DbOp;
use predmatch::telemetry::{SpanEventKind, TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY};
use std::collections::HashMap;
use std::sync::Arc;

/// A reconstructed span: name, parent id, and wall duration.
struct SpanRec {
    name: &'static str,
    parent: u64,
    begin: u64,
    end: u64,
}

/// Pairs Begin/End events by span id (panics on an unpaired span —
/// the workload closes everything before the snapshot).
fn reconstruct(events: &[TraceEvent]) -> HashMap<u64, SpanRec> {
    let mut spans: HashMap<u64, SpanRec> = HashMap::new();
    for ev in events {
        match ev.kind {
            SpanEventKind::Begin => {
                spans.insert(
                    ev.span,
                    SpanRec {
                        name: ev.name,
                        parent: ev.parent,
                        begin: ev.nanos,
                        end: 0,
                    },
                );
            }
            SpanEventKind::End => {
                spans
                    .get_mut(&ev.span)
                    .unwrap_or_else(|| panic!("End without Begin for span {}", ev.span))
                    .end = ev.nanos;
            }
            SpanEventKind::Instant => {}
        }
    }
    for (id, s) in &spans {
        assert!(s.end >= s.begin, "span {id} ({}) never ended", s.name);
    }
    spans
}

#[test]
fn two_level_cascade_produces_a_parented_span_tree() {
    let mut db = Database::new();
    db.create_relation(
        Schema::builder("emp")
            .attr("name", AttrType::Str)
            .attr("salary", AttrType::Int)
            .build(),
    )
    .unwrap();
    db.create_relation(
        Schema::builder("alerts")
            .attr("kind", AttrType::Str)
            .attr("level", AttrType::Int)
            .build(),
    )
    .unwrap();

    let tracer = Tracer::new(DEFAULT_TRACE_CAPACITY);
    let mut engine = RuleEngine::new(db);
    engine.attach_telemetry(Arc::new(Registry::new()), tracer.clone());

    engine
        .add_rule(
            Rule::builder("raise-alert")
                .when("emp.salary < 1000")
                .unwrap()
                .then(Action::callback(|ctx| {
                    ctx.queue(DbOp::Insert {
                        relation: "alerts".into(),
                        values: vec![Value::str("underpaid"), Value::Int(2)],
                    });
                }))
                .build(),
        )
        .unwrap();
    engine
        .add_rule(
            Rule::builder("escalate")
                .when("alerts.level >= 2")
                .unwrap()
                .then(Action::log("escalated"))
                .build(),
        )
        .unwrap();

    let report = engine
        .insert("emp", vec![Value::str("al"), Value::Int(500)])
        .unwrap();
    assert_eq!(report.fired.len(), 2, "both rules fire through the chain");

    let events = tracer.events();
    let spans = reconstruct(&events);
    let by_name = |name: &str| -> Vec<(&u64, &SpanRec)> {
        spans.iter().filter(|(_, s)| s.name == name).collect()
    };

    // Exactly one cascade root, at top level.
    let cascades = by_name("cascade");
    assert_eq!(cascades.len(), 1, "one insert, one cascade");
    let (&root_id, root) = cascades[0];
    assert_eq!(root.parent, 0, "cascade is a top-level span");

    // Two cascade levels (the external insert, then the alert), both
    // children of the root.
    let levels = by_name("cascade_level");
    assert_eq!(levels.len(), 2, "two-level cascade");
    for (_, level) in &levels {
        assert_eq!(level.parent, root_id, "levels nest under the cascade");
        assert!(level.begin >= root.begin && level.end <= root.end);
    }

    // Each level runs one match pass, parented to its level.
    let level_ids: Vec<u64> = levels.iter().map(|(&id, _)| id).collect();
    let matches = by_name("match_level");
    assert_eq!(matches.len(), 2);
    for (_, m) in &matches {
        assert!(level_ids.contains(&m.parent), "match nests under a level");
    }

    // Both firings produced rule_fire spans inside some level.
    let fires = by_name("rule_fire");
    assert_eq!(fires.len(), 2);
    for (_, f) in &fires {
        assert!(level_ids.contains(&f.parent), "firing nests under a level");
    }

    // Durations are consistent: levels are disjoint in time, and their
    // summed duration fits inside the root span.
    let mut level_spans: Vec<&SpanRec> = levels.iter().map(|(_, s)| *s).collect();
    level_spans.sort_by_key(|s| s.begin);
    assert!(
        level_spans[0].end <= level_spans[1].begin,
        "levels run one after another"
    );
    let summed: u64 = level_spans.iter().map(|s| s.end - s.begin).sum();
    assert!(
        summed <= root.end - root.begin,
        "child time {summed} exceeds root {}",
        root.end - root.begin
    );

    // And the whole thing exports as Chrome JSON with the span names.
    let json = tracer.chrome_trace_json();
    for name in ["cascade", "cascade_level", "match_level", "rule_fire"] {
        assert!(
            json.contains(&format!("\"name\":\"{name}\"")),
            "{name} missing"
        );
    }
}
