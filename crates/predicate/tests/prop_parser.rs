//! Property-based testing of the predicate language.
//!
//! Two independent checks:
//!
//! 1. **Round trip** — any programmatically built conjunctive predicate
//!    renders to source (`Predicate::to_source`) that parses back to an
//!    equivalent predicate (identical evaluation on every tuple in the
//!    domain).
//! 2. **DNF semantics** — any randomly generated boolean expression
//!    (comparisons joined by and/or with parentheses) evaluates, tuple
//!    by tuple, the same way through the parser's DNF split as through a
//!    reference evaluator over the generating AST.

use interval::{Interval, Lower, Upper};
use predicate::{parse_predicate, parse_predicates, Clause, Predicate};
use proptest::prelude::*;
use relation::{AttrType, Schema, Tuple, Value};

const ATTRS: [&str; 3] = ["a", "b", "c"];

fn schema() -> Schema {
    Schema::builder("rel")
        .attr("a", AttrType::Int)
        .attr("b", AttrType::Int)
        .attr("c", AttrType::Int)
        .build()
}

fn arb_range_clause() -> impl Strategy<Value = Clause> {
    (0usize..3, 0i64..40, 0i64..40, any::<(bool, bool)>(), 0u8..6).prop_filter_map(
        "non-empty",
        |(attr, x, y, (li, hi), kind)| {
            let (x, y) = if x <= y { (x, y) } else { (y, x) };
            let interval = match kind {
                0 => Interval::point(Value::Int(x)),
                1 => Interval::at_least(Value::Int(x)),
                2 => Interval::greater_than(Value::Int(x)),
                3 => Interval::at_most(Value::Int(x)),
                4 => Interval::less_than(Value::Int(x)),
                _ => {
                    let lo = if li {
                        Lower::Inclusive(Value::Int(x))
                    } else {
                        Lower::Exclusive(Value::Int(x))
                    };
                    let up = if hi {
                        Upper::Inclusive(Value::Int(y))
                    } else {
                        Upper::Exclusive(Value::Int(y))
                    };
                    Interval::new(lo, up).ok()?
                }
            };
            Some(Clause::Range {
                attr: ATTRS[attr].to_string(),
                interval,
            })
        },
    )
}

fn arb_tuple() -> impl Strategy<Value = Tuple> {
    (-2i64..42, -2i64..42, -2i64..42)
        .prop_map(|(a, b, c)| Tuple::new(vec![Value::Int(a), Value::Int(b), Value::Int(c)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn to_source_round_trips(
        clauses in prop::collection::vec(arb_range_clause(), 1..5),
        tuples in prop::collection::vec(arb_tuple(), 1..20),
    ) {
        let original = Predicate::new("rel", clauses);
        prop_assume!(original.is_satisfiable());
        let Some(src) = original.to_source() else {
            // Fully unbounded clause: no source spelling; skip.
            return Ok(());
        };
        let reparsed = parse_predicate(&src)
            .unwrap_or_else(|e| panic!("reparse of {src:?} failed: {e}"));
        let s = schema();
        let b1 = original.bind(&s).unwrap();
        let b2 = reparsed.bind(&s).unwrap();
        for t in &tuples {
            prop_assert_eq!(
                b1.matches(t),
                b2.matches(t),
                "round trip diverged on {:?} via {:?}",
                t,
                src
            );
        }
    }
}

// ---------------------------------------------------------------------
// Typed round trip: every clause form (point / one-sided / two-sided
// ranges with every inclusive/exclusive bound combination, plus opaque
// function clauses) over every value type (int, float, string, bool)
// must survive `to_source` → parse *structurally* — the recovery path
// re-hydrates predicates from rendered source, so evaluation-only
// equivalence is not enough.
// ---------------------------------------------------------------------

fn typed_schema() -> Schema {
    Schema::builder("rel")
        .attr("ai", AttrType::Int)
        .attr("f", AttrType::Float)
        .attr("s", AttrType::Str)
        .attr("flag", AttrType::Bool)
        .build()
}

/// Constants of one attribute's type. Strings draw from an alphabet
/// that exercises the lexer's escapes (`"`/`\`) and raw multi-byte and
/// control characters; floats include integral values like `7.0`, the
/// literal the old renderer corrupted to an int.
fn arb_typed_value(attr: usize) -> BoxedStrategy<Value> {
    match attr {
        0 => (-40i64..40).prop_map(Value::Int).boxed(),
        1 => (-160i64..160)
            .prop_map(|q| Value::Float(q as f64 / 4.0))
            .boxed(),
        2 => prop::collection::vec(
            prop_oneof![
                Just('a'),
                Just('b'),
                Just('"'),
                Just('\\'),
                Just('é'),
                Just('\n'),
                Just('z'),
            ],
            0..5,
        )
        .prop_map(|cs| Value::str(cs.into_iter().collect::<String>()))
        .boxed(),
        _ => any::<bool>().prop_map(Value::Bool).boxed(),
    }
}

fn arb_typed_clause() -> impl Strategy<Value = Clause> {
    let attrs = ["ai", "f", "s", "flag"];
    // The shim has no `prop_flat_map`, so draw candidate constants for
    // every type up front and pick the pair matching `attr`.
    (
        0usize..4,
        (-40i64..40, -40i64..40),
        (-160i64..160, -160i64..160),
        (arb_typed_value(2), arb_typed_value(2)),
        any::<(bool, bool)>(),
        any::<(bool, bool)>(),
        0u8..7,
    )
        .prop_filter_map(
            "well-formed clause",
            move |(attr, (ix, iy), (qx, qy), (sx, sy), (bx, by), (li, hi), kind)| {
                let (x, y) = match attr {
                    0 => (Value::Int(ix), Value::Int(iy)),
                    1 => (Value::Float(qx as f64 / 4.0), Value::Float(qy as f64 / 4.0)),
                    2 => (sx, sy),
                    _ => (Value::Bool(bx), Value::Bool(by)),
                };
                let (x, y) = if x <= y { (x, y) } else { (y, x) };
                let interval = match kind {
                    0 => Interval::point(x),
                    1 => Interval::at_least(x),
                    2 => Interval::greater_than(x),
                    3 => Interval::at_most(x),
                    4 => Interval::less_than(x),
                    5 => {
                        // An opaque function clause on a type-appropriate
                        // attribute (all four are registry built-ins).
                        let (name, attr) = match attr {
                            0 => ("isodd", "ai"),
                            1 => ("ispositive", "f"),
                            2 => ("isempty", "s"),
                            _ => ("iseven", "ai"),
                        };
                        let func = predicate::FunctionRegistry::default().get(name)?;
                        return Some(Clause::Func {
                            name: name.to_string(),
                            attr: attr.to_string(),
                            func,
                        });
                    }
                    _ => {
                        let lo = if li {
                            Lower::Inclusive(x)
                        } else {
                            Lower::Exclusive(x)
                        };
                        let up = if hi {
                            Upper::Inclusive(y)
                        } else {
                            Upper::Exclusive(y)
                        };
                        Interval::new(lo, up).ok()?
                    }
                };
                Some(Clause::Range {
                    attr: attrs[attr].to_string(),
                    interval,
                })
            },
        )
}

fn arb_typed_tuple() -> impl Strategy<Value = Tuple> {
    (-41i64..41, -161i64..161, arb_typed_value(2), any::<bool>()).prop_map(|(i, q, s, b)| {
        Tuple::new(vec![
            Value::Int(i),
            Value::Float(q as f64 / 4.0),
            s,
            Value::Bool(b),
        ])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn typed_to_source_round_trips_structurally(
        clauses in prop::collection::vec(arb_typed_clause(), 1..5),
        tuples in prop::collection::vec(arb_typed_tuple(), 1..10),
    ) {
        let original = Predicate::new("rel", clauses);
        prop_assume!(original.is_satisfiable());
        // Every generated constant is finite and every clause bounded on
        // at least one side, so a spelling must exist.
        let src = original.to_source().expect("generated predicate has a source spelling");
        let reparsed = parse_predicate(&src)
            .unwrap_or_else(|e| panic!("reparse of {src:?} failed: {e}"));
        // Structural equality (clause-for-clause, constant types
        // included), not just evaluation equivalence.
        prop_assert_eq!(&reparsed, &original, "round trip changed the predicate via {:?}", src);
        // And evaluation equivalence as a belt-and-braces check.
        let s = typed_schema();
        let b1 = original.bind(&s).unwrap();
        let b2 = reparsed.bind(&s).unwrap();
        for t in &tuples {
            prop_assert_eq!(b1.matches(t), b2.matches(t), "diverged on {:?} via {:?}", t, src);
        }
    }
}

/// Test-side boolean expression AST with its own evaluator.
#[derive(Debug, Clone)]
enum Expr {
    Cmp { attr: usize, op: u8, k: i64 },
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, t: &Tuple) -> bool {
        match self {
            Expr::Cmp { attr, op, k } => {
                let Value::Int(v) = t.get(*attr) else {
                    unreachable!()
                };
                match op {
                    0 => v < k,
                    1 => v <= k,
                    2 => v == k,
                    3 => v >= k,
                    4 => v > k,
                    _ => v != k,
                }
            }
            Expr::And(a, b) => a.eval(t) && b.eval(t),
            Expr::Or(a, b) => a.eval(t) || b.eval(t),
        }
    }

    fn render(&self) -> String {
        match self {
            Expr::Cmp { attr, op, k } => {
                let o = ["<", "<=", "=", ">=", ">", "!="][*op as usize];
                format!("rel.{} {} {}", ATTRS[*attr], o, k)
            }
            Expr::And(a, b) => format!("({} and {})", a.render(), b.render()),
            Expr::Or(a, b) => format!("({} or {})", a.render(), b.render()),
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0usize..3, 0u8..6, 0i64..40).prop_map(|(attr, op, k)| Expr::Cmp { attr, op, k });
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dnf_split_preserves_semantics(
        expr in arb_expr(),
        tuples in prop::collection::vec(arb_tuple(), 1..20),
    ) {
        let src = expr.render();
        let preds = parse_predicates(&src)
            .unwrap_or_else(|e| panic!("parse of {src:?} failed: {e}"));
        prop_assert!(!preds.is_empty());
        let s = schema();
        let bound: Vec<_> = preds.iter().map(|p| p.bind(&s).unwrap()).collect();
        for t in &tuples {
            let via_dnf = bound.iter().any(|b| b.matches(t));
            prop_assert_eq!(
                via_dnf,
                expr.eval(t),
                "DNF diverged on {:?} for {:?}",
                t,
                src
            );
        }
    }
}
