//! Multi-relation (join) conditions.
//!
//! A [`JoinCondition`] is one conjunct of a rule condition that
//! references more than one relation: a list of single-relation
//! *premises* (each an ordinary [`Predicate`], so each premise still
//! resolves through the paper's Figure-1 index — the discrimination
//! network's alpha layer) plus a list of cross-relation [`JoinTest`]s
//! (`EMP.dno = DEPT.dno`, `EMP.salary < MGR.salary`, …).
//!
//! Canonical form, established by the parser and preserved by
//! [`JoinCondition::to_source`]:
//!
//! - premises are sorted by relation name (so a reparse of the rendered
//!   source reproduces the same premise order),
//! - every test has `left < right` (operands are swapped and the
//!   operator mirrored if needed), and tests are sorted and deduped.

use crate::predicate::Predicate;
use relation::Value;
use std::cmp::Ordering;
use std::fmt;

/// Comparison operator of a [`JoinTest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JoinOp {
    /// `=` — the equality joins that key the beta stores.
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl JoinOp {
    /// Mirrored operator, for swapping operand sides.
    pub fn flip(self) -> JoinOp {
        match self {
            JoinOp::Eq => JoinOp::Eq,
            JoinOp::Lt => JoinOp::Gt,
            JoinOp::Le => JoinOp::Ge,
            JoinOp::Gt => JoinOp::Lt,
            JoinOp::Ge => JoinOp::Le,
        }
    }

    /// Evaluates `left op right` under the total value order.
    pub fn holds(self, left: &Value, right: &Value) -> bool {
        let ord = left.cmp(right);
        match self {
            JoinOp::Eq => ord == Ordering::Equal,
            JoinOp::Lt => ord == Ordering::Less,
            JoinOp::Le => ord != Ordering::Greater,
            JoinOp::Gt => ord == Ordering::Greater,
            JoinOp::Ge => ord != Ordering::Less,
        }
    }

    /// Source spelling.
    pub fn source(self) -> &'static str {
        match self {
            JoinOp::Eq => "=",
            JoinOp::Lt => "<",
            JoinOp::Le => "<=",
            JoinOp::Gt => ">",
            JoinOp::Ge => ">=",
        }
    }
}

impl fmt::Display for JoinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.source())
    }
}

/// One cross-relation comparison between two premises of a
/// [`JoinCondition`]. `left` and `right` index the condition's premise
/// list; the canonical form has `left < right`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JoinTest {
    /// Premise index of the left operand.
    pub left: usize,
    /// Attribute of the left premise's relation.
    pub left_attr: String,
    /// Comparison operator.
    pub op: JoinOp,
    /// Premise index of the right operand.
    pub right: usize,
    /// Attribute of the right premise's relation.
    pub right_attr: String,
}

/// A multi-relation conjunct: N single-relation premises joined by
/// cross-relation tests. Premises with no clauses (relations mentioned
/// only in tests) are represented as clause-less [`Predicate`]s, which
/// match every tuple of their relation.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinCondition {
    premises: Vec<Predicate>,
    tests: Vec<JoinTest>,
}

impl JoinCondition {
    /// Builds a condition from already-canonical parts. The parser is
    /// the usual constructor; this is exposed for programmatic callers
    /// and re-canonicalizes defensively (premises sorted by relation,
    /// tests normalized to `left < right`, sorted, deduped).
    ///
    /// Returns `None` if fewer than two premises remain, a test indexes
    /// out of range, or a test compares a premise with itself.
    pub fn new(mut premises: Vec<Predicate>, tests: Vec<JoinTest>) -> Option<Self> {
        if premises.len() < 2 {
            return None;
        }
        let mut order: Vec<usize> = (0..premises.len()).collect();
        order.sort_by(|&a, &b| premises[a].relation().cmp(premises[b].relation()));
        // old index -> new index
        let mut remap = vec![0usize; premises.len()];
        for (new_ix, &old_ix) in order.iter().enumerate() {
            remap[old_ix] = new_ix;
        }
        premises.sort_by(|a, b| a.relation().cmp(b.relation()));
        for w in premises.windows(2) {
            if w[0].relation() == w[1].relation() {
                return None; // self-joins are not supported
            }
        }
        let mut canon = Vec::with_capacity(tests.len());
        for t in tests {
            if t.left >= remap.len() || t.right >= remap.len() {
                return None;
            }
            let (l, r) = (remap[t.left], remap[t.right]);
            let out = match l.cmp(&r) {
                Ordering::Equal => return None,
                Ordering::Less => JoinTest {
                    left: l,
                    left_attr: t.left_attr,
                    op: t.op,
                    right: r,
                    right_attr: t.right_attr,
                },
                Ordering::Greater => JoinTest {
                    left: r,
                    left_attr: t.right_attr,
                    op: t.op.flip(),
                    right: l,
                    right_attr: t.left_attr,
                },
            };
            canon.push(out);
        }
        canon.sort();
        canon.dedup();
        Some(JoinCondition {
            premises,
            tests: canon,
        })
    }

    /// The single-relation premises, sorted by relation name.
    pub fn premises(&self) -> &[Predicate] {
        &self.premises
    }

    /// The cross-relation tests, canonical (`left < right`, sorted).
    pub fn tests(&self) -> &[JoinTest] {
        &self.tests
    }

    /// Number of premises.
    pub fn arity(&self) -> usize {
        self.premises.len()
    }

    /// Index of the premise over `relation`, if any.
    pub fn premise_of(&self, relation: &str) -> Option<usize> {
        self.premises.iter().position(|p| p.relation() == relation)
    }

    /// Renders the condition back to parser-accepted source. Reparsing
    /// the result reproduces this condition exactly (premises re-sort to
    /// the same order because they are rendered in sorted order).
    ///
    /// Returns `None` if any premise clause is unrepresentable (same
    /// cases as [`Predicate::to_source`], e.g. non-finite floats).
    pub fn to_source(&self) -> Option<String> {
        let mut parts = Vec::new();
        for p in &self.premises {
            if p.clauses().is_empty() {
                continue; // relation is pinned by the tests below
            }
            parts.push(p.to_source()?);
        }
        for t in &self.tests {
            parts.push(format!(
                "{}.{} {} {}.{}",
                self.premises[t.left].relation(),
                t.left_attr,
                t.op.source(),
                self.premises[t.right].relation(),
                t.right_attr,
            ));
        }
        if parts.is_empty() {
            return None;
        }
        Some(parts.join(" and "))
    }
}

/// One conjunct of a parsed rule condition: either a classic
/// single-relation [`Predicate`] or a multi-relation [`JoinCondition`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedCondition {
    /// Single-relation conjunct — everything the paper's §1 grammar
    /// accepts, routed through the Figure-1 index as before.
    Single(Predicate),
    /// Multi-relation conjunct, handled by the join memo layer.
    Join(JoinCondition),
}

impl ParsedCondition {
    /// The contained single-relation predicate, if this is one.
    pub fn as_single(&self) -> Option<&Predicate> {
        match self {
            ParsedCondition::Single(p) => Some(p),
            ParsedCondition::Join(_) => None,
        }
    }

    /// The contained join condition, if this is one.
    pub fn as_join(&self) -> Option<&JoinCondition> {
        match self {
            ParsedCondition::Join(j) => Some(j),
            ParsedCondition::Single(_) => None,
        }
    }
}
