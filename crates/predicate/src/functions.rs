//! Registry of opaque predicate functions.
//!
//! The paper's example: `IsOdd(EMP.age) and EMP.dept = "Shoe"`. Function
//! clauses are resolved by name at parse time through this registry.

use crate::clause::PredFn;
use relation::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Named boolean functions over a single attribute value.
#[derive(Clone)]
pub struct FunctionRegistry {
    funcs: HashMap<String, PredFn>,
}

impl std::fmt::Debug for FunctionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.funcs.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        f.debug_struct("FunctionRegistry")
            .field("functions", &names)
            .finish()
    }
}

impl Default for FunctionRegistry {
    /// Registry pre-loaded with the built-ins.
    fn default() -> Self {
        let mut r = FunctionRegistry {
            funcs: HashMap::new(),
        };
        r.register(
            "isodd",
            |v| matches!(v, Value::Int(i) if i.rem_euclid(2) == 1),
        );
        r.register(
            "iseven",
            |v| matches!(v, Value::Int(i) if i.rem_euclid(2) == 0),
        );
        r.register("ispositive", |v| match v {
            Value::Int(i) => *i > 0,
            Value::Float(f) => *f > 0.0,
            _ => false,
        });
        r.register("isnegative", |v| match v {
            Value::Int(i) => *i < 0,
            Value::Float(f) => *f < 0.0,
            _ => false,
        });
        r.register("isempty", |v| matches!(v, Value::Str(s) if s.is_empty()));
        r
    }
}

impl FunctionRegistry {
    /// An empty registry (no built-ins).
    pub fn empty() -> Self {
        FunctionRegistry {
            funcs: HashMap::new(),
        }
    }

    /// Registers (or replaces) a function under `name` (lower-cased).
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&Value) -> bool + Send + Sync + 'static,
    ) {
        self.funcs.insert(name.into().to_lowercase(), Arc::new(f));
    }

    /// Looks up a function by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Option<PredFn> {
        self.funcs.get(&name.to_lowercase()).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins() {
        let r = FunctionRegistry::default();
        assert!(r.get("isodd").unwrap()(&Value::Int(3)));
        assert!(!r.get("isodd").unwrap()(&Value::Int(4)));
        assert!(!r.get("isodd").unwrap()(&Value::str("3")));
        assert!(r.get("IsOdd").is_some(), "lookup is case-insensitive");
        assert!(r.get("nope").is_none());
        assert!(r.get("iseven").unwrap()(&Value::Int(-2)));
        assert!(r.get("isnegative").unwrap()(&Value::Float(-0.5)));
        assert!(r.get("isempty").unwrap()(&Value::str("")));
    }

    #[test]
    fn custom_registration() {
        let mut r = FunctionRegistry::empty();
        assert!(r.get("long_name").is_none());
        r.register("long_name", |v| matches!(v, Value::Str(s) if s.len() > 5));
        assert!(r.get("long_name").unwrap()(&Value::str("abcdefg")));
        assert!(!r.get("long_name").unwrap()(&Value::str("abc")));
    }
}
