//! Conjunctive predicates and their schema-bound, evaluable form.

use crate::clause::Clause;
use interval::Interval;
use relation::{Schema, Tuple, Value};
use std::fmt;

/// A single-relation selection predicate: a conjunction of clauses over
/// one relation's attributes (§1's `P ≡ (t ∈ R) ∧ C1 ∧ … ∧ Cq`).
///
/// Disjunctive conditions are split into several `Predicate`s before
/// they get here ("we assume that any predicate containing a disjunction
/// is broken up into two or more predicates", §1); the parser's
/// [`crate::parse_dnf`] does that split.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    relation: String,
    clauses: Vec<Clause>,
    /// False when range clauses on one attribute intersected to nothing
    /// (`a < 3 and a > 5`): the predicate can never match.
    satisfiable: bool,
}

impl Predicate {
    /// Builds a predicate, folding multiple range clauses on the same
    /// attribute into one interval per attribute.
    pub fn new(relation: impl Into<String>, clauses: Vec<Clause>) -> Self {
        let mut merged: Vec<Clause> = Vec::with_capacity(clauses.len());
        let mut satisfiable = true;
        for clause in clauses {
            match clause {
                Clause::Range { attr, interval } => {
                    let existing = merged.iter_mut().find_map(|c| match c {
                        Clause::Range {
                            attr: a,
                            interval: iv,
                        } if *a == attr => Some(iv),
                        _ => None,
                    });
                    match existing {
                        Some(iv) => match iv.intersect(&interval) {
                            Some(x) => *iv = x,
                            None => satisfiable = false,
                        },
                        None => merged.push(Clause::Range { attr, interval }),
                    }
                }
                func => merged.push(func),
            }
        }
        Predicate {
            relation: relation.into(),
            clauses: merged,
            satisfiable,
        }
    }

    /// An always-false predicate on `relation`.
    pub fn unsatisfiable(relation: impl Into<String>) -> Self {
        Predicate {
            relation: relation.into(),
            clauses: Vec::new(),
            satisfiable: false,
        }
    }

    /// The relation this predicate selects from.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The (normalized) conjunct clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Can the predicate ever match?
    pub fn is_satisfiable(&self) -> bool {
        self.satisfiable
    }

    /// Renders the predicate back to parseable source text (the inverse
    /// of [`crate::parse_predicate`], up to clause normalization).
    /// Returns `None` for unsatisfiable predicates, which have no
    /// clause-level representation, and for constants with no literal
    /// spelling (non-finite floats).
    pub fn to_source(&self) -> Option<String> {
        use interval::{Lower, Upper};
        if !self.satisfiable {
            return None;
        }
        let mut parts = Vec::with_capacity(self.clauses.len());
        for c in &self.clauses {
            match c {
                Clause::Func { name, attr, .. } => {
                    parts.push(format!("{}({}.{})", name, self.relation, attr));
                }
                Clause::Range { attr, interval } => {
                    let a = format!("{}.{}", self.relation, attr);
                    let s = match (interval.lo(), interval.hi()) {
                        // A fully unbounded clause is a tautology with no
                        // source-level spelling.
                        (Lower::Unbounded, Upper::Unbounded) => return None,
                        (Lower::Unbounded, Upper::Inclusive(v)) => {
                            format!("{a} <= {}", source_literal(v)?)
                        }
                        (Lower::Unbounded, Upper::Exclusive(v)) => {
                            format!("{a} < {}", source_literal(v)?)
                        }
                        (Lower::Inclusive(v), Upper::Unbounded) => {
                            format!("{a} >= {}", source_literal(v)?)
                        }
                        (Lower::Exclusive(v), Upper::Unbounded) => {
                            format!("{a} > {}", source_literal(v)?)
                        }
                        (Lower::Inclusive(l), Upper::Inclusive(h)) if l == h => {
                            format!("{a} = {}", source_literal(l)?)
                        }
                        (lo, hi) => {
                            let lop = if lo.is_inclusive() { "<=" } else { "<" };
                            let hop = if hi.is_inclusive() { "<=" } else { "<" };
                            format!(
                                "{} {lop} {a} {hop} {}",
                                // srclint:allow(no-panic-in-lib): every Unbounded combination is matched above, so both bounds are finite here
                                source_literal(lo.value().expect("bounded"))?,
                                // srclint:allow(no-panic-in-lib): every Unbounded combination is matched above, so both bounds are finite here
                                source_literal(hi.value().expect("bounded"))?
                            )
                        }
                    };
                    parts.push(s);
                }
            }
        }
        if parts.is_empty() {
            // A TRUE predicate: emit a tautology on a dummy comparison
            // is impossible without an attribute, so report None.
            return None;
        }
        Some(parts.join(" and "))
    }

    /// Resolves attribute names against `schema` and coerces constants to
    /// the attribute types, producing the evaluable form.
    pub fn bind(&self, schema: &Schema) -> Result<BoundPredicate, BindError> {
        if schema.name() != self.relation {
            return Err(BindError::WrongRelation {
                predicate: self.relation.clone(),
                schema: schema.name().to_string(),
            });
        }
        let mut bound = Vec::with_capacity(self.clauses.len());
        for clause in &self.clauses {
            let attr_name = clause.attr();
            let attr_ix =
                schema
                    .attr_index(attr_name)
                    .ok_or_else(|| BindError::NoSuchAttribute {
                        relation: self.relation.clone(),
                        attr: attr_name.to_string(),
                    })?;
            let ty = schema.attributes()[attr_ix].ty;
            match clause {
                Clause::Range { interval, .. } => {
                    let coerce = |v: &Value| {
                        v.coerce_to(ty).ok_or_else(|| BindError::TypeMismatch {
                            attr: attr_name.to_string(),
                            expected: ty.to_string(),
                            got: v.attr_type().to_string(),
                        })
                    };
                    let lo = match interval.lo() {
                        interval::Lower::Unbounded => interval::Lower::Unbounded,
                        interval::Lower::Inclusive(v) => interval::Lower::Inclusive(coerce(v)?),
                        interval::Lower::Exclusive(v) => interval::Lower::Exclusive(coerce(v)?),
                    };
                    let hi = match interval.hi() {
                        interval::Upper::Unbounded => interval::Upper::Unbounded,
                        interval::Upper::Inclusive(v) => interval::Upper::Inclusive(coerce(v)?),
                        interval::Upper::Exclusive(v) => interval::Upper::Exclusive(coerce(v)?),
                    };
                    match Interval::new(lo, hi) {
                        Ok(iv) => bound.push(BoundClause::Range {
                            attr: attr_ix,
                            interval: iv,
                        }),
                        // Coercion cannot invert a non-empty interval,
                        // but guard anyway.
                        Err(_) => {
                            return Ok(BoundPredicate {
                                relation: self.relation.clone(),
                                clauses: Vec::new(),
                                satisfiable: false,
                            })
                        }
                    }
                }
                Clause::Func { name, func, .. } => bound.push(BoundClause::Func {
                    attr: attr_ix,
                    name: name.clone(),
                    func: func.clone(),
                }),
            }
        }
        Ok(BoundPredicate {
            relation: self.relation.clone(),
            clauses: bound,
            satisfiable: self.satisfiable,
        })
    }
}

/// Renders a constant so the lexer reads back the *same* [`Value`].
/// `Value`'s `Display` is not that inverse on two counts, both of which
/// used to break the recovery round-trip:
///
/// * floats print through `{}`, so `Float(7.0)` became `"7"` and
///   re-parsed as `Int(7)` — `{:?}` always keeps a `.` or an exponent;
///   non-finite floats have no literal spelling at all, hence `Option`;
/// * strings print through Rust's `{:?}`, which escapes control and
///   non-ASCII characters (`\n`, `\u{e9}`) the lexer does not know.
///   The lexer understands exactly two escapes, `\"` and `\\`, and
///   copies every other character verbatim — so that is precisely what
///   gets emitted here.
fn source_literal(v: &Value) -> Option<String> {
    match v {
        Value::Bool(b) => Some(b.to_string()),
        Value::Int(i) => Some(i.to_string()),
        Value::Float(x) => x.is_finite().then(|| format!("{x:?}")),
        Value::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for ch in s.chars() {
                if ch == '"' || ch == '\\' {
                    out.push('\\');
                }
                out.push(ch);
            }
            out.push('"');
            Some(out)
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.satisfiable {
            return write!(f, "{}: FALSE", self.relation);
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            match c {
                Clause::Range { attr, interval } => {
                    write!(f, "{}.{} in {}", self.relation, attr, interval)?
                }
                Clause::Func { name, attr, .. } => {
                    write!(f, "{}({}.{})", name, self.relation, attr)?
                }
            }
        }
        if self.clauses.is_empty() {
            write!(f, "{}: TRUE", self.relation)?;
        }
        Ok(())
    }
}

/// Errors from [`Predicate::bind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindError {
    /// The predicate names a different relation than the schema.
    WrongRelation { predicate: String, schema: String },
    /// The predicate references an attribute the schema lacks.
    NoSuchAttribute { relation: String, attr: String },
    /// A constant cannot be coerced to the attribute type.
    TypeMismatch {
        attr: String,
        expected: String,
        got: String,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::WrongRelation { predicate, schema } => {
                write!(
                    f,
                    "predicate on {predicate:?} bound against schema {schema:?}"
                )
            }
            BindError::NoSuchAttribute { relation, attr } => {
                write!(f, "relation {relation:?} has no attribute {attr:?}")
            }
            BindError::TypeMismatch {
                attr,
                expected,
                got,
            } => write!(f, "attribute {attr}: expected {expected}, got {got}"),
        }
    }
}

impl std::error::Error for BindError {}

/// A schema-resolved clause: attribute by index, constants coerced.
#[derive(Clone)]
pub enum BoundClause {
    /// Range/equality clause.
    Range {
        attr: usize,
        interval: Interval<Value>,
    },
    /// Opaque function clause.
    Func {
        attr: usize,
        name: String,
        func: crate::clause::PredFn,
    },
}

impl BoundClause {
    /// The attribute index this clause restricts.
    pub fn attr(&self) -> usize {
        match self {
            BoundClause::Range { attr, .. } | BoundClause::Func { attr, .. } => *attr,
        }
    }

    /// Evaluates the clause against a tuple. A clause over an attribute
    /// the tuple does not carry (arity shorter than the bound schema,
    /// e.g. a projected tuple) holds for no value, so it is `false`
    /// rather than a panic.
    pub fn test(&self, tuple: &Tuple) -> bool {
        match self {
            BoundClause::Range { attr, interval } => tuple
                .values()
                .get(*attr)
                .is_some_and(|v| interval.contains(v)),
            BoundClause::Func { attr, func, .. } => {
                tuple.values().get(*attr).is_some_and(|v| func(v))
            }
        }
    }
}

impl fmt::Debug for BoundClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundClause::Range { attr, interval } => {
                write!(f, "Range(#{attr} in {interval})")
            }
            BoundClause::Func { attr, name, .. } => write!(f, "Func({name}(#{attr}))"),
        }
    }
}

/// The evaluable form of a predicate: what the paper's `PREDICATES`
/// table stores and what runs during the residual full-match test.
#[derive(Debug, Clone)]
pub struct BoundPredicate {
    relation: String,
    clauses: Vec<BoundClause>,
    satisfiable: bool,
}

impl BoundPredicate {
    /// The relation this predicate selects from.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// The bound clauses.
    pub fn clauses(&self) -> &[BoundClause] {
        &self.clauses
    }

    /// Can the predicate ever match?
    pub fn is_satisfiable(&self) -> bool {
        self.satisfiable
    }

    /// Does the full conjunction hold for `tuple`?
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.satisfiable && self.clauses.iter().all(|c| c.test(tuple))
    }

    /// Scans a relation for every tuple the predicate matches — the
    /// query-side inverse of tuple-driven matching. Used when a rule is
    /// registered retroactively and must fire on facts already in the
    /// database.
    pub fn scan<'a>(
        &'a self,
        relation: &'a relation::Relation,
    ) -> impl Iterator<Item = (relation::TupleId, &'a Tuple)> + 'a {
        relation.iter().filter(|(_, t)| self.matches(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::AttrType;
    use std::sync::Arc;

    fn emp_schema() -> Schema {
        Schema::builder("emp")
            .attr("name", AttrType::Str)
            .attr("age", AttrType::Int)
            .attr("salary", AttrType::Float)
            .build()
    }

    fn tuple(name: &str, age: i64, salary: f64) -> Tuple {
        Tuple::new(vec![
            Value::str(name),
            Value::Int(age),
            Value::Float(salary),
        ])
    }

    #[test]
    fn merge_same_attribute_ranges() {
        let p = Predicate::new(
            "emp",
            vec![
                Clause::Range {
                    attr: "age".into(),
                    interval: Interval::greater_than(Value::Int(30)),
                },
                Clause::Range {
                    attr: "age".into(),
                    interval: Interval::at_most(Value::Int(40)),
                },
            ],
        );
        assert_eq!(p.clauses().len(), 1);
        assert!(p.is_satisfiable());
        let b = p.bind(&emp_schema()).unwrap();
        assert!(b.matches(&tuple("a", 35, 1.0)));
        assert!(!b.matches(&tuple("a", 30, 1.0)));
        assert!(b.matches(&tuple("a", 40, 1.0)));
        assert!(!b.matches(&tuple("a", 41, 1.0)));
    }

    #[test]
    fn contradictory_ranges_are_unsatisfiable() {
        let p = Predicate::new(
            "emp",
            vec![
                Clause::Range {
                    attr: "age".into(),
                    interval: Interval::less_than(Value::Int(3)),
                },
                Clause::Range {
                    attr: "age".into(),
                    interval: Interval::greater_than(Value::Int(5)),
                },
            ],
        );
        assert!(!p.is_satisfiable());
        let b = p.bind(&emp_schema()).unwrap();
        assert!(!b.matches(&tuple("a", 1, 1.0)));
        assert!(!b.matches(&tuple("a", 10, 1.0)));
    }

    #[test]
    fn bind_coerces_int_literal_to_float_attr() {
        let p = Predicate::new(
            "emp",
            vec![Clause::Range {
                attr: "salary".into(),
                interval: Interval::less_than(Value::Int(20_000)),
            }],
        );
        let b = p.bind(&emp_schema()).unwrap();
        assert!(b.matches(&tuple("a", 30, 19_999.5)));
        assert!(!b.matches(&tuple("a", 30, 20_000.0)));
    }

    #[test]
    fn bind_errors() {
        let wrong_rel = Predicate::new("dept", vec![]);
        assert!(matches!(
            wrong_rel.bind(&emp_schema()),
            Err(BindError::WrongRelation { .. })
        ));

        let no_attr = Predicate::new(
            "emp",
            vec![Clause::Range {
                attr: "bogus".into(),
                interval: Interval::point(Value::Int(1)),
            }],
        );
        assert!(matches!(
            no_attr.bind(&emp_schema()),
            Err(BindError::NoSuchAttribute { .. })
        ));

        let bad_type = Predicate::new(
            "emp",
            vec![Clause::Range {
                attr: "age".into(),
                interval: Interval::point(Value::str("x")),
            }],
        );
        assert!(matches!(
            bad_type.bind(&emp_schema()),
            Err(BindError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn conjunction_with_function_clause() {
        // The paper's example: IsOdd(EMP.age) and EMP.dept = "Shoe"
        // (dept stands in as name here).
        let p = Predicate::new(
            "emp",
            vec![
                Clause::Func {
                    name: "isodd".into(),
                    attr: "age".into(),
                    func: Arc::new(|v| matches!(v, Value::Int(i) if i % 2 != 0)),
                },
                Clause::Range {
                    attr: "name".into(),
                    interval: Interval::point(Value::str("shoe")),
                },
            ],
        );
        let b = p.bind(&emp_schema()).unwrap();
        assert!(b.matches(&tuple("shoe", 3, 0.0)));
        assert!(!b.matches(&tuple("shoe", 4, 0.0)));
        assert!(!b.matches(&tuple("hat", 3, 0.0)));
    }

    #[test]
    fn empty_conjunction_matches_everything() {
        let p = Predicate::new("emp", vec![]);
        let b = p.bind(&emp_schema()).unwrap();
        assert!(b.matches(&tuple("x", 0, 0.0)));
    }

    #[test]
    fn to_source_keeps_float_literals_float() {
        // Regression: `Display` prints `Float(7.0)` as `7`, which
        // re-parsed as `Int(7)` — a typed round-trip failure the
        // recovery path would inherit.
        let p = Predicate::new(
            "emp",
            vec![Clause::Range {
                attr: "salary".into(),
                interval: Interval::point(Value::Float(7.0)),
            }],
        );
        assert_eq!(p.to_source().unwrap(), "emp.salary = 7.0");
        let reparsed = crate::parse_predicate(&p.to_source().unwrap()).unwrap();
        assert_eq!(reparsed, p);
    }

    #[test]
    fn to_source_escapes_only_what_the_lexer_reads() {
        // Strings with control/unicode characters must not go through
        // Rust's `{:?}` escaping (the lexer knows only `\"` and `\\`).
        for s in ["new\nline", "héllo", "q\"uote", "back\\slash", "\t éß\""] {
            let p = Predicate::new(
                "emp",
                vec![Clause::Range {
                    attr: "name".into(),
                    interval: Interval::point(Value::str(s)),
                }],
            );
            let src = p.to_source().unwrap();
            let reparsed = crate::parse_predicate(&src)
                .unwrap_or_else(|e| panic!("reparse of {src:?} failed: {e}"));
            assert_eq!(reparsed, p, "via {src:?}");
        }
    }

    #[test]
    fn to_source_refuses_non_finite_floats() {
        for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let p = Predicate::new(
                "emp",
                vec![Clause::Range {
                    attr: "salary".into(),
                    interval: Interval::at_most(Value::Float(x)),
                }],
            );
            assert_eq!(p.to_source(), None, "{x} has no literal spelling");
        }
    }

    #[test]
    fn display() {
        let p = Predicate::new(
            "emp",
            vec![Clause::Range {
                attr: "age".into(),
                interval: Interval::greater_than(Value::Int(50)),
            }],
        );
        assert_eq!(p.to_string(), "emp.age in (50, +inf)");
        assert_eq!(Predicate::unsatisfiable("emp").to_string(), "emp: FALSE");
    }
}
