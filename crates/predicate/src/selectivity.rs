//! Clause selectivity estimation.
//!
//! The indexing scheme needs a *ranking* of a predicate's indexable
//! clauses: "if there is an indexable clause, the most selective one is
//! placed in the IBS-tree (selectivity estimates are obtained from the
//! query optimizer)" (§4). Estimates come from the catalog's equi-depth
//! histograms when the column has been analyzed, and from System-R-style
//! defaults otherwise.

use crate::predicate::{BoundClause, BoundPredicate};
use relation::{default_selectivity, Catalog};

/// Estimated fraction of tuples a bound clause admits.
pub fn clause_selectivity(catalog: &Catalog, relation: &str, clause: &BoundClause) -> f64 {
    match clause {
        BoundClause::Range { attr, interval } => match catalog.column_stats(relation, *attr) {
            Some(stats) => stats.selectivity(interval),
            None => default_selectivity(interval),
        },
        // Nothing is known about opaque functions; assume they filter
        // like a one-sided range. They are never indexed anyway.
        BoundClause::Func { .. } => relation::stats::defaults::OPEN_RANGE,
    }
}

/// The position of the most selective *indexable* clause of a predicate,
/// or `None` if every clause is an opaque function (the predicate then
/// goes to the non-indexable list of Figure 1).
pub fn most_selective_indexable(catalog: &Catalog, pred: &BoundPredicate) -> Option<usize> {
    pred.clauses()
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c, BoundClause::Range { .. }))
        .min_by(|(_, a), (_, b)| {
            clause_selectivity(catalog, pred.relation(), a).total_cmp(&clause_selectivity(
                catalog,
                pred.relation(),
                b,
            ))
        })
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_predicate;
    use relation::{AttrType, Database, Schema, Value};

    fn analyzed_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            Schema::builder("emp")
                .attr("age", AttrType::Int)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .unwrap();
        // age uniform 20..70, salary uniform 0..100_000.
        for i in 0..1_000i64 {
            db.insert(
                "emp",
                vec![Value::Int(20 + i % 50), Value::Int((i * 100) % 100_000)],
            )
            .unwrap();
        }
        db.catalog_mut().analyze();
        db
    }

    #[test]
    fn equality_beats_range() {
        let db = analyzed_db();
        let schema = db.catalog().relation("emp").unwrap().schema().clone();
        let p = parse_predicate("emp.age = 30 and emp.salary > 10000")
            .unwrap()
            .bind(&schema)
            .unwrap();
        // Clause 0 is the equality: far more selective.
        assert_eq!(most_selective_indexable(db.catalog(), &p), Some(0));
    }

    #[test]
    fn narrow_range_beats_wide_range() {
        let db = analyzed_db();
        let schema = db.catalog().relation("emp").unwrap().schema().clone();
        let p = parse_predicate("emp.age > 21 and 10000 <= emp.salary <= 11000")
            .unwrap()
            .bind(&schema)
            .unwrap();
        assert_eq!(most_selective_indexable(db.catalog(), &p), Some(1));
    }

    #[test]
    fn all_function_clauses_is_none() {
        let db = analyzed_db();
        let schema = db.catalog().relation("emp").unwrap().schema().clone();
        let p = parse_predicate("isodd(emp.age)")
            .unwrap()
            .bind(&schema)
            .unwrap();
        assert_eq!(most_selective_indexable(db.catalog(), &p), None);
    }

    #[test]
    fn defaults_without_stats() {
        // Fresh catalog, never analyzed: defaults still rank equality
        // over ranges.
        let mut db = Database::new();
        db.create_relation(
            Schema::builder("emp")
                .attr("age", AttrType::Int)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .unwrap();
        let schema = db.catalog().relation("emp").unwrap().schema().clone();
        let p = parse_predicate("emp.salary > 10000 and emp.age = 30")
            .unwrap()
            .bind(&schema)
            .unwrap();
        assert_eq!(most_selective_indexable(db.catalog(), &p), Some(1));
    }
}
