//! Tokenizer for the predicate language.
//!
//! The surface syntax follows the paper's examples:
//!
//! ```text
//! EMP.salary < 20000 and EMP.age > 50
//! 20000 <= EMP.salary <= 30000
//! EMP.job = "Salesperson"
//! IsOdd(EMP.age) and EMP.dept = "Shoe"
//! ```

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier (relation, attribute, or function name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Double-quoted string literal (supports `\"` and `\\`).
    Str(String),
    /// Boolean literal.
    Bool(bool),
    Lt,
    Le,
    Eq,
    Ge,
    Gt,
    Ne,
    And,
    Or,
    LParen,
    RParen,
    Dot,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "{s:?}"),
            Token::Bool(b) => write!(f, "{b}"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Eq => write!(f, "="),
            Token::Ge => write!(f, ">="),
            Token::Gt => write!(f, ">"),
            Token::Ne => write!(f, "!="),
            Token::And => write!(f, "and"),
            Token::Or => write!(f, "or"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Dot => write!(f, "."),
        }
    }
}

/// Lexing errors with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub pos: usize,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.message)
    }
}

/// Tokenizes `input`.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b'.' => {
                out.push(Token::Dot);
                i += 1;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'=' => {
                // Accept both `=` and `==`.
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                } else {
                    i += 1;
                }
                out.push(Token::Eq);
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(LexError {
                        pos: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            b'"' => {
                let (s, next) = lex_string(input, i)?;
                out.push(Token::Str(s));
                i = next;
            }
            b'-' | b'0'..=b'9' => {
                let (tok, next) = lex_number(input, i)?;
                out.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &input[start..i];
                out.push(match word.to_ascii_lowercase().as_str() {
                    "and" => Token::And,
                    "or" => Token::Or,
                    "true" => Token::Bool(true),
                    "false" => Token::Bool(false),
                    _ => Token::Ident(word.to_string()),
                });
            }
            _ => {
                return Err(LexError {
                    pos: i,
                    message: format!(
                        "unexpected character {:?}",
                        // Guarded by the loop bound; placeholder keeps
                        // the error path panic-free regardless.
                        input[i..]
                            .chars()
                            .next()
                            .unwrap_or(char::REPLACEMENT_CHARACTER)
                    ),
                });
            }
        }
    }
    Ok(out)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize), LexError> {
    let bytes = input.as_bytes();
    let mut s = String::new();
    let mut i = start + 1; // skip opening quote
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Ok((s, i + 1)),
            b'\\' => {
                match bytes.get(i + 1) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    _ => {
                        return Err(LexError {
                            pos: i,
                            message: "bad escape".into(),
                        })
                    }
                }
                i += 2;
            }
            _ => {
                // Copy one full UTF-8 character; `i` always sits on a
                // char boundary, but exiting to the unterminated-string
                // error beats panicking if that ever breaks.
                let Some(ch) = input[i..].chars().next() else {
                    break;
                };
                s.push(ch);
                i += ch.len_utf8();
            }
        }
    }
    Err(LexError {
        pos: start,
        message: "unterminated string".into(),
    })
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize), LexError> {
    let bytes = input.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
        if i >= bytes.len() || !bytes[i].is_ascii_digit() {
            return Err(LexError {
                pos: start,
                message: "expected digits after '-'".into(),
            });
        }
    }
    let mut is_float = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => i += 1,
            b'.' if !is_float && bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) => {
                is_float = true;
                i += 1;
            }
            b'e' | b'E'
                if bytes
                    .get(i + 1)
                    .is_some_and(|c| c.is_ascii_digit() || *c == b'-' || *c == b'+') =>
            {
                is_float = true;
                i += 2;
            }
            _ => break,
        }
    }
    let text = &input[start..i];
    let tok = if is_float {
        Token::Float(text.parse().map_err(|e| LexError {
            pos: start,
            message: format!("bad float literal: {e}"),
        })?)
    } else {
        Token::Int(text.parse().map_err(|e| LexError {
            pos: start,
            message: format!("bad int literal: {e}"),
        })?)
    };
    Ok((tok, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_lex() {
        let toks = lex("EMP.salary < 20000 and EMP.age > 50").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("EMP".into()),
                Token::Dot,
                Token::Ident("salary".into()),
                Token::Lt,
                Token::Int(20000),
                Token::And,
                Token::Ident("EMP".into()),
                Token::Dot,
                Token::Ident("age".into()),
                Token::Gt,
                Token::Int(50),
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = lex("< <= = == >= > != <>").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::Le,
                Token::Eq,
                Token::Eq,
                Token::Ge,
                Token::Gt,
                Token::Ne,
                Token::Ne,
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        let toks = lex(r#"emp.job = "Sales\"person\\" "#).unwrap();
        assert_eq!(toks[4], Token::Str("Sales\"person\\".into()));
    }

    #[test]
    fn numbers() {
        let toks = lex("42 -7 3.5 -0.25 1e3 2.5e-2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Int(-7),
                Token::Float(3.5),
                Token::Float(-0.25),
                Token::Float(1e3),
                Token::Float(2.5e-2),
            ]
        );
    }

    #[test]
    fn keywords_case_insensitive() {
        let toks = lex("AND Or TRUE false").unwrap();
        assert_eq!(
            toks,
            vec![Token::And, Token::Or, Token::Bool(true), Token::Bool(false)]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("a # b").is_err());
        assert!(lex(r#""unterminated"#).is_err());
        assert!(lex("! x").is_err());
        assert!(lex("- x").is_err());
    }
}
