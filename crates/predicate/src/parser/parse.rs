//! Recursive-descent parser and DNF normalization.
//!
//! The grammar (keywords case-insensitive):
//!
//! ```text
//! expr   := term ('or' term)*
//! term   := factor ('and' factor)*
//! factor := '(' expr ')' | funccall | comparison
//! funccall   := Ident '(' attrref ')'
//! comparison := operand cmp operand (cmp operand)?
//! operand    := literal | attrref
//! attrref    := Ident '.' Ident
//! cmp        := '<' | '<=' | '=' | '>=' | '>' | '!=' | '<>'
//! ```
//!
//! The boolean expression is normalized to disjunctive normal form; each
//! disjunct becomes one [`Predicate`], implementing §1's "any predicate
//! containing a disjunction is broken up into two or more predicates".
//! `!=` desugars to `< or >`, which rides the same mechanism.

use crate::clause::Clause;
use crate::functions::FunctionRegistry;
use crate::join::{JoinCondition, JoinOp, JoinTest, ParsedCondition};
use crate::parser::lexer::{lex, LexError, Token};
use crate::predicate::Predicate;
use interval::{Interval, Lower, Upper};
use relation::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenizer failure.
    Lex(LexError),
    /// Unexpected token (or end of input).
    Unexpected {
        got: Option<String>,
        expected: String,
    },
    /// A comparison between two literals or two attributes.
    BadComparison(String),
    /// A chained comparison with inconsistent operator directions.
    BadChain(String),
    /// Unknown function name.
    UnknownFunction(String),
    /// One conjunct references more than one relation (join conditions
    /// are out of scope, as in the paper).
    MultipleRelations { first: String, second: String },
    /// The input contained a disjunction but a single conjunctive
    /// predicate was requested.
    DisjunctionNotAllowed,
    /// Empty input.
    Empty,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { got, expected } => match got {
                Some(g) => write!(f, "unexpected {g:?}, expected {expected}"),
                None => write!(f, "unexpected end of input, expected {expected}"),
            },
            ParseError::BadComparison(m) => write!(f, "bad comparison: {m}"),
            ParseError::BadChain(m) => write!(f, "bad chained comparison: {m}"),
            ParseError::UnknownFunction(n) => write!(f, "unknown function {n:?}"),
            ParseError::MultipleRelations { first, second } => write!(
                f,
                "conjunct mixes relations {first:?} and {second:?} (join predicates are not supported)"
            ),
            ParseError::DisjunctionNotAllowed => {
                write!(f, "input is a disjunction; use parse_dnf to split it")
            }
            ParseError::Empty => write!(f, "empty predicate"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// A parsed leaf before DNF expansion.
#[derive(Debug, Clone)]
enum Leaf {
    /// Range clause; `interval = None` means the comparison chain was
    /// contradictory (e.g. `5 <= a <= 3`) — the conjunct is
    /// unsatisfiable.
    Range {
        rel: String,
        attr: String,
        interval: Option<Interval<Value>>,
    },
    /// Function clause.
    Func {
        rel: String,
        attr: String,
        name: String,
    },
    /// `attr != c`, expanded to `< c or > c` during DNF.
    NotEqual {
        rel: String,
        attr: String,
        value: Value,
    },
    /// Cross-relation comparison (`a.x ρ b.y`), only produced when the
    /// parser runs in join-aware mode ([`parse_conditions`]).
    Join {
        left_rel: String,
        left_attr: String,
        op: JoinOp,
        right_rel: String,
        right_attr: String,
    },
    /// `a.x != b.y`, expanded to `< or >` during DNF.
    JoinNotEqual {
        left_rel: String,
        left_attr: String,
        right_rel: String,
        right_attr: String,
    },
}

#[derive(Debug, Clone)]
enum Expr {
    Or(Box<Expr>, Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Leaf(Leaf),
}

/// Lexes and parses `input`, returning its DNF conjuncts as leaf lists.
fn parse_to_conjuncts(input: &str, allow_join: bool) -> Result<Vec<Vec<Leaf>>, ParseError> {
    let tokens = lex(input)?;
    if tokens.is_empty() {
        return Err(ParseError::Empty);
    }
    let mut p = Parser {
        tokens,
        pos: 0,
        allow_join,
    };
    let expr = p.expr()?;
    if p.pos != p.tokens.len() {
        return Err(ParseError::Unexpected {
            got: Some(p.tokens[p.pos].to_string()),
            expected: "end of input".into(),
        });
    }
    Ok(dnf(&expr))
}

/// Parses `input` into one predicate per disjunct of its DNF.
pub fn parse_dnf(input: &str, funcs: &FunctionRegistry) -> Result<Vec<Predicate>, ParseError> {
    parse_to_conjuncts(input, false)?
        .into_iter()
        .map(|leaves| build_predicate(leaves, funcs))
        .collect()
}

/// Parses `input` as a single conjunctive predicate (no `or`, no `!=`).
pub fn parse_conjunct(input: &str, funcs: &FunctionRegistry) -> Result<Predicate, ParseError> {
    let mut preds = parse_dnf(input, funcs)?;
    match (preds.pop(), preds.is_empty()) {
        (Some(p), true) => Ok(p),
        _ => Err(ParseError::DisjunctionNotAllowed),
    }
}

/// Join-aware variant of [`parse_dnf`]: each DNF conjunct becomes either
/// a single-relation [`Predicate`] or a multi-relation
/// [`JoinCondition`], depending on how many relations it references.
/// Cross-relation comparisons (`emp.dno = dept.dno`) are accepted here
/// and only here.
pub fn parse_conditions(
    input: &str,
    funcs: &FunctionRegistry,
) -> Result<Vec<ParsedCondition>, ParseError> {
    parse_to_conjuncts(input, true)?
        .into_iter()
        .map(|leaves| build_condition(leaves, funcs))
        .collect()
}

/// Parses `input` as a single join-aware conjunct (no `or`, no `!=`).
pub fn parse_condition(
    input: &str,
    funcs: &FunctionRegistry,
) -> Result<ParsedCondition, ParseError> {
    let mut conds = parse_conditions(input, funcs)?;
    match (conds.pop(), conds.is_empty()) {
        (Some(c), true) => Ok(c),
        _ => Err(ParseError::DisjunctionNotAllowed),
    }
}

/// Expands an expression tree to DNF: a list of conjuncts, each a list
/// of leaves. `NotEqual` leaves split into two alternatives here.
fn dnf(expr: &Expr) -> Vec<Vec<Leaf>> {
    match expr {
        Expr::Or(a, b) => {
            let mut out = dnf(a);
            out.extend(dnf(b));
            out
        }
        Expr::And(a, b) => {
            let left = dnf(a);
            let right = dnf(b);
            let mut out = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    let mut c = l.clone();
                    c.extend(r.iter().cloned());
                    out.push(c);
                }
            }
            out
        }
        Expr::Leaf(Leaf::NotEqual { rel, attr, value }) => vec![
            vec![Leaf::Range {
                rel: rel.clone(),
                attr: attr.clone(),
                interval: Some(Interval::less_than(value.clone())),
            }],
            vec![Leaf::Range {
                rel: rel.clone(),
                attr: attr.clone(),
                interval: Some(Interval::greater_than(value.clone())),
            }],
        ],
        Expr::Leaf(Leaf::JoinNotEqual {
            left_rel,
            left_attr,
            right_rel,
            right_attr,
        }) => vec![
            vec![Leaf::Join {
                left_rel: left_rel.clone(),
                left_attr: left_attr.clone(),
                op: JoinOp::Lt,
                right_rel: right_rel.clone(),
                right_attr: right_attr.clone(),
            }],
            vec![Leaf::Join {
                left_rel: left_rel.clone(),
                left_attr: left_attr.clone(),
                op: JoinOp::Gt,
                right_rel: right_rel.clone(),
                right_attr: right_attr.clone(),
            }],
        ],
        Expr::Leaf(l) => vec![vec![l.clone()]],
    }
}

fn build_predicate(leaves: Vec<Leaf>, funcs: &FunctionRegistry) -> Result<Predicate, ParseError> {
    let mut relation: Option<String> = None;
    let mut clauses = Vec::with_capacity(leaves.len());
    let mut satisfiable = true;
    for leaf in leaves {
        let (rel, clause) = match leaf {
            Leaf::Range {
                rel,
                attr,
                interval,
            } => match interval {
                Some(iv) => (rel, Some(Clause::Range { attr, interval: iv })),
                None => {
                    satisfiable = false;
                    (rel, None)
                }
            },
            Leaf::Func { rel, attr, name } => {
                let func = funcs
                    .get(&name)
                    .ok_or_else(|| ParseError::UnknownFunction(name.clone()))?;
                (rel, Some(Clause::Func { name, attr, func }))
            }
            Leaf::NotEqual { .. } | Leaf::JoinNotEqual { .. } => {
                // srclint:allow(no-panic-in-lib): dnf() expands every NotEqual into two Range alternatives before this loop runs
                unreachable!("expanded during DNF")
            }
            Leaf::Join {
                left_rel,
                right_rel,
                ..
            } => {
                return Err(ParseError::MultipleRelations {
                    first: left_rel,
                    second: right_rel,
                })
            }
        };
        match &relation {
            None => relation = Some(rel),
            Some(r) if *r != rel => {
                return Err(ParseError::MultipleRelations {
                    first: r.clone(),
                    second: rel,
                })
            }
            Some(_) => {}
        }
        if let Some(c) = clause {
            clauses.push(c);
        }
    }
    let relation = relation.ok_or(ParseError::Empty)?;
    let p = Predicate::new(relation.clone(), clauses);
    Ok(if satisfiable {
        p
    } else {
        Predicate::unsatisfiable(relation)
    })
}

/// Join-aware conjunct builder: one relation and no cross-relation
/// tests degrade to a plain [`Predicate`]; otherwise a
/// [`JoinCondition`] is assembled with premises sorted by relation
/// name. A conjunct with any unsatisfiable premise collapses to a
/// single unsatisfiable predicate over the first (sorted) relation.
fn build_condition(
    leaves: Vec<Leaf>,
    funcs: &FunctionRegistry,
) -> Result<ParsedCondition, ParseError> {
    let mut tests = Vec::new();
    let mut simple = Vec::new();
    for leaf in leaves {
        match leaf {
            Leaf::Join {
                left_rel,
                left_attr,
                op,
                right_rel,
                right_attr,
            } => tests.push((left_rel, left_attr, op, right_rel, right_attr)),
            other => simple.push(other),
        }
    }

    // Group ordinary clauses per relation (BTreeMap: deterministic,
    // already sorted by relation name — the canonical premise order).
    let mut by_rel: BTreeMap<String, (Vec<Clause>, bool)> = BTreeMap::new();
    for leaf in simple {
        let (rel, clause, sat) = match leaf {
            Leaf::Range {
                rel,
                attr,
                interval,
            } => match interval {
                Some(iv) => (rel, Some(Clause::Range { attr, interval: iv }), true),
                None => (rel, None, false),
            },
            Leaf::Func { rel, attr, name } => {
                let func = funcs
                    .get(&name)
                    .ok_or_else(|| ParseError::UnknownFunction(name.clone()))?;
                (rel, Some(Clause::Func { name, attr, func }), true)
            }
            Leaf::NotEqual { .. } | Leaf::Join { .. } | Leaf::JoinNotEqual { .. } => {
                // srclint:allow(no-panic-in-lib): dnf() expands NotEqual leaves and the loop above diverts Join leaves
                unreachable!("expanded during DNF or diverted above")
            }
        };
        let entry = by_rel.entry(rel).or_insert_with(|| (Vec::new(), true));
        if let Some(c) = clause {
            entry.0.push(c);
        }
        entry.1 &= sat;
    }
    for (lrel, _, _, rrel, _) in &tests {
        by_rel
            .entry(lrel.clone())
            .or_insert_with(|| (Vec::new(), true));
        by_rel
            .entry(rrel.clone())
            .or_insert_with(|| (Vec::new(), true));
    }

    if by_rel.is_empty() {
        return Err(ParseError::Empty);
    }
    if by_rel.len() == 1 && tests.is_empty() {
        let (rel, (clauses, sat)) = by_rel.into_iter().next().ok_or(ParseError::Empty)?;
        let p = Predicate::new(rel.clone(), clauses);
        return Ok(ParsedCondition::Single(if sat && p.is_satisfiable() {
            p
        } else {
            Predicate::unsatisfiable(rel)
        }));
    }

    let mut premises = Vec::with_capacity(by_rel.len());
    let mut unsat = false;
    for (rel, (clauses, sat)) in by_rel {
        let p = Predicate::new(rel, clauses);
        unsat |= !sat || !p.is_satisfiable();
        premises.push(p);
    }
    if unsat {
        let rel = premises[0].relation().to_string();
        return Ok(ParsedCondition::Single(Predicate::unsatisfiable(rel)));
    }
    let index_of = |rel: &str| premises.iter().position(|p| p.relation() == rel);
    let mut join_tests = Vec::with_capacity(tests.len());
    for (lrel, lattr, op, rrel, rattr) in tests {
        let (Some(l), Some(r)) = (index_of(&lrel), index_of(&rrel)) else {
            return Err(ParseError::Empty);
        };
        join_tests.push(JoinTest {
            left: l,
            left_attr: lattr,
            op,
            right: r,
            right_attr: rattr,
        });
    }
    match JoinCondition::new(premises, join_tests) {
        Some(j) => Ok(ParsedCondition::Join(j)),
        None => Err(ParseError::BadComparison(
            "degenerate join condition".into(),
        )),
    }
}

/// One of the two comparison operand kinds.
#[derive(Debug, Clone)]
enum Operand {
    Literal(Value),
    Attr { rel: String, attr: String },
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Accept cross-relation comparisons (`a.x = b.y`) as join leaves
    /// instead of rejecting them. Set by [`parse_conditions`].
    allow_join: bool,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if t == *want => Ok(()),
            got => Err(ParseError::Unexpected {
                got: got.map(|t| t.to_string()),
                expected: what.to_string(),
            }),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.term()?;
        while self.peek() == Some(&Token::Or) {
            self.next();
            let right = self.term()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.factor()?;
        while self.peek() == Some(&Token::And) {
            self.next();
            let right = self.factor()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some(Token::LParen) => {
                self.next();
                let e = self.expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            Some(Token::Ident(_))
                if matches!(self.tokens.get(self.pos + 1), Some(Token::LParen)) =>
            {
                self.funccall()
            }
            _ => self.comparison(),
        }
    }

    fn funccall(&mut self) -> Result<Expr, ParseError> {
        let name = match self.next() {
            Some(Token::Ident(name)) => name,
            got => {
                return Err(ParseError::Unexpected {
                    got: got.map(|t| t.to_string()),
                    expected: "function name".into(),
                })
            }
        };
        self.expect(&Token::LParen, "'('")?;
        let (rel, attr) = self.attrref()?;
        self.expect(&Token::RParen, "')'")?;
        Ok(Expr::Leaf(Leaf::Func { rel, attr, name }))
    }

    fn attrref(&mut self) -> Result<(String, String), ParseError> {
        let rel = match self.next() {
            Some(Token::Ident(r)) => r,
            got => {
                return Err(ParseError::Unexpected {
                    got: got.map(|t| t.to_string()),
                    expected: "relation name".into(),
                })
            }
        };
        self.expect(&Token::Dot, "'.'")?;
        match self.next() {
            Some(Token::Ident(a)) => Ok((rel, a)),
            got => Err(ParseError::Unexpected {
                got: got.map(|t| t.to_string()),
                expected: "attribute name".into(),
            }),
        }
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.next();
                Ok(Operand::Literal(Value::Int(i)))
            }
            Some(Token::Float(x)) => {
                self.next();
                Ok(Operand::Literal(Value::Float(x)))
            }
            Some(Token::Str(s)) => {
                self.next();
                Ok(Operand::Literal(Value::Str(s)))
            }
            Some(Token::Bool(b)) => {
                self.next();
                Ok(Operand::Literal(Value::Bool(b)))
            }
            Some(Token::Ident(_)) => {
                let (rel, attr) = self.attrref()?;
                Ok(Operand::Attr { rel, attr })
            }
            got => Err(ParseError::Unexpected {
                got: got.map(|t| t.to_string()),
                expected: "literal or relation.attribute".into(),
            }),
        }
    }

    fn cmp_op(&mut self) -> Result<Token, ParseError> {
        match self.next() {
            Some(t @ (Token::Lt | Token::Le | Token::Eq | Token::Ge | Token::Gt | Token::Ne)) => {
                Ok(t)
            }
            got => Err(ParseError::Unexpected {
                got: got.map(|t| t.to_string()),
                expected: "comparison operator".into(),
            }),
        }
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let a = self.operand()?;
        let op1 = self.cmp_op()?;
        let b = self.operand()?;

        // Chained form: lit op attr op lit.
        let chained = matches!(
            self.peek(),
            Some(Token::Lt | Token::Le | Token::Eq | Token::Ge | Token::Gt | Token::Ne)
        );
        if chained {
            let op2 = self.cmp_op()?;
            let c = self.operand()?;
            return self.lower_chain(a, op1, b, op2, c);
        }
        self.lower_single(a, op1, b)
    }

    fn lower_single(&self, a: Operand, op: Token, b: Operand) -> Result<Expr, ParseError> {
        // Normalize to attr-on-the-left.
        let (rel, attr, op, lit) = match (a, b) {
            (Operand::Attr { rel, attr }, Operand::Literal(v)) => (rel, attr, op, v),
            (Operand::Literal(v), Operand::Attr { rel, attr }) => (rel, attr, flip(op), v),
            (Operand::Literal(_), Operand::Literal(_)) => {
                return Err(ParseError::BadComparison("both sides are literals".into()))
            }
            (
                Operand::Attr {
                    rel: left_rel,
                    attr: left_attr,
                },
                Operand::Attr {
                    rel: right_rel,
                    attr: right_attr,
                },
            ) => {
                if !self.allow_join {
                    return Err(ParseError::BadComparison(
                        "both sides are attributes (join predicates are not supported)".into(),
                    ));
                }
                if left_rel == right_rel {
                    return Err(ParseError::BadComparison(format!(
                        "both sides reference relation {left_rel:?} (self-joins are not supported)"
                    )));
                }
                let leaf = match op {
                    Token::Lt => join_leaf(left_rel, left_attr, JoinOp::Lt, right_rel, right_attr),
                    Token::Le => join_leaf(left_rel, left_attr, JoinOp::Le, right_rel, right_attr),
                    Token::Gt => join_leaf(left_rel, left_attr, JoinOp::Gt, right_rel, right_attr),
                    Token::Ge => join_leaf(left_rel, left_attr, JoinOp::Ge, right_rel, right_attr),
                    Token::Eq => join_leaf(left_rel, left_attr, JoinOp::Eq, right_rel, right_attr),
                    Token::Ne => Leaf::JoinNotEqual {
                        left_rel,
                        left_attr,
                        right_rel,
                        right_attr,
                    },
                    // srclint:allow(no-panic-in-lib): comparison() only dispatches here for tokens cmp_op() accepted
                    _ => unreachable!("cmp_op filtered"),
                };
                return Ok(Expr::Leaf(leaf));
            }
        };
        let leaf = match op {
            Token::Lt => Leaf::Range {
                rel,
                attr,
                interval: Some(Interval::less_than(lit)),
            },
            Token::Le => Leaf::Range {
                rel,
                attr,
                interval: Some(Interval::at_most(lit)),
            },
            Token::Gt => Leaf::Range {
                rel,
                attr,
                interval: Some(Interval::greater_than(lit)),
            },
            Token::Ge => Leaf::Range {
                rel,
                attr,
                interval: Some(Interval::at_least(lit)),
            },
            Token::Eq => Leaf::Range {
                rel,
                attr,
                interval: Some(Interval::point(lit)),
            },
            Token::Ne => Leaf::NotEqual {
                rel,
                attr,
                value: lit,
            },
            // srclint:allow(no-panic-in-lib): comparison() only dispatches here for tokens cmp_op() accepted
            _ => unreachable!("cmp_op filtered"),
        };
        Ok(Expr::Leaf(leaf))
    }

    /// Lowers `c1 ρ1 attr ρ2 c2` (the paper's general range clause form)
    /// to an interval.
    fn lower_chain(
        &self,
        a: Operand,
        op1: Token,
        b: Operand,
        op2: Token,
        c: Operand,
    ) -> Result<Expr, ParseError> {
        let (lo_lit, rel, attr, hi_lit, op_lo, op_hi) = match (a, b, c) {
            (Operand::Literal(lo), Operand::Attr { rel, attr }, Operand::Literal(hi)) => {
                (lo, rel, attr, hi, op1, op2)
            }
            _ => {
                return Err(ParseError::BadChain(
                    "chained comparisons must be literal ρ attr ρ literal".into(),
                ))
            }
        };
        // Both ops ascending (< / <=) or both descending (> / >=).
        let make = |lo: Value, lo_op: &Token, hi: Value, hi_op: &Token| {
            let lower = match lo_op {
                Token::Le => Lower::Inclusive(lo),
                Token::Lt => Lower::Exclusive(lo),
                // srclint:allow(no-panic-in-lib): both call sites below normalize descending chains to Lt/Le before calling
                _ => unreachable!(),
            };
            let upper = match hi_op {
                Token::Le => Upper::Inclusive(hi),
                Token::Lt => Upper::Exclusive(hi),
                // srclint:allow(no-panic-in-lib): both call sites below normalize descending chains to Lt/Le before calling
                _ => unreachable!(),
            };
            Interval::new(lower, upper).ok()
        };
        let interval = match (&op_lo, &op_hi) {
            (Token::Lt | Token::Le, Token::Lt | Token::Le) => make(lo_lit, &op_lo, hi_lit, &op_hi),
            (Token::Gt | Token::Ge, Token::Gt | Token::Ge) => {
                // c1 >= attr >= c2 reads downward: flip to c2 <= attr <= c1.
                make(hi_lit, &flip(op_hi), lo_lit, &flip(op_lo))
            }
            _ => {
                return Err(ParseError::BadChain(
                    "chained comparison operators must point the same way".into(),
                ))
            }
        };
        Ok(Expr::Leaf(Leaf::Range {
            rel,
            attr,
            interval,
        }))
    }
}

fn join_leaf(
    left_rel: String,
    left_attr: String,
    op: JoinOp,
    right_rel: String,
    right_attr: String,
) -> Leaf {
    Leaf::Join {
        left_rel,
        left_attr,
        op,
        right_rel,
        right_attr,
    }
}

/// Mirror a comparison operator (for swapping operand sides).
fn flip(op: Token) -> Token {
    match op {
        Token::Lt => Token::Gt,
        Token::Le => Token::Ge,
        Token::Gt => Token::Lt,
        Token::Ge => Token::Le,
        other => other,
    }
}
