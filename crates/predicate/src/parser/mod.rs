//! The predicate language: lexer, parser, and DNF normalization.

mod lexer;
mod parse;

pub use lexer::{lex, LexError, Token};
pub use parse::{parse_condition, parse_conditions, parse_conjunct, parse_dnf, ParseError};
