//! Predicate clauses, exactly the three forms of §1:
//!
//! ```text
//! C ≡ const1 ρ1 t.attribute ρ2 const2      (range, ρ ∈ {<, ≤})
//! C ≡ t.attribute = const                  (equality)
//! C ≡ function(t.attribute)                (opaque boolean function)
//! ```
//!
//! Equality is represented as a degenerate (point) range, as the paper
//! notes ("equality predicates are a special case of interval
//! predicates"); open-ended comparisons set one endpoint to ±∞.

use interval::Interval;
use relation::Value;
use std::fmt;
use std::sync::Arc;

/// An opaque attribute test: "nothing is assumed about the function
/// except that it returns true or false" (§1). Such clauses are never
/// indexable and land on the per-relation non-indexable list.
pub type PredFn = Arc<dyn Fn(&Value) -> bool + Send + Sync>;

/// One conjunct of a predicate.
#[derive(Clone)]
pub enum Clause {
    /// A range or equality clause on one attribute.
    Range {
        /// Attribute name within the predicate's relation.
        attr: String,
        /// The admitted value interval.
        interval: Interval<Value>,
    },
    /// An opaque function clause on one attribute.
    Func {
        /// Function name (for display/equality).
        name: String,
        /// Attribute name the function is applied to.
        attr: String,
        /// The test itself.
        func: PredFn,
    },
}

impl Clause {
    /// The attribute this clause restricts.
    pub fn attr(&self) -> &str {
        match self {
            Clause::Range { attr, .. } | Clause::Func { attr, .. } => attr,
        }
    }

    /// Is this a range/equality clause an IBS-tree can index?
    pub fn is_indexable(&self) -> bool {
        matches!(self, Clause::Range { .. })
    }

    /// Evaluates the clause against a single attribute value.
    pub fn test(&self, value: &Value) -> bool {
        match self {
            Clause::Range { interval, .. } => interval.contains(value),
            Clause::Func { func, .. } => func(value),
        }
    }
}

impl fmt::Debug for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Clause::Range { attr, interval } => {
                write!(f, "Range({attr} in {interval})")
            }
            Clause::Func { name, attr, .. } => write!(f, "Func({name}({attr}))"),
        }
    }
}

impl PartialEq for Clause {
    /// Function clauses compare by `(name, attr)`: the registry maps a
    /// name to one function, so this is referential equality in practice.
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (
                Clause::Range {
                    attr: a1,
                    interval: i1,
                },
                Clause::Range {
                    attr: a2,
                    interval: i2,
                },
            ) => a1 == a2 && i1 == i2,
            (
                Clause::Func {
                    name: n1, attr: a1, ..
                },
                Clause::Func {
                    name: n2, attr: a2, ..
                },
            ) => n1 == n2 && a1 == a2,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_clause_tests_interval() {
        let c = Clause::Range {
            attr: "salary".into(),
            interval: Interval::less_than(Value::Int(20_000)),
        };
        assert!(c.test(&Value::Int(19_999)));
        assert!(!c.test(&Value::Int(20_000)));
        assert!(c.is_indexable());
        assert_eq!(c.attr(), "salary");
    }

    #[test]
    fn func_clause_runs_function() {
        let c = Clause::Func {
            name: "isodd".into(),
            attr: "age".into(),
            func: Arc::new(|v| matches!(v, Value::Int(i) if i % 2 != 0)),
        };
        assert!(c.test(&Value::Int(3)));
        assert!(!c.test(&Value::Int(4)));
        assert!(!c.is_indexable());
    }

    #[test]
    fn equality_via_name_and_attr() {
        let f: PredFn = Arc::new(|_| true);
        let a = Clause::Func {
            name: "f".into(),
            attr: "x".into(),
            func: f.clone(),
        };
        let b = Clause::Func {
            name: "f".into(),
            attr: "x".into(),
            func: Arc::new(|_| false),
        };
        assert_eq!(a, b, "function clauses compare by name and attribute");
    }
}
