//! # Predicate model (§1 of the paper)
//!
//! Single-relation selection predicates: conjunctions of range clauses
//! (`const1 ρ1 t.attr ρ2 const2`, ρ ∈ {<, ≤}), equality clauses
//! (degenerate ranges), and opaque function clauses
//! (`function(t.attr)`), plus a textual predicate language that follows
//! the paper's examples:
//!
//! ```
//! use predicate::parse_predicate;
//!
//! let p = parse_predicate(r#"emp.salary < 20000 and emp.age > 50"#).unwrap();
//! assert_eq!(p.relation(), "emp");
//! assert_eq!(p.clauses().len(), 2);
//!
//! let ranged = parse_predicate("20000 <= emp.salary <= 30000").unwrap();
//! assert_eq!(ranged.clauses().len(), 1);
//!
//! let f = parse_predicate(r#"isodd(emp.age) and emp.dept = "Shoe""#).unwrap();
//! assert!(!f.clauses()[0].is_indexable());
//! ```
//!
//! Disjunctions are split ("broken up into two or more predicates that
//! do not have disjunction", §1) by [`parse_predicates`]:
//!
//! ```
//! use predicate::parse_predicates;
//! let ps = parse_predicates("emp.age < 20 or emp.age > 60").unwrap();
//! assert_eq!(ps.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

mod clause;
mod functions;
mod join;
mod parser;
mod predicate;
pub mod selectivity;

pub use clause::{Clause, PredFn};
pub use functions::FunctionRegistry;
pub use join::{JoinCondition, JoinOp, JoinTest, ParsedCondition};
pub use parser::{
    lex, parse_condition, parse_conditions, parse_conjunct, parse_dnf, LexError, ParseError, Token,
};
pub use predicate::{BindError, BoundClause, BoundPredicate, Predicate};

/// Parses a single conjunctive predicate using the built-in function
/// registry.
pub fn parse_predicate(input: &str) -> Result<Predicate, ParseError> {
    parse_conjunct(input, &FunctionRegistry::default())
}

/// Parses a (possibly disjunctive) condition into its DNF predicates
/// using the built-in function registry.
pub fn parse_predicates(input: &str) -> Result<Vec<Predicate>, ParseError> {
    parse_dnf(input, &FunctionRegistry::default())
}

/// Join-aware variant of [`parse_predicates`]: conjuncts that reference
/// more than one relation come back as [`ParsedCondition::Join`].
pub fn parse_rule_conditions(input: &str) -> Result<Vec<ParsedCondition>, ParseError> {
    parse_conditions(input, &FunctionRegistry::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::{AttrType, Schema, Tuple, Value};

    fn emp_schema() -> Schema {
        Schema::builder("emp")
            .attr("name", AttrType::Str)
            .attr("age", AttrType::Int)
            .attr("salary", AttrType::Int)
            .attr("dept", AttrType::Str)
            .build()
    }

    fn emp(name: &str, age: i64, salary: i64, dept: &str) -> Tuple {
        Tuple::new(vec![
            Value::str(name),
            Value::Int(age),
            Value::Int(salary),
            Value::str(dept),
        ])
    }

    fn matches(src: &str, t: &Tuple) -> bool {
        parse_predicate(src)
            .unwrap()
            .bind(&emp_schema())
            .unwrap()
            .matches(t)
    }

    #[test]
    fn paper_example_1() {
        let src = "emp.salary < 20000 and emp.age > 50";
        assert!(matches(src, &emp("al", 61, 12_000, "Shoe")));
        assert!(!matches(src, &emp("al", 61, 20_000, "Shoe")));
        assert!(!matches(src, &emp("al", 50, 12_000, "Shoe")));
    }

    #[test]
    fn paper_example_2_double_bound() {
        let src = "20000 <= emp.salary <= 30000";
        assert!(matches(src, &emp("b", 30, 20_000, "x")));
        assert!(matches(src, &emp("b", 30, 30_000, "x")));
        assert!(!matches(src, &emp("b", 30, 19_999, "x")));
        assert!(!matches(src, &emp("b", 30, 30_001, "x")));
    }

    #[test]
    fn paper_example_3_equality() {
        let src = r#"emp.dept = "Salesperson""#;
        assert!(matches(src, &emp("c", 30, 0, "Salesperson")));
        assert!(!matches(src, &emp("c", 30, 0, "salesperson")));
    }

    #[test]
    fn paper_example_4_function() {
        let src = r#"isodd(emp.age) and emp.dept = "Shoe""#;
        assert!(matches(src, &emp("d", 31, 0, "Shoe")));
        assert!(!matches(src, &emp("d", 32, 0, "Shoe")));
        assert!(!matches(src, &emp("d", 31, 0, "Hat")));
    }

    #[test]
    fn reversed_operand_sides() {
        assert!(matches("50 < emp.age", &emp("e", 51, 0, "x")));
        assert!(!matches("50 < emp.age", &emp("e", 50, 0, "x")));
        assert!(matches("50 >= emp.age", &emp("e", 50, 0, "x")));
    }

    #[test]
    fn descending_chain() {
        let src = "30000 >= emp.salary >= 20000";
        assert!(matches(src, &emp("f", 0, 25_000, "x")));
        assert!(!matches(src, &emp("f", 0, 35_000, "x")));
    }

    #[test]
    fn strict_chain() {
        let src = "10 < emp.age < 20";
        assert!(!matches(src, &emp("g", 10, 0, "x")));
        assert!(matches(src, &emp("g", 11, 0, "x")));
        assert!(matches(src, &emp("g", 19, 0, "x")));
        assert!(!matches(src, &emp("g", 20, 0, "x")));
    }

    #[test]
    fn disjunction_splits() {
        let ps = parse_predicates("emp.age < 20 or emp.age > 60 or emp.salary = 0").unwrap();
        assert_eq!(ps.len(), 3);
        assert!(ps.iter().all(|p| p.relation() == "emp"));
    }

    #[test]
    fn dnf_distribution() {
        // (a or b) and (c or d) → 4 conjuncts.
        let ps = parse_predicates(
            "(emp.age < 20 or emp.age > 60) and (emp.salary < 100 or emp.salary > 900)",
        )
        .unwrap();
        assert_eq!(ps.len(), 4);
        assert!(ps.iter().all(|p| p.clauses().len() == 2));
    }

    #[test]
    fn not_equal_desugars() {
        let ps = parse_predicates("emp.age != 30").unwrap();
        assert_eq!(ps.len(), 2);
        let s = emp_schema();
        let hit = |t: &Tuple| ps.iter().any(|p| p.bind(&s).unwrap().matches(t));
        assert!(hit(&emp("h", 29, 0, "x")));
        assert!(!hit(&emp("h", 30, 0, "x")));
        assert!(hit(&emp("h", 31, 0, "x")));
    }

    #[test]
    fn contradiction_is_unsatisfiable() {
        let p = parse_predicate("emp.age < 10 and emp.age > 20").unwrap();
        assert!(!p.is_satisfiable());
        let p = parse_predicate("20 <= emp.age <= 10").unwrap();
        assert!(!p.is_satisfiable());
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            parse_predicate("1 < 2"),
            Err(ParseError::BadComparison(_))
        ));
        assert!(matches!(
            parse_predicate("emp.a < emp.b"),
            Err(ParseError::BadComparison(_))
        ));
        assert!(matches!(
            parse_predicate("10 < emp.age > 5"),
            Err(ParseError::BadChain(_))
        ));
        assert!(matches!(
            parse_predicate("nosuchfn(emp.age)"),
            Err(ParseError::UnknownFunction(_))
        ));
        assert!(matches!(
            parse_predicate("emp.age < 5 and dept.size > 3"),
            Err(ParseError::MultipleRelations { .. })
        ));
        assert!(matches!(
            parse_predicate("emp.age < 5 or emp.age > 9"),
            Err(ParseError::DisjunctionNotAllowed)
        ));
        assert!(matches!(parse_predicate(""), Err(ParseError::Empty)));
        assert!(matches!(
            parse_predicate("emp.age <"),
            Err(ParseError::Unexpected { .. })
        ));
    }

    #[test]
    fn custom_function_registry() {
        let mut reg = FunctionRegistry::default();
        reg.register("is_round", |v| matches!(v, Value::Int(i) if i % 100 == 0));
        let p = parse_conjunct("is_round(emp.salary)", &reg).unwrap();
        let b = p.bind(&emp_schema()).unwrap();
        assert!(b.matches(&emp("i", 0, 500, "x")));
        assert!(!b.matches(&emp("i", 0, 550, "x")));
    }

    #[test]
    fn float_and_string_literals() {
        let s = Schema::builder("m")
            .attr("score", AttrType::Float)
            .attr("tag", AttrType::Str)
            .build();
        let p = parse_predicate(r#"m.score >= 2.5 and m.tag < "n""#).unwrap();
        let b = p.bind(&s).unwrap();
        assert!(b.matches(&Tuple::new(vec![Value::Float(2.5), Value::str("abc")])));
        assert!(!b.matches(&Tuple::new(vec![Value::Float(2.4), Value::str("abc")])));
        assert!(!b.matches(&Tuple::new(vec![Value::Float(3.0), Value::str("zzz")])));
    }
}

#[cfg(test)]
mod join_tests {
    use super::*;

    fn cond(src: &str) -> ParsedCondition {
        parse_condition(src, &FunctionRegistry::default()).unwrap()
    }

    #[test]
    fn legacy_entry_points_still_reject_joins() {
        assert!(matches!(
            parse_predicate("emp.a < emp.b"),
            Err(ParseError::BadComparison(_))
        ));
        assert!(matches!(
            parse_predicate("emp.age < 5 and dept.size > 3"),
            Err(ParseError::MultipleRelations { .. })
        ));
    }

    #[test]
    fn single_relation_conjunct_stays_single() {
        let c = cond("emp.age > 50 and emp.salary < 1000");
        let p = c.as_single().unwrap();
        assert_eq!(p.relation(), "emp");
        assert_eq!(p.clauses().len(), 2);
    }

    #[test]
    fn equality_join_parses_with_sorted_premises() {
        let c = cond("emp.dno = dept.dno and dept.floor = 1");
        let j = c.as_join().unwrap();
        assert_eq!(j.arity(), 2);
        // Sorted by relation name: dept before emp.
        assert_eq!(j.premises()[0].relation(), "dept");
        assert_eq!(j.premises()[1].relation(), "emp");
        assert_eq!(j.premises()[0].clauses().len(), 1); // floor = 1
        assert!(j.premises()[1].clauses().is_empty());
        assert_eq!(j.tests().len(), 1);
        let t = &j.tests()[0];
        assert_eq!((t.left, t.right), (0, 1));
        assert_eq!(t.left_attr, "dno");
        assert_eq!(t.right_attr, "dno");
        assert_eq!(t.op, JoinOp::Eq);
    }

    #[test]
    fn interval_join_flips_to_canonical_direction() {
        // emp < mgr stays as-is; mgr > emp flips to emp < mgr.
        let a = cond("emp.salary < mgr.salary");
        let b = cond("mgr.salary > emp.salary");
        assert_eq!(a.as_join().unwrap(), b.as_join().unwrap());
        let t = &a.as_join().unwrap().tests()[0];
        assert_eq!(t.op, JoinOp::Lt);
        assert_eq!(a.as_join().unwrap().premises()[t.left].relation(), "emp");
    }

    #[test]
    fn three_premise_chain() {
        let c = cond("emp.dno = dept.dno and dept.bno = bldg.bno and bldg.floors > 2");
        let j = c.as_join().unwrap();
        assert_eq!(j.arity(), 3);
        let rels: Vec<_> = j.premises().iter().map(|p| p.relation()).collect();
        assert_eq!(rels, vec!["bldg", "dept", "emp"]);
        assert_eq!(j.tests().len(), 2);
    }

    #[test]
    fn join_source_round_trips() {
        for src in [
            "emp.dno = dept.dno and dept.floor = 1",
            "emp.salary < mgr.salary",
            "emp.dno = dept.dno and dept.bno = bldg.bno and bldg.floors > 2",
            "emp.age > 30 and dept.size < 10", // cross product, no tests
        ] {
            let j = cond(src).as_join().unwrap().clone();
            let rendered = j.to_source().unwrap();
            let reparsed = cond(&rendered);
            assert_eq!(reparsed.as_join().unwrap(), &j, "round-trip of {src:?}");
        }
    }

    #[test]
    fn join_not_equal_splits_into_two_conjuncts() {
        let cs = parse_rule_conditions("emp.dno != dept.dno").unwrap();
        assert_eq!(cs.len(), 2);
        let ops: Vec<_> = cs
            .iter()
            .map(|c| c.as_join().unwrap().tests()[0].op)
            .collect();
        assert!(ops.contains(&JoinOp::Lt) && ops.contains(&JoinOp::Gt));
    }

    #[test]
    fn self_join_rejected() {
        assert!(matches!(
            parse_rule_conditions("emp.mgr = emp.id"),
            Err(ParseError::BadComparison(_))
        ));
    }

    #[test]
    fn unsatisfiable_premise_collapses_conjunct() {
        let c = cond("emp.dno = dept.dno and 5 <= dept.floor <= 3");
        let p = c.as_single().unwrap();
        assert!(!p.is_satisfiable());
        assert_eq!(p.relation(), "dept");
    }

    #[test]
    fn disjunction_mixes_single_and_join_conjuncts() {
        let cs = parse_rule_conditions("emp.age > 60 or emp.dno = dept.dno").unwrap();
        assert_eq!(cs.len(), 2);
        assert!(cs[0].as_single().is_some());
        assert!(cs[1].as_join().is_some());
    }
}
