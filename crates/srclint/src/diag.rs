//! Diagnostics: what a lint reports, how severe it is, and how the
//! report is rendered for humans (`file:line:col`) and for machines
//! (`--format json`, hand-rolled since the workspace is std-only).

use std::fmt;
use std::path::{Path, PathBuf};

/// How bad a finding is. `Deny` findings always fail the run;
/// `Warn` findings fail it only under `--deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warn,
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warning",
            Severity::Deny => "error",
        })
    }
}

/// One finding, anchored to a source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Lint slug, e.g. `no-panic-in-lib` — the name `srclint:allow`
    /// comments refer to.
    pub lint: &'static str,
    pub severity: Severity,
    /// Path relative to the workspace root when possible.
    pub file: PathBuf,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl Diagnostic {
    /// `file:line:col: severity[lint] message` — one line, clickable
    /// in most terminals and editors.
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}:{}: {}[{}] {}",
            self.file.display(),
            self.line,
            self.col,
            self.severity,
            self.lint,
            self.message
        )
    }
}

/// Escapes a string for inclusion in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The full report as a JSON document: a stable schema CI can upload
/// as an artifact and scripts can consume without a JSON dependency
/// on our side. `report-v2` extends v1 with `files_linted` (differs
/// from `files_scanned` under `--changed`), the workspace-wide
/// `srclint:allow` suppression count, and wall-clock timing; every
/// v1 field keeps its name and shape.
pub fn render_json(report: &crate::Report) -> String {
    let diags = &report.diagnostics;
    let mut out = String::from("{\n  \"schema\": \"srclint/report-v2\",\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"files_linted\": {},\n  \"suppressions\": {},\n  \"elapsed_ms\": {},\n",
        report.files_scanned, report.files_linted, report.suppressions, report.elapsed_ms
    ));
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Deny)
        .count();
    out.push_str(&format!(
        "  \"summary\": {{ \"total\": {}, \"errors\": {}, \"warnings\": {} }},\n",
        diags.len(),
        errors,
        diags.len() - errors
    ));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{ \"lint\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\" }}",
            json_escape(d.lint),
            d.severity,
            json_escape(&d.file.display().to_string()),
            d.line,
            d.col,
            json_escape(&d.message)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Re-anchors a diagnostic path relative to `root` for stable output
/// across machines; falls back to the absolute path when the file is
/// outside the workspace (explicit CLI operands).
pub fn relativize(path: &Path, root: &Path) -> PathBuf {
    path.strip_prefix(root).unwrap_or(path).to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> Diagnostic {
        Diagnostic {
            lint: "no-panic-in-lib",
            severity: Severity::Deny,
            file: PathBuf::from("crates/x/src/lib.rs"),
            line: 3,
            col: 9,
            message: "`unwrap()` in library path".into(),
        }
    }

    fn report(diags: Vec<Diagnostic>) -> crate::Report {
        crate::Report {
            diagnostics: diags,
            files_scanned: 7,
            files_linted: 7,
            suppressions: 2,
            elapsed_ms: 12,
        }
    }

    #[test]
    fn human_line_is_clickable() {
        assert_eq!(
            diag().render_human(),
            "crates/x/src/lib.rs:3:9: error[no-panic-in-lib] `unwrap()` in library path"
        );
    }

    #[test]
    fn json_is_well_formed_enough() {
        let s = render_json(&report(vec![diag()]));
        assert!(s.contains("\"schema\": \"srclint/report-v2\""));
        assert!(s.contains("\"files_scanned\": 7"));
        assert!(s.contains("\"files_linted\": 7"));
        assert!(s.contains("\"suppressions\": 2"));
        assert!(s.contains("\"elapsed_ms\": 12"));
        assert!(s.contains("\"errors\": 1"));
        assert!(s.contains("crates/x/src/lib.rs"));
        // Balanced braces: a cheap structural sanity check.
        assert_eq!(
            s.matches('{').count(),
            s.matches('}').count(),
            "unbalanced braces in {s}"
        );
    }

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let mut d = diag();
        d.message = "name \"x\"\nnext".into();
        let s = render_json(&report(vec![d]));
        assert!(s.contains("name \\\"x\\\"\\nnext"));
    }
}
