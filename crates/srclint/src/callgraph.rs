//! Name-based call-graph over the [`WorkspaceModel`], with the
//! transitive lock-acquisition closure the lock-order pass runs on.
//!
//! Resolution is deliberately conservative about *which* names it
//! follows — a lexical tool that resolved every `.len()` to every
//! `len` in the workspace would connect the whole graph through
//! `ShardedPredicateIndex::len` and drown the analysis in phantom
//! edges. The rules (documented in DESIGN.md §18):
//!
//! * Names on the [`STOPLIST`] — ubiquitous std-shaped method names —
//!   are never resolved (under-approximation).
//! * Other names resolve to every same-crate fn with that name; if
//!   there is none, to a cross-crate fn only when the name is unique
//!   across the whole linted set (over-approximation within a crate,
//!   under-approximation across crates for ambiguous names).
//! * Closures have no name and are never call targets.

use crate::model::{Event, WorkspaceModel};
use std::collections::{BTreeMap, BTreeSet};

/// Method names too generic to resolve: following them would alias
/// unrelated containers onto the few lock-acquiring fns that happen
/// to share a name (`len`, `insert`, ...).
pub const STOPLIST: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "entry",
    "drain",
    "clear",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "from",
    "into",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "to_string",
    "to_vec",
    "to_owned",
    "write",
    "read",
    "flush",
    "lock",
    "send",
    "recv",
    "try_send",
    "try_recv",
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "map",
    "map_err",
    "and_then",
    "ok",
    "ok_or",
    "ok_or_else",
    "err",
    "min",
    "max",
    "drop",
    "extend",
    "join",
    "find",
    "position",
    "sort",
    "sort_by",
    "sort_by_key",
    "retain",
    "count",
    "sum",
    "any",
    "all",
    "filter",
    "filter_map",
    "flat_map",
    "collect",
    "parse",
    "split",
    "trim",
    "starts_with",
    "ends_with",
    "take",
    "rev",
    "zip",
    "chain",
    "fold",
    "last",
    "first",
    "get_or_insert_with",
    "with_capacity",
    "capacity",
    "contains_err",
    "name",
    "id",
    "kind",
    "value",
    "path",
    "spawn",
    "enumerate",
    "keys",
    "values",
    "values_mut",
];

/// The resolved graph: per fn node, the set of lock classes it may
/// transitively acquire.
pub struct CallGraph {
    /// Parallel to `model.fns`.
    transitive: Vec<BTreeSet<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Builds the graph and runs the lock-set fixpoint.
    pub fn build(model: &WorkspaceModel) -> CallGraph {
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (i, f) in model.fns.iter().enumerate() {
            if f.named {
                by_name.entry(f.name.clone()).or_default().push(i);
            }
        }
        let mut transitive: Vec<BTreeSet<usize>> = model
            .fns
            .iter()
            .map(|f| {
                f.events
                    .iter()
                    .filter_map(|e| match e {
                        Event::Lock { class, .. } => Some(*class),
                        Event::Call { .. } => None,
                    })
                    .collect()
            })
            .collect();
        // Fixpoint over call edges; bounded by the node count, and in
        // practice converging in the depth of the real call tree.
        for _ in 0..model.fns.len() {
            let mut changed = false;
            for i in 0..model.fns.len() {
                let mut gained: Vec<usize> = Vec::new();
                for e in &model.fns[i].events {
                    if let Event::Call { callee, .. } = e {
                        for c in Self::resolve_in(&by_name, model, i, callee) {
                            gained.extend(transitive[c].iter().copied());
                        }
                    }
                }
                for g in gained {
                    changed |= transitive[i].insert(g);
                }
            }
            if !changed {
                break;
            }
        }
        CallGraph {
            transitive,
            by_name,
        }
    }

    fn resolve_in(
        by_name: &BTreeMap<String, Vec<usize>>,
        model: &WorkspaceModel,
        caller: usize,
        callee: &str,
    ) -> Vec<usize> {
        if STOPLIST.contains(&callee) {
            return Vec::new();
        }
        let Some(cands) = by_name.get(callee) else {
            return Vec::new();
        };
        let krate = &model.fns[caller].krate;
        // Same-crate candidates win; cross-crate only when globally
        // unambiguous.
        let same: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&c| model.fns[c].krate == *krate)
            .collect();
        if !same.is_empty() {
            return same;
        }
        if cands.len() == 1 {
            return cands.clone();
        }
        Vec::new()
    }

    /// Fn indices a call to `callee` from `caller` may reach.
    pub fn resolve(&self, model: &WorkspaceModel, caller: usize, callee: &str) -> Vec<usize> {
        Self::resolve_in(&self.by_name, model, caller, callee)
    }

    /// Lock classes fn `i` may acquire, transitively.
    pub fn locks_of(&self, i: usize) -> &BTreeSet<usize> {
        &self.transitive[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileContext;
    use crate::model;
    use std::path::Path;

    fn graph(files: &[(&str, &str)]) -> (WorkspaceModel, CallGraph) {
        let ctxs: Vec<FileContext> = files
            .iter()
            .map(|(path, src)| FileContext::new(Path::new(path), src.to_string()))
            .collect();
        let m = model::build(&ctxs);
        let g = CallGraph::build(&m);
        (m, g)
    }

    #[test]
    fn transitive_locks_flow_through_calls() {
        let (m, g) = graph(&[(
            "crates/telemetry/src/a.rs",
            "fn outer(&self) { self.inner_locks(); }\n\
             fn inner_locks(&self) { let g = self.ring.lock(); }\n",
        )]);
        let outer = m.fns.iter().position(|f| f.name == "outer").expect("outer");
        assert_eq!(g.locks_of(outer).len(), 1, "ring lock must flow to outer");
    }

    #[test]
    fn cross_crate_resolution_requires_uniqueness() {
        let (m, g) = graph(&[
            (
                "crates/ruleserv/src/a.rs",
                "fn handler(&self) { self.record_span(); self.snapshot(); }\n",
            ),
            (
                "crates/telemetry/src/b.rs",
                "fn record_span(&self) { let g = self.ring.lock(); }\n",
            ),
            (
                "crates/telemetry/src/c.rs",
                "fn snapshot(&self) { let g = self.metrics.lock(); }\n\
                 fn other(&self) {}\n",
            ),
            (
                "crates/durable/src/d.rs",
                "fn snapshot(&self) { let g = self.wal.lock(); }\n",
            ),
        ]);
        let handler = m
            .fns
            .iter()
            .position(|f| f.name == "handler")
            .expect("handler");
        // `record_span` is unique workspace-wide -> followed;
        // `snapshot` exists in two crates -> ambiguous, not followed.
        assert_eq!(g.locks_of(handler).len(), 1);
    }

    #[test]
    fn stoplisted_names_are_never_followed() {
        let (m, g) = graph(&[(
            "crates/predindex/src/a.rs",
            "fn len(&self) -> usize { let g = self.lock_read(0); 0 }\n\
             fn uses_len(&self, v: &[u8]) { let n = v.len(); }\n",
        )]);
        let uses = m
            .fns
            .iter()
            .position(|f| f.name == "uses_len")
            .expect("uses_len");
        assert!(g.locks_of(uses).is_empty());
    }
}
