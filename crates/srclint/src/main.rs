//! The `srclint` CLI. Exit codes: 0 clean, 1 findings (errors
//! always; warnings too under `--deny`), 2 usage or I/O trouble.

use srclint::{render_json, Config, Severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
srclint — workspace static-analysis pass

USAGE:
    srclint [OPTIONS] [PATHS...]

With no PATHS the whole workspace is linted (crates/*, src/, tests/,
examples/; target/, shims/ and fixture corpora are skipped).

OPTIONS:
    --deny            treat warnings as errors (CI mode)
    --format <f>      human (default) | json
    --root <dir>      workspace root (default: walk up from cwd)
    --changed[=REF]   report per-file findings only for files in
                      `git diff --name-only REF` (default REF: HEAD);
                      cross-file lints still see the whole workspace,
                      and without git the run widens to everything
    --list-lints      print the lint catalog and exit
    -h, --help        this text
";

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("srclint: {e}");
            ExitCode::from(2)
        }
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut deny = false;
    let mut format = "human".to_string();
    let mut root: Option<PathBuf> = None;
    let mut changed_ref: Option<String> = None;
    let mut paths = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--format" => {
                format = args.next().ok_or("--format needs a value")?;
                if format != "human" && format != "json" {
                    return Err(format!("unknown format `{format}` (human|json)"));
                }
            }
            "--root" => root = Some(PathBuf::from(args.next().ok_or("--root needs a value")?)),
            "--changed" => changed_ref = Some("HEAD".to_string()),
            "--list-lints" => {
                for lint in srclint::lints::all() {
                    println!("{:24} {}", lint.name, lint.summary);
                }
                for lint in srclint::lints::workspace_all() {
                    println!("{:24} {} (cross-file)", lint.name, lint.summary);
                }
                return Ok(ExitCode::SUCCESS);
            }
            flag if flag.starts_with("--changed=") => {
                changed_ref = Some(flag["--changed=".len()..].to_string());
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`\n\n{USAGE}"));
            }
            operand => paths.push(PathBuf::from(operand)),
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
            srclint::walker::find_workspace_root(&cwd)
                .ok_or("no [workspace] Cargo.toml above the current directory (use --root)")?
        }
    };

    let report = srclint::run(&Config {
        root,
        paths,
        changed_ref,
    })
    .map_err(|e| e.to_string())?;

    if format == "json" {
        print!("{}", render_json(&report));
    } else {
        for d in &report.diagnostics {
            println!("{}", d.render_human());
        }
        let errors = report
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Deny)
            .count();
        println!(
            "srclint: {} files scanned, {} linted, {} finding(s) ({} error(s)), \
             {} suppression(s), {} ms",
            report.files_scanned,
            report.files_linted,
            report.diagnostics.len(),
            errors,
            report.suppressions,
            report.elapsed_ms
        );
    }

    Ok(if report.is_failure(deny) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}
