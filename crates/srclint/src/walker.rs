//! Workspace discovery: find the root (the `Cargo.toml` that declares
//! `[workspace]`) and enumerate the Rust sources that lints run over.
//!
//! Excluded by design: `target/` (build output), `shims/` (offline
//! stand-ins for third-party crates — not our code to lint), and any
//! `fixtures/` directory (srclint's own test corpus is deliberately
//! full of violations).

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Walks upward from `start` to the directory whose `Cargo.toml`
/// contains a `[workspace]` table.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Should this directory be descended into?
fn dir_included(name: &str) -> bool {
    !matches!(name, "target" | "shims" | "fixtures" | ".git" | ".github")
}

/// Collects every `.rs` file under `root`'s lintable trees, sorted
/// for deterministic reports.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples", "benches"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

/// Expands explicit CLI operands: files are taken as-is, directories
/// are walked with the same exclusions (except that naming an
/// excluded directory directly overrides the exclusion — how the
/// fixture corpus gets linted on purpose).
pub fn expand_paths(paths: &[PathBuf]) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for p in paths {
        if p.is_dir() {
            collect(p, &mut out)?;
        } else {
            out.push(p.clone());
        }
    }
    out.sort();
    Ok(out)
}

/// The files `git diff --name-only <ref>` reports as changed,
/// resolved against `root`. Returns `None` — meaning "lint
/// everything" — when git is missing, `root` is not a repository, or
/// the ref does not resolve: a degraded environment should widen the
/// run, never silently pass it.
pub fn git_changed_files(root: &Path, git_ref: &str) -> Option<BTreeSet<PathBuf>> {
    let out = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", git_ref])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let listing = String::from_utf8(out.stdout).ok()?;
    Some(
        listing
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(|l| root.join(l))
            .collect(),
    )
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if dir_included(&name) {
                collect(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_own_workspace_root() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("Cargo.toml").is_file());
        assert!(root.join("crates/srclint").is_dir());
    }

    #[test]
    fn workspace_walk_skips_fixtures_and_shims() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        let files = workspace_files(&root).expect("walk");
        assert!(!files.is_empty());
        for f in &files {
            let s = f.display().to_string();
            assert!(!s.contains("/fixtures/"), "fixture leaked into walk: {s}");
            assert!(!s.contains("/shims/"), "shim leaked into walk: {s}");
            assert!(!s.contains("/target/"), "target leaked into walk: {s}");
        }
    }

    #[test]
    fn explicit_fixture_dir_overrides_exclusion() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let fixtures = here.join("tests/fixtures");
        let files = expand_paths(&[fixtures]).expect("walk");
        assert!(
            files
                .iter()
                .all(|f| f.extension().is_some_and(|e| e == "rs")),
            "{files:?}"
        );
    }
}
