//! srclint — the workspace's own static-analysis pass.
//!
//! rustc and clippy check Rust's invariants; srclint checks *ours*:
//! the discipline this codebase has accumulated that only reviewer
//! memory enforced before. It is a std-only tool (hand-rolled lexer,
//! no syn/proc-macro) so it builds in the same offline environment
//! as everything else, and it runs in CI next to clippy:
//!
//! ```text
//! cargo run -p srclint -- --deny            # whole workspace, CI mode
//! cargo run -p srclint -- --format json     # machine-readable report
//! cargo run -p srclint -- --changed         # per-file lints on the git diff only
//! cargo run -p srclint -- path/to/file.rs   # just these operands
//! ```
//!
//! The run has two stages. The per-file suite (`safety-comment`,
//! `no-panic-in-lib`, `lock-discipline`, `fsync-before-rename`,
//! `metric-name-registry`, `channel-discipline`) sees one
//! [`FileContext`](context::FileContext) at a time. The cross-file
//! suite (`lock-order`, `atomic-ordering`, `codec-conformance`) then
//! runs over the [workspace model](model) — every function's lock /
//! atomic / call events, resolved workspace-wide — because a deadlock
//! or a codec gap is never one file's fault. Findings are suppressed
//! line-by-line with `// srclint:allow(<lint>): <one-line
//! justification>` — the justification is convention, but the lint
//! name is checked.

#![deny(unreachable_pub)]
#![forbid(unsafe_code)]

pub mod callgraph;
pub mod context;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod model;
pub mod walker;

pub use diag::{render_json, Diagnostic, Severity};

use context::FileContext;
use lints::WorkspaceMeta;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// What to lint and from where.
pub struct Config {
    /// Workspace root; diagnostics are reported relative to it and
    /// DESIGN.md is read from it.
    pub root: PathBuf,
    /// Explicit operands; empty means "walk the workspace".
    pub paths: Vec<PathBuf>,
    /// When set, per-file findings are restricted to files named by
    /// `git diff --name-only <ref>`. The whole workspace is still
    /// lexed — the cross-file passes need the full model — and when
    /// git is unavailable the restriction silently widens to a full
    /// run rather than reporting nothing.
    pub changed_ref: Option<String>,
}

impl Config {
    /// Lint everything under `root`.
    pub fn workspace(root: PathBuf) -> Config {
        Config {
            root,
            paths: Vec::new(),
            changed_ref: None,
        }
    }
}

/// A finished run.
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    /// Files lexed and modeled (the full set, under `--changed` too).
    pub files_scanned: usize,
    /// Files the per-file suite reported on (smaller than
    /// `files_scanned` only under `--changed`).
    pub files_linted: usize,
    /// `srclint:allow` comments across the linted files.
    pub suppressions: usize,
    /// Wall-clock for walk + lex + both suites.
    pub elapsed_ms: u64,
}

impl Report {
    /// Does the report fail the run? `deny` escalates warnings.
    pub fn is_failure(&self, deny: bool) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny || (deny && d.severity == Severity::Warn))
    }
}

/// Runs the full suite over `config`'s file set.
pub fn run(config: &Config) -> io::Result<Report> {
    let started = Instant::now();
    let files = if config.paths.is_empty() {
        walker::workspace_files(&config.root)?
    } else {
        walker::expand_paths(&config.paths)?
    };
    let design = fs::read_to_string(config.root.join("DESIGN.md")).ok();
    let meta = WorkspaceMeta {
        root: config.root.clone(),
        metric_families: design
            .as_deref()
            .and_then(lints::metric_names_design_families),
        design,
    };
    let changed = config
        .changed_ref
        .as_deref()
        .and_then(|r| walker::git_changed_files(&config.root, r));

    let suite = lints::all();
    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    let mut files_linted = 0usize;
    let mut suppressions = 0usize;
    let mut contexts = Vec::with_capacity(files.len());
    for path in files {
        let src = fs::read_to_string(&path)?;
        let ctx = FileContext::new(&path, src);
        let lint_this = match &changed {
            Some(set) => set.contains(&ctx.path),
            None => true,
        };
        if lint_this {
            files_linted += 1;
            suppressions += ctx.suppression_count();
            for lint in &suite {
                (lint.check)(&ctx, &meta, &mut diagnostics);
            }
        }
        contexts.push(ctx);
    }

    // Cross-file stage: always over the full model — a lock-order
    // cycle or a codec gap is a workspace property, not a diff one.
    let workspace_model = model::build(&contexts);
    for lint in lints::workspace_all() {
        (lint.check)(&contexts, &workspace_model, &meta, &mut diagnostics);
    }

    for d in &mut diagnostics {
        d.file = diag::relativize(&d.file, &config.root);
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(Report {
        diagnostics,
        files_scanned,
        files_linted,
        suppressions,
        elapsed_ms: started.elapsed().as_millis() as u64,
    })
}

/// Convenience for tests: lint the workspace containing `start`.
pub fn run_workspace(start: &Path) -> io::Result<Report> {
    let root = walker::find_workspace_root(start).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            "no [workspace] Cargo.toml above start",
        )
    })?;
    run(&Config::workspace(root))
}
