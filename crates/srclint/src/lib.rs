//! srclint — the workspace's own static-analysis pass.
//!
//! rustc and clippy check Rust's invariants; srclint checks *ours*:
//! the discipline this codebase has accumulated that only reviewer
//! memory enforced before. It is a std-only tool (hand-rolled lexer,
//! no syn/proc-macro) so it builds in the same offline environment
//! as everything else, and it runs in CI next to clippy:
//!
//! ```text
//! cargo run -p srclint -- --deny            # whole workspace, CI mode
//! cargo run -p srclint -- --format json     # machine-readable report
//! cargo run -p srclint -- path/to/file.rs   # just these operands
//! ```
//!
//! The suite (see [`lints::all`]): `safety-comment`,
//! `no-panic-in-lib`, `lock-discipline`, `fsync-before-rename`,
//! `metric-name-registry`. Findings are suppressed line-by-line with
//! `// srclint:allow(<lint>): <one-line justification>` — the
//! justification is convention, but the lint name is checked.

#![deny(unreachable_pub)]
#![forbid(unsafe_code)]

pub mod context;
pub mod diag;
pub mod lexer;
pub mod lints;
pub mod walker;

pub use diag::{render_json, Diagnostic, Severity};

use context::FileContext;
use lints::WorkspaceMeta;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// What to lint and from where.
pub struct Config {
    /// Workspace root; diagnostics are reported relative to it and
    /// DESIGN.md is read from it.
    pub root: PathBuf,
    /// Explicit operands; empty means "walk the workspace".
    pub paths: Vec<PathBuf>,
}

/// A finished run.
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
    pub files_scanned: usize,
}

impl Report {
    /// Does the report fail the run? `deny` escalates warnings.
    pub fn is_failure(&self, deny: bool) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Deny || (deny && d.severity == Severity::Warn))
    }
}

/// Runs the full suite over `config`'s file set.
pub fn run(config: &Config) -> io::Result<Report> {
    let files = if config.paths.is_empty() {
        walker::workspace_files(&config.root)?
    } else {
        walker::expand_paths(&config.paths)?
    };
    let meta = WorkspaceMeta {
        root: config.root.clone(),
        metric_families: fs::read_to_string(config.root.join("DESIGN.md"))
            .ok()
            .as_deref()
            .and_then(lints::metric_names_design_families),
    };
    let suite = lints::all();
    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    for path in files {
        let src = fs::read_to_string(&path)?;
        let ctx = FileContext::new(&path, src);
        for lint in &suite {
            (lint.check)(&ctx, &meta, &mut diagnostics);
        }
    }
    for d in &mut diagnostics {
        d.file = diag::relativize(&d.file, &config.root);
    }
    diagnostics.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(Report {
        diagnostics,
        files_scanned,
    })
}

/// Convenience for tests: lint the workspace containing `start`.
pub fn run_workspace(start: &Path) -> io::Result<Report> {
    let root = walker::find_workspace_root(start).ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            "no [workspace] Cargo.toml above start",
        )
    })?;
    run(&Config {
        root,
        paths: Vec::new(),
    })
}
