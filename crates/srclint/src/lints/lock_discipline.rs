//! `lock-discipline`: predindex's shard `RwLock`s may only be
//! acquired through the `lock_read`/`lock_write` helpers (which time
//! the wait and emit the `shard_lock` span — a raw `.read()` is an
//! invisible lock), and no function may contain more than one
//! acquisition site: two live shard guards deadlock against the
//! batch path's ordered acquisition unless the call site *is* an
//! ordered batch path, in which case it says so with
//! `srclint:allow(lock-discipline): <why>`.

use super::{emit, is_method_call, WorkspaceMeta};
use crate::context::{FileContext, Scope, Section};
use crate::diag::Diagnostic;

const LINT: &str = "lock-discipline";

/// The blessed helpers — the only fns allowed to touch
/// `self.shards[..].read()/.write()` directly.
const HELPERS: &[&str] = &["lock_read", "lock_write"];

pub(super) fn check(ctx: &FileContext, _meta: &WorkspaceMeta, diags: &mut Vec<Diagnostic>) {
    if ctx.krate != "predindex" || ctx.section != Section::Src {
        return;
    }
    // Acquisition sites per enclosing scope. A closure — a
    // `thread::scope` spawn body, most importantly — is its own
    // scope: each spawned worker holds its own guard, so two sites
    // split across a fn and its spawned closures never hold
    // concurrently *within one scope* and must not be counted
    // together.
    let mut sites: Vec<(Scope, usize)> = Vec::new();

    for i in ctx.code_tokens() {
        if ctx.in_test(i) {
            continue;
        }
        let raw = (is_method_call(ctx, i, "read") || is_method_call(ctx, i, "write"))
            && receiver_is_shard(ctx, i);
        let via_helper =
            is_method_call(ctx, i, "lock_read") || is_method_call(ctx, i, "lock_write");
        if !raw && !via_helper {
            continue;
        }
        let in_helper = ctx
            .enclosing_fn(i)
            .is_some_and(|f| HELPERS.contains(&f.name.as_str()));
        if raw && !in_helper {
            emit(
                ctx,
                diags,
                LINT,
                i,
                format!(
                    "raw shard-lock acquisition `.{}()` — go through lock_read/lock_write \
                     so the wait is timed and the `shard_lock` span fires",
                    ctx.tokens[i].text(&ctx.src)
                ),
            );
        }
        if !in_helper {
            if let Some(s) = ctx.enclosing_scope(i) {
                sites.push((s, i));
            }
        }
    }

    // Second and later acquisition sites within one scope.
    for (n, &(scope, tok)) in sites.iter().enumerate() {
        let earlier = sites[..n].iter().filter(|(g, _)| *g == scope).count();
        if earlier >= 1 {
            let name = ctx.scope_name(scope);
            emit(
                ctx,
                diags,
                LINT,
                tok,
                format!(
                    "`{name}` has more than one shard-guard acquisition site — only the \
                     ordered batch path may; if guards are strictly sequential, justify \
                     with `srclint:allow({LINT})`"
                ),
            );
        }
    }
}

/// Walks the receiver chain left of `.read()`/`.write()` looking for
/// the `shards` field: `self.shards[sid].read()`, `lock.read()` where
/// `lock` came from iterating `shards`, etc. The walk stops at
/// statement boundaries; an ident `shards` anywhere in the chain (or
/// in the `for`-binding feeding it on the same statement) marks the
/// receiver as a shard lock. `RwLock`s that are not shard locks
/// (e.g. metrics maps) never mention `shards` and stay out of scope.
fn receiver_is_shard(ctx: &FileContext, call: usize) -> bool {
    let mut i = call;
    let mut bracket = 0i32;
    let mut paren = 0i32;
    let mut steps = 0;
    while let Some(j) = ctx.prev_code(i) {
        steps += 1;
        if steps > 40 {
            break;
        }
        let t = &ctx.tokens[j];
        if t.is_punct(&ctx.src, ']') {
            bracket += 1;
        } else if t.is_punct(&ctx.src, '[') {
            bracket -= 1;
        } else if t.is_punct(&ctx.src, ')') {
            paren += 1;
        } else if t.is_punct(&ctx.src, '(') {
            paren -= 1;
            if paren < 0 {
                break;
            }
        } else if bracket == 0 && paren == 0 {
            if t.is_ident(&ctx.src, "shards") {
                return true;
            }
            if t.is_punct(&ctx.src, ';') || t.is_punct(&ctx.src, '{') || t.is_punct(&ctx.src, '}') {
                break;
            }
        } else if t.is_ident(&ctx.src, "shards") {
            return true;
        }
        i = j;
    }
    false
}
