//! `atomic-ordering`: classifies every atomic field by its observed
//! usage pattern across the whole linted set, then checks each site's
//! memory ordering against the class:
//!
//! * **counter** — every write is an RMW (`fetch_add`/`fetch_sub`/..).
//!   RMWs are atomic at any ordering, and nobody reads *other* data
//!   through a counter, so `SeqCst` here is a pure fence tax on the
//!   hot path: a perf finding.
//! * **flag** — some site stores a `bool` literal. A polled
//!   stop/active flag synchronizes nothing but itself, so `SeqCst` is
//!   again wasted; a flag that *guards data* needs `Release` store /
//!   `Acquire` load — either way `SeqCst` is the wrong answer, and
//!   the finding says which fix applies.
//! * **publication** — a plain store of a non-bool value that other
//!   threads load. `Relaxed` here is a *correctness* finding: readers
//!   get no happens-before edge to whatever the value points at.
//!   (`SeqCst`/`Release` publication is left alone.)
//! * **unclassified** — load-only fields (the writer is out of the
//!   linted set or aliased under another name): `SeqCst` is still
//!   flagged, since whatever the class turns out to be, `SeqCst` is
//!   never the cheap right answer in this workspace.
//!
//! Independent config words (a sampling threshold, say) legitimately
//! use `Relaxed` despite matching the publication shape — that is
//! what `// srclint:allow(atomic-ordering): <why>` is for.

use super::{emit, WorkspaceMeta};
use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::model::{AtomicOp, WorkspaceModel};
use std::collections::BTreeMap;

const LINT: &str = "atomic-ordering";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Counter,
    Flag,
    Publication,
    Unclassified,
}

impl Class {
    fn name(self) -> &'static str {
        match self {
            Class::Counter => "counter",
            Class::Flag => "flag",
            Class::Publication => "publication",
            Class::Unclassified => "unclassified",
        }
    }
}

pub(super) fn check(
    ctxs: &[FileContext],
    model: &WorkspaceModel,
    _meta: &WorkspaceMeta,
    diags: &mut Vec<Diagnostic>,
) {
    // Classify per (crate, field): usage anywhere in the linted set
    // determines the class every site is held to.
    let mut groups: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
    for (i, s) in model.atomics.iter().enumerate() {
        groups
            .entry((s.krate.clone(), s.field.clone()))
            .or_default()
            .push(i);
    }
    for sites in groups.values() {
        let class = classify(model, sites);
        for &i in sites {
            let s = &model.atomics[i];
            let ctx = &ctxs[s.file];
            match (s.ordering.as_str(), class) {
                ("SeqCst", Class::Counter) => emit(
                    ctx,
                    diags,
                    LINT,
                    s.tok,
                    format!(
                        "`SeqCst` on `{}`, a counter (all writes are RMW) — the full \
                         fence buys nothing; use `Relaxed`",
                        s.field
                    ),
                ),
                ("SeqCst", Class::Flag) | ("SeqCst", Class::Unclassified) => emit(
                    ctx,
                    diags,
                    LINT,
                    s.tok,
                    format!(
                        "`SeqCst` on `{}` ({}) — a polled flag needs only `Relaxed`; \
                         a flag that guards data needs `Release`/`Acquire`, not `SeqCst`",
                        s.field,
                        class.name()
                    ),
                ),
                ("Relaxed", Class::Publication) => emit(
                    ctx,
                    diags,
                    LINT,
                    s.tok,
                    format!(
                        "`Relaxed` {} on `{}`, which publishes a value (plain store \
                         observed) — readers get no happens-before edge; use \
                         `Release`/`Acquire`, or justify an independent config word \
                         with `srclint:allow({LINT})`",
                        if s.op == AtomicOp::Store {
                            "store"
                        } else {
                            "load"
                        },
                        s.field
                    ),
                ),
                _ => {}
            }
        }
    }
}

fn classify(model: &WorkspaceModel, sites: &[usize]) -> Class {
    let mut any_bool_store = false;
    let mut any_plain_store = false;
    let mut any_rmw = false;
    for &i in sites {
        let s = &model.atomics[i];
        match s.op {
            AtomicOp::Store if s.stores_bool => any_bool_store = true,
            AtomicOp::Store => any_plain_store = true,
            AtomicOp::Rmw => any_rmw = true,
            AtomicOp::Load => {}
        }
    }
    if any_bool_store {
        Class::Flag
    } else if any_plain_store {
        Class::Publication
    } else if any_rmw {
        Class::Counter
    } else {
        Class::Unclassified
    }
}
