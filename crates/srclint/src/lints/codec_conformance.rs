//! `codec-conformance`: the wire/WAL codec's armed registry. The
//! `durable::Record` enum and the `ruleserv::proto` opcode constants
//! are each a three-way contract — every variant/opcode needs an
//! encode arm, a decode arm, and a row in DESIGN.md §14's canonical
//! tables — and this pass fails the build when any leg drifts:
//!
//! * a `Record` variant with no arm in `encode` or `decode_prefix`
//!   (a grown variant the recovery path would refuse),
//! * a `Record` variant absent from ruleserv's `record_op_name`
//!   (per-op latency accounting silently lumps it as "?"),
//! * an `OP_*` constant never written by an `encode` fn or matched by
//!   a `decode*` fn,
//! * a variant/opcode missing from (or disagreeing with) the
//!   `Record tags` / `Opcodes` tables in DESIGN.md — and, when the
//!   authoritative source files are in the linted set, a doc row with
//!   no code behind it.
//!
//! Same pattern as `metric-name-registry`: the doc table is parsed
//! live, and an integration test asserts it stays parseable so the
//! findings cannot silently vanish.

use super::WorkspaceMeta;
use crate::context::{FileContext, Section};
use crate::diag::{Diagnostic, Severity};
use crate::lexer::TokenKind;
use crate::model::WorkspaceModel;

const LINT: &str = "codec-conformance";

pub(super) fn check(
    ctxs: &[FileContext],
    _model: &WorkspaceModel,
    meta: &WorkspaceMeta,
    diags: &mut Vec<Diagnostic>,
) {
    for ctx in ctxs {
        if ctx.section != Section::Src {
            continue;
        }
        if ctx.krate == "durable" {
            check_record(ctx, ctxs, meta, diags);
        }
        if ctx.krate == "ruleserv" {
            check_opcodes(ctx, ctxs, meta, diags);
        }
    }
}

// ------------------------------------------------------------ Record

fn check_record(
    ctx: &FileContext,
    ctxs: &[FileContext],
    meta: &WorkspaceMeta,
    diags: &mut Vec<Diagnostic>,
) {
    let variants = enum_variants(ctx, "Record");
    if variants.is_empty() {
        return;
    }
    let tags = const_defs(ctx, "TAG_");
    let doc_rows = design_rows(meta, "Record tags");
    let authoritative = ctx.path.ends_with("crates/durable/src/record.rs");
    // ruleserv's per-op accounting must name every record kind.
    let op_namer: Option<&FileContext> = ctxs.iter().find(|c| {
        c.krate == "ruleserv"
            && c.section == Section::Src
            && c.fns.iter().any(|f| f.name == "record_op_name")
    });

    for (variant, tok) in &variants {
        if !any_fn_mentions_path(ctx, |n| n == "encode", "Record", variant) {
            push(
                ctx,
                diags,
                *tok,
                format!(
                    "`Record::{variant}` has no arm in `encode` — WAL frames and wire payloads \
                 cannot carry it"
                ),
            );
        }
        if !any_fn_mentions_path(ctx, |n| n.starts_with("decode"), "Record", variant) {
            push(
                ctx,
                diags,
                *tok,
                format!(
                    "`Record::{variant}` has no arm in `decode_prefix` — recovery would refuse \
                 frames holding it"
                ),
            );
        }
        let tag_name = format!("TAG_{}", camel_to_const(variant));
        let tag = tags.iter().find(|(n, _, _)| *n == tag_name);
        match (tag, &doc_rows) {
            (None, _) => push(
                ctx,
                diags,
                *tok,
                format!("`Record::{variant}` has no `{tag_name}` constant"),
            ),
            (Some((_, value, _)), Some(rows)) => match rows.iter().find(|(n, _, _)| n == variant) {
                None => push(
                    ctx,
                    diags,
                    *tok,
                    format!(
                        "`Record::{variant}` is missing from DESIGN.md §14's `Record tags` \
                         table — add its row"
                    ),
                ),
                Some((_, doc_value, _)) if doc_value != value => push(
                    ctx,
                    diags,
                    *tok,
                    format!(
                        "`Record::{variant}`: code tag {value} but DESIGN.md documents \
                         {doc_value} — fix whichever is wrong"
                    ),
                ),
                _ => {}
            },
            (Some(_), None) => push_design(
                meta,
                diags,
                1,
                "`Record` variants exist but DESIGN.md has no parseable `Record tags` table \
                 (§14) — the codec registry is disarmed"
                    .to_string(),
            ),
        }
        if let Some(namer) = op_namer {
            if !any_fn_mentions_path(namer, |n| n == "record_op_name", "Record", variant) {
                push(
                    ctx,
                    diags,
                    *tok,
                    format!(
                        "`Record::{variant}` is not named in ruleserv's `record_op_name` — \
                     per-op latency accounting would lump it as unknown"
                    ),
                );
            }
        }
    }

    // Doc rows with no variant behind them: only judged when the real
    // record.rs is in the linted set (a fixture's mini-enum must not
    // indict the real table).
    if authoritative {
        if let Some(rows) = &doc_rows {
            for (name, _, line) in rows {
                if !variants.iter().any(|(v, _)| v == name) {
                    push_design(
                        meta,
                        diags,
                        *line,
                        format!(
                            "DESIGN.md documents record tag `{name}` but `durable::Record` has \
                         no such variant — stale row"
                        ),
                    );
                }
            }
        }
    }
}

// ----------------------------------------------------------- opcodes

fn check_opcodes(
    ctx: &FileContext,
    ctxs: &[FileContext],
    meta: &WorkspaceMeta,
    diags: &mut Vec<Diagnostic>,
) {
    let ops: Vec<(String, u64, usize)> = const_defs(ctx, "OP_")
        .into_iter()
        .filter(|(n, _, _)| n != "OP_NAMES")
        .collect();
    if ops.is_empty() {
        return;
    }
    let doc_rows = design_rows(meta, "Opcodes");
    let authoritative = ctx.path.ends_with("crates/ruleserv/src/proto.rs");
    let peers: Vec<&FileContext> = ctxs
        .iter()
        .filter(|c| c.krate == "ruleserv" && c.section == Section::Src)
        .collect();

    for (name, value, tok) in &ops {
        let covered = |pred: &dyn Fn(&str) -> bool| {
            peers.iter().any(|c| any_fn_mentions_ident(c, pred, name))
        };
        if !covered(&|n: &str| n.starts_with("encode")) {
            push(
                ctx,
                diags,
                *tok,
                format!(
                    "opcode `{name}` is never written by an `encode` fn — no frame can carry it"
                ),
            );
        }
        if !covered(&|n: &str| n.starts_with("decode")) {
            push(
                ctx,
                diags,
                *tok,
                format!(
                    "opcode `{name}` is never matched by a `decode` fn — peers sending it get \
                 a protocol error"
                ),
            );
        }
        let doc_name = name.strip_prefix("OP_").unwrap_or(name);
        match &doc_rows {
            Some(rows) => match rows.iter().find(|(n, _, _)| n == doc_name) {
                None => push(
                    ctx,
                    diags,
                    *tok,
                    format!(
                        "opcode `{name}` (0x{value:02x}) is missing from DESIGN.md §14's \
                     `Opcodes` table — add its row"
                    ),
                ),
                Some((_, doc_value, _)) if doc_value != value => push(
                    ctx,
                    diags,
                    *tok,
                    format!(
                        "opcode `{name}`: code says 0x{value:02x} but DESIGN.md documents \
                     0x{doc_value:02x} — fix whichever is wrong"
                    ),
                ),
                _ => {}
            },
            None => push_design(
                meta,
                diags,
                1,
                "proto opcodes exist but DESIGN.md has no parseable `Opcodes` table (§14) \
                 — the codec registry is disarmed"
                    .to_string(),
            ),
        }
    }

    if authoritative {
        if let Some(rows) = &doc_rows {
            for (name, value, line) in rows {
                if !ops
                    .iter()
                    .any(|(n, _, _)| n.strip_prefix("OP_").unwrap_or(n) == name)
                {
                    push_design(
                        meta,
                        diags,
                        *line,
                        format!(
                            "DESIGN.md documents opcode `{name}` (0x{value:02x}) but \
                         `ruleserv::proto` defines no such constant — stale row"
                        ),
                    );
                }
            }
        }
    }
}

// ----------------------------------------------------------- helpers

fn push(ctx: &FileContext, diags: &mut Vec<Diagnostic>, tok: usize, message: String) {
    super::emit(ctx, diags, LINT, tok, message);
}

fn push_design(meta: &WorkspaceMeta, diags: &mut Vec<Diagnostic>, line: u32, message: String) {
    let d = Diagnostic {
        lint: LINT,
        severity: Severity::Deny,
        file: meta.root.join("DESIGN.md"),
        line,
        col: 1,
        message,
    };
    // The same disarmed-table message would otherwise repeat per item.
    if !diags
        .iter()
        .any(|e| e.lint == LINT && e.file == d.file && e.message == d.message)
    {
        diags.push(d);
    }
}

/// The variants of `enum <name>` in this file, with their tokens.
fn enum_variants(ctx: &FileContext, name: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let Some(kw) = ctx.code_tokens().find(|&i| {
        ctx.tokens[i].is_ident(&ctx.src, "enum") && {
            ctx.next_code(i)
                .is_some_and(|n| ctx.tokens[n].is_ident(&ctx.src, name))
        }
    }) else {
        return out;
    };
    // Walk the enum body; variant names are idents at brace depth 1
    // whose previous code token is `{` or `,` (payload braces/parens
    // push the depth past 1).
    let mut depth = 0i32;
    let mut i = kw;
    while i < ctx.tokens.len() {
        let t = &ctx.tokens[i];
        if t.is_punct(&ctx.src, '{') || t.is_punct(&ctx.src, '(') {
            depth += 1;
        } else if t.is_punct(&ctx.src, '}') || t.is_punct(&ctx.src, ')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 && t.kind == TokenKind::Ident && !t.is_comment() {
            let starts_variant = ctx.prev_code(i).is_some_and(|p| {
                ctx.tokens[p].is_punct(&ctx.src, '{') || ctx.tokens[p].is_punct(&ctx.src, ',')
            });
            if starts_variant {
                out.push((t.text(&ctx.src).to_string(), i));
            }
        }
        i += 1;
    }
    out
}

/// `const <PREFIX..>: _ = <number>;` definitions in this file.
fn const_defs(ctx: &FileContext, prefix: &str) -> Vec<(String, u64, usize)> {
    let mut out = Vec::new();
    for i in ctx.code_tokens() {
        if !ctx.tokens[i].is_ident(&ctx.src, "const") {
            continue;
        }
        let Some(name_ix) = ctx.next_code(i) else {
            continue;
        };
        let name_tok = &ctx.tokens[name_ix];
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        let name = name_tok.text(&ctx.src);
        if !name.starts_with(prefix) {
            continue;
        }
        // Scan a short window for `= <num>`.
        let mut j = name_ix;
        let mut value = None;
        for _ in 0..8 {
            let Some(n) = ctx.next_code(j) else { break };
            if ctx.tokens[j].is_punct(&ctx.src, '=') && ctx.tokens[n].kind == TokenKind::Num {
                value = parse_num(ctx.tokens[n].text(&ctx.src));
                break;
            }
            j = n;
        }
        if let Some(v) = value {
            out.push((name.to_string(), v, name_ix));
        }
    }
    out
}

fn parse_num(text: &str) -> Option<u64> {
    let t = text.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// Does any fn whose name satisfies `pred` mention `a::b` in its body?
fn any_fn_mentions_path(ctx: &FileContext, pred: impl Fn(&str) -> bool, a: &str, b: &str) -> bool {
    ctx.fns
        .iter()
        .filter(|f| pred(&f.name))
        .any(|f| body_mentions_path(ctx, f.body, a, b))
}

fn body_mentions_path(ctx: &FileContext, body: (usize, usize), a: &str, b: &str) -> bool {
    (body.0..body.1).any(|i| {
        ctx.tokens[i].is_ident(&ctx.src, a)
            && ctx.next_code(i).is_some_and(|c1| {
                ctx.tokens[c1].is_punct(&ctx.src, ':')
                    && ctx.next_code(c1).is_some_and(|c2| {
                        ctx.tokens[c2].is_punct(&ctx.src, ':')
                            && ctx
                                .next_code(c2)
                                .is_some_and(|n| ctx.tokens[n].is_ident(&ctx.src, b))
                    })
            })
    })
}

/// Does any fn whose name satisfies `pred` mention ident `name`?
fn any_fn_mentions_ident(ctx: &FileContext, pred: &dyn Fn(&str) -> bool, name: &str) -> bool {
    ctx.fns
        .iter()
        .filter(|f| pred(&f.name))
        .any(|f| (f.body.0..f.body.1).any(|i| ctx.tokens[i].is_ident(&ctx.src, name)))
}

/// `CreateRelation` -> `CREATE_RELATION`.
fn camel_to_const(name: &str) -> String {
    let mut out = String::new();
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() && i > 0 {
            out.push('_');
        }
        out.push(c.to_ascii_uppercase());
    }
    out
}

/// Rows of the DESIGN.md table under the heading containing `marker`:
/// `(first backticked cell, numeric second backticked cell, line)`.
fn design_rows(meta: &WorkspaceMeta, marker: &str) -> Option<Vec<(String, u64, u32)>> {
    let design = meta.design.as_deref()?;
    let mut in_section = false;
    let mut out = Vec::new();
    for (ix, line) in design.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            in_section = trimmed.contains(marker);
            continue;
        }
        if !in_section || !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed.trim_matches('|').split('|').collect();
        if cells.len() < 2 {
            continue;
        }
        let name = cells[0].trim().trim_matches('`');
        let value = cells[1].trim().trim_matches('`');
        if name.is_empty() || !cells[0].contains('`') {
            continue; // header or separator row
        }
        if let Some(v) = parse_num(value) {
            out.push((name.to_string(), v, ix as u32 + 1));
        }
    }
    (!out.is_empty()).then_some(out)
}
