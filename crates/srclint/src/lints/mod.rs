//! The lint suite. Each lint encodes one project invariant that
//! rustc/clippy cannot check; each is scoped to the crates and
//! sections where the invariant holds, and every finding can be
//! suppressed at the line level with
//! `// srclint:allow(<lint>): <one-line justification>`.

mod fsync_rename;
mod lock_discipline;
mod metric_names;
mod no_panic;
mod safety_comment;

pub use metric_names::design_families as metric_names_design_families;

use crate::context::FileContext;
use crate::diag::Diagnostic;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Workspace-level facts lints can consult (beyond the single file
/// they are looking at).
pub struct WorkspaceMeta {
    pub root: PathBuf,
    /// Metric families declared in DESIGN.md's canonical table;
    /// `None` when DESIGN.md (or the table) is absent, which turns
    /// the registry cross-check off rather than failing every site.
    pub metric_families: Option<BTreeSet<String>>,
}

/// One lint: a stable slug (the `srclint:allow` name) and a checker.
pub struct Lint {
    pub name: &'static str,
    pub summary: &'static str,
    pub check: fn(&FileContext, &WorkspaceMeta, &mut Vec<Diagnostic>),
}

/// The full suite, in reporting order.
pub fn all() -> Vec<Lint> {
    vec![
        Lint {
            name: "safety-comment",
            summary: "every `unsafe` must be preceded by a // SAFETY: comment",
            check: safety_comment::check,
        },
        Lint {
            name: "no-panic-in-lib",
            summary: "no unwrap/expect/panic!/unreachable! in library code paths",
            check: no_panic::check,
        },
        Lint {
            name: "lock-discipline",
            summary: "predindex shard locks only via lock_read/lock_write; one guard per fn",
            check: lock_discipline::check,
        },
        Lint {
            name: "fsync-before-rename",
            summary: "durable fns that rename must sync file contents first",
            check: fsync_rename::check,
        },
        Lint {
            name: "metric-name-registry",
            summary: "metric families are snake_case literals listed in DESIGN.md",
            check: metric_names::check,
        },
    ]
}

/// Is token `i` the identifier `name` invoked as a method
/// (`recv.name(...)`)?
pub(crate) fn is_method_call(ctx: &FileContext, i: usize, name: &str) -> bool {
    ctx.tokens[i].is_ident(&ctx.src, name)
        && ctx
            .prev_code(i)
            .is_some_and(|p| ctx.tokens[p].is_punct(&ctx.src, '.'))
        && ctx
            .next_code(i)
            .is_some_and(|n| ctx.tokens[n].is_punct(&ctx.src, '('))
}

/// Is token `i` the identifier `name` invoked as a macro
/// (`name!(...)`)? Skips definitions (`macro_rules! name`).
pub(crate) fn is_macro_call(ctx: &FileContext, i: usize, name: &str) -> bool {
    ctx.tokens[i].is_ident(&ctx.src, name)
        && ctx
            .next_code(i)
            .is_some_and(|n| ctx.tokens[n].is_punct(&ctx.src, '!'))
        && !ctx
            .prev_code(i)
            .is_some_and(|p| ctx.tokens[p].is_ident(&ctx.src, "macro_rules"))
}

/// Is token `i` the identifier `name` called as a plain or path-
/// qualified function (`name(...)`, `fs::name(...)`)? Method-call
/// receivers also pass — the distinction never matters to callers.
pub(crate) fn is_call(ctx: &FileContext, i: usize, name: &str) -> bool {
    ctx.tokens[i].is_ident(&ctx.src, name)
        && ctx
            .next_code(i)
            .is_some_and(|n| ctx.tokens[n].is_punct(&ctx.src, '('))
}

/// Emits `msg` at token `i` unless an allow comment suppresses it.
pub(crate) fn emit(
    ctx: &FileContext,
    diags: &mut Vec<Diagnostic>,
    lint: &'static str,
    i: usize,
    msg: String,
) {
    let t = &ctx.tokens[i];
    if ctx.is_allowed(lint, t.line) {
        return;
    }
    diags.push(Diagnostic {
        lint,
        severity: crate::diag::Severity::Deny,
        file: ctx.path.clone(),
        line: t.line,
        col: t.col,
        message: msg,
    });
}
