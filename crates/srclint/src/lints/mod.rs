//! The lint suite. Each lint encodes one project invariant that
//! rustc/clippy cannot check; each is scoped to the crates and
//! sections where the invariant holds, and every finding can be
//! suppressed at the line level with
//! `// srclint:allow(<lint>): <one-line justification>`.

mod atomic_ordering;
mod channel_discipline;
mod codec_conformance;
mod fsync_rename;
mod lock_discipline;
mod lock_order;
mod metric_names;
mod no_panic;
mod safety_comment;

pub use lock_order::canonical_order as lock_order_canonical_order;
pub use metric_names::design_families as metric_names_design_families;

use crate::context::FileContext;
use crate::diag::Diagnostic;
use crate::model::WorkspaceModel;
use std::collections::BTreeSet;
use std::path::PathBuf;

/// Workspace-level facts lints can consult (beyond the single file
/// they are looking at).
pub struct WorkspaceMeta {
    pub root: PathBuf,
    /// The full DESIGN.md text, for lints that parse a canonical
    /// table out of it (`None` when the document is absent).
    pub design: Option<String>,
    /// Metric families declared in DESIGN.md's canonical table;
    /// `None` when DESIGN.md (or the table) is absent, which turns
    /// the registry cross-check off rather than failing every site.
    pub metric_families: Option<BTreeSet<String>>,
}

/// One lint: a stable slug (the `srclint:allow` name) and a checker.
pub struct Lint {
    pub name: &'static str,
    pub summary: &'static str,
    pub check: fn(&FileContext, &WorkspaceMeta, &mut Vec<Diagnostic>),
}

/// A cross-file lint: runs once over the whole linted set, after the
/// per-file suite, with the workspace model in hand.
pub struct WorkspaceLint {
    pub name: &'static str,
    pub summary: &'static str,
    pub check: fn(&[FileContext], &WorkspaceModel, &WorkspaceMeta, &mut Vec<Diagnostic>),
}

/// The full suite, in reporting order.
pub fn all() -> Vec<Lint> {
    vec![
        Lint {
            name: "safety-comment",
            summary: "every `unsafe` must be preceded by a // SAFETY: comment",
            check: safety_comment::check,
        },
        Lint {
            name: "no-panic-in-lib",
            summary: "no unwrap/expect/panic!/unreachable! in library code paths",
            check: no_panic::check,
        },
        Lint {
            name: "lock-discipline",
            summary: "predindex shard locks only via lock_read/lock_write; one guard per fn",
            check: lock_discipline::check,
        },
        Lint {
            name: "fsync-before-rename",
            summary: "durable fns that rename must sync file contents first",
            check: fsync_rename::check,
        },
        Lint {
            name: "metric-name-registry",
            summary: "metric families are snake_case literals listed in DESIGN.md",
            check: metric_names::check,
        },
        Lint {
            name: "channel-discipline",
            summary: "no unbounded mpsc::channel in library/server paths; sync_channel only",
            check: channel_discipline::check,
        },
    ]
}

/// The cross-file suite, in reporting order. These run once per
/// invocation, over the model of every linted file.
pub fn workspace_all() -> Vec<WorkspaceLint> {
    vec![
        WorkspaceLint {
            name: "lock-order",
            summary: "nested lock acquisitions follow DESIGN.md's canonical lock order",
            check: lock_order::check,
        },
        WorkspaceLint {
            name: "atomic-ordering",
            summary: "atomic orderings match usage class: counters/flags Relaxed, publication Release/Acquire",
            check: atomic_ordering::check,
        },
        WorkspaceLint {
            name: "codec-conformance",
            summary: "Record variants and proto opcodes have encode+decode arms and DESIGN.md rows",
            check: codec_conformance::check,
        },
    ]
}

/// Is token `i` the identifier `name` invoked as a method
/// (`recv.name(...)`)?
pub(crate) fn is_method_call(ctx: &FileContext, i: usize, name: &str) -> bool {
    ctx.tokens[i].is_ident(&ctx.src, name)
        && ctx
            .prev_code(i)
            .is_some_and(|p| ctx.tokens[p].is_punct(&ctx.src, '.'))
        && ctx
            .next_code(i)
            .is_some_and(|n| ctx.tokens[n].is_punct(&ctx.src, '('))
}

/// Is token `i` the identifier `name` invoked as a macro
/// (`name!(...)`)? Skips definitions (`macro_rules! name`).
pub(crate) fn is_macro_call(ctx: &FileContext, i: usize, name: &str) -> bool {
    ctx.tokens[i].is_ident(&ctx.src, name)
        && ctx
            .next_code(i)
            .is_some_and(|n| ctx.tokens[n].is_punct(&ctx.src, '!'))
        && !ctx
            .prev_code(i)
            .is_some_and(|p| ctx.tokens[p].is_ident(&ctx.src, "macro_rules"))
}

/// Is token `i` the identifier `name` called as a plain or path-
/// qualified function (`name(...)`, `fs::name(...)`)? Method-call
/// receivers also pass — the distinction never matters to callers.
pub(crate) fn is_call(ctx: &FileContext, i: usize, name: &str) -> bool {
    ctx.tokens[i].is_ident(&ctx.src, name)
        && ctx
            .next_code(i)
            .is_some_and(|n| ctx.tokens[n].is_punct(&ctx.src, '('))
}

/// Emits `msg` at token `i` unless an allow comment suppresses it.
pub(crate) fn emit(
    ctx: &FileContext,
    diags: &mut Vec<Diagnostic>,
    lint: &'static str,
    i: usize,
    msg: String,
) {
    let t = &ctx.tokens[i];
    if ctx.is_allowed(lint, t.line) {
        return;
    }
    diags.push(Diagnostic {
        lint,
        severity: crate::diag::Severity::Deny,
        file: ctx.path.clone(),
        line: t.line,
        col: t.col,
        message: msg,
    });
}
