//! `metric-name-registry`: every metric family registered through
//! `registry.counter(..)` / `registry.histogram(..)` must (1) be a
//! *statically known* family — a string literal, or a `format!` whose
//! literal prefix up to the first `{{`-escaped label brace is the
//! family; (2) match the snake_case family grammar, counters ending
//! `_total`; and (3) appear in DESIGN.md's canonical metric-families
//! table. The table is what the README, the exposition smoke greps in
//! CI, and dashboards key on — this lint is what keeps code and table
//! from drifting.

use super::{emit, is_method_call, WorkspaceMeta};
use crate::context::{FileContext, Section};
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;

const LINT: &str = "metric-name-registry";

/// Crates that mint metric families.
const METRIC_CRATES: &[&str] = &[
    "telemetry",
    "predindex",
    "rules",
    "joinmemo",
    "durable",
    "ruleserv",
];

pub(super) fn check(ctx: &FileContext, meta: &WorkspaceMeta, diags: &mut Vec<Diagnostic>) {
    if ctx.section != Section::Src || !METRIC_CRATES.contains(&ctx.krate.as_str()) {
        return;
    }
    for i in ctx.code_tokens() {
        if ctx.in_test(i) {
            continue;
        }
        let is_counter = is_method_call(ctx, i, "counter");
        if !is_counter && !is_method_call(ctx, i, "histogram") {
            continue;
        }
        let Some(open) = ctx.next_code(i) else {
            continue;
        };
        match family_of_arg(ctx, open) {
            Arg::Family(family) => {
                if !family_grammar_ok(&family) {
                    emit(
                        ctx,
                        diags,
                        LINT,
                        i,
                        format!(
                            "metric family `{family}` violates the grammar \
                             `[a-z][a-z0-9_]*` (snake_case, ASCII)"
                        ),
                    );
                } else if is_counter && !family.ends_with("_total") {
                    emit(
                        ctx,
                        diags,
                        LINT,
                        i,
                        format!("counter family `{family}` must end in `_total`"),
                    );
                } else if let Some(families) = &meta.metric_families {
                    if !families.contains(&family) {
                        emit(
                            ctx,
                            diags,
                            LINT,
                            i,
                            format!(
                                "metric family `{family}` is not in DESIGN.md's \
                                 metric-families table — register it there"
                            ),
                        );
                    }
                }
            }
            Arg::DynamicFamily => emit(
                ctx,
                diags,
                LINT,
                i,
                "metric family is interpolated — the family part of the name must be a \
                 string literal (labels after `{{` may interpolate)"
                    .to_string(),
            ),
            Arg::NotALiteral => emit(
                ctx,
                diags,
                LINT,
                i,
                "metric name is not a string literal or format! with a literal family — \
                 srclint cannot register it"
                    .to_string(),
            ),
        }
    }
}

enum Arg {
    /// Family resolved statically.
    Family(String),
    /// `format!` with an interpolation before any `{{` label brace.
    DynamicFamily,
    /// Something srclint cannot see through (a variable, an
    /// expression).
    NotALiteral,
}

/// Inspects the first argument after the call's `(` token. Accepts
/// `"literal"`, `&format!("literal{{label…")`, and
/// `format!("literal{{label…")`.
fn family_of_arg(ctx: &FileContext, open: usize) -> Arg {
    let Some(mut a) = ctx.next_code(open) else {
        return Arg::NotALiteral;
    };
    // Strip leading `&`s.
    while ctx.tokens[a].is_punct(&ctx.src, '&') {
        match ctx.next_code(a) {
            Some(n) => a = n,
            None => return Arg::NotALiteral,
        }
    }
    if ctx.tokens[a].kind == TokenKind::Str {
        let lit = literal_content(ctx.tokens[a].text(&ctx.src));
        // In a plain literal a `{` begins the label block directly.
        let family = lit.split('{').next().unwrap_or("").to_string();
        return Arg::Family(family);
    }
    if ctx.tokens[a].is_ident(&ctx.src, "format") {
        // format ! ( "literal…"
        let Some(bang) = ctx.next_code(a) else {
            return Arg::NotALiteral;
        };
        if !ctx.tokens[bang].is_punct(&ctx.src, '!') {
            return Arg::NotALiteral;
        }
        let Some(paren) = ctx.next_code(bang) else {
            return Arg::NotALiteral;
        };
        let Some(lit_ix) = ctx.next_code(paren) else {
            return Arg::NotALiteral;
        };
        if ctx.tokens[lit_ix].kind != TokenKind::Str {
            return Arg::NotALiteral;
        }
        let lit = literal_content(ctx.tokens[lit_ix].text(&ctx.src));
        return match lit.find('{') {
            // `{{` escapes a literal `{`: the family ends, labels
            // begin. A single `{` interpolates inside the family.
            Some(at) if lit[at..].starts_with("{{") => Arg::Family(lit[..at].to_string()),
            Some(_) => Arg::DynamicFamily,
            None => Arg::Family(lit.to_string()),
        };
    }
    Arg::NotALiteral
}

/// Strips the quotes (and a `b` prefix) off a string-literal token's
/// text.
fn literal_content(text: &str) -> &str {
    let t = text.strip_prefix('b').unwrap_or(text);
    t.strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .unwrap_or(t)
}

fn family_grammar_ok(family: &str) -> bool {
    let mut chars = family.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Parses the canonical metric-families table out of DESIGN.md: the
/// backticked first cell of every `|`-row under a heading containing
/// "Metric famil". Returns `None` when the document or section is
/// missing.
pub fn design_families(design_md: &str) -> Option<std::collections::BTreeSet<String>> {
    let mut in_section = false;
    let mut found_any = false;
    let mut out = std::collections::BTreeSet::new();
    for line in design_md.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            in_section = trimmed.contains("Metric famil");
            continue;
        }
        if !in_section || !trimmed.starts_with('|') {
            continue;
        }
        let first_cell = trimmed.trim_start_matches('|');
        let Some(start) = first_cell.find('`') else {
            continue;
        };
        let rest = &first_cell[start + 1..];
        let Some(end) = rest.find('`') else { continue };
        let name = &rest[..end];
        if !name.is_empty() {
            out.insert(name.to_string());
            found_any = true;
        }
    }
    found_any.then_some(out)
}
