//! `safety-comment`: every `unsafe` keyword — block or fn — must be
//! justified by a nearby comment carrying `SAFETY:` (or a `# Safety`
//! doc section for unsafe fns). The paper's data structures lean on
//! structural invariants (mark-set rules, rotation bookkeeping); any
//! `unsafe` that rides on those invariants must say which one it
//! trusts. Applies to every crate and section: test code gets no
//! pass on memory safety.

use super::{emit, WorkspaceMeta};
use crate::context::FileContext;
use crate::diag::Diagnostic;

const LINT: &str = "safety-comment";

/// How far above the `unsafe` token the justifying comment may sit.
const MAX_GAP_LINES: u32 = 3;

pub(super) fn check(ctx: &FileContext, _meta: &WorkspaceMeta, diags: &mut Vec<Diagnostic>) {
    for i in 0..ctx.tokens.len() {
        if ctx.tokens[i].is_comment() || !ctx.tokens[i].is_ident(&ctx.src, "unsafe") {
            continue;
        }
        let line = ctx.tokens[i].line;
        // Nearest comment *block* before the keyword, close enough to
        // be about it. A block of consecutive `//` lines lexes as one
        // token per line, so walk the whole adjacent run — the
        // `SAFETY:` opener may sit several comment lines up.
        let preceding_ok = comment_block_before(ctx, i).is_some_and(|(first, last)| {
            let t = &ctx.tokens[last];
            let end_line = t.line + t.text(&ctx.src).matches('\n').count() as u32;
            end_line + MAX_GAP_LINES >= line
                && (first..=last).any(|j| is_safety_text(ctx.tokens[j].text(&ctx.src)))
        });
        // Or a trailing comment on the same line (`unsafe { .. } // SAFETY: ..`).
        let trailing_ok = (i + 1..ctx.tokens.len())
            .take_while(|&j| ctx.tokens[j].line == line)
            .any(|j| ctx.tokens[j].is_comment() && is_safety_text(ctx.tokens[j].text(&ctx.src)));
        if !preceding_ok && !trailing_ok {
            emit(
                ctx,
                diags,
                LINT,
                i,
                "`unsafe` without a `// SAFETY:` comment stating the invariant it relies on"
                    .to_string(),
            );
        }
    }
}

/// Token range `(first, last)` of the run of comment tokens directly
/// preceding token `i`, where consecutive members sit on adjacent
/// lines (blank lines break the run).
fn comment_block_before(ctx: &FileContext, i: usize) -> Option<(usize, usize)> {
    let last = (0..i).rev().find(|&j| ctx.tokens[j].is_comment())?;
    let mut first = last;
    while first > 0 {
        let prev = first - 1;
        if ctx.tokens[prev].is_comment() && ctx.tokens[prev].line + 1 == ctx.tokens[first].line {
            first = prev;
        } else {
            break;
        }
    }
    Some((first, last))
}

fn is_safety_text(text: &str) -> bool {
    text.contains("SAFETY:") || text.contains("# Safety")
}
