//! `no-panic-in-lib`: library code paths must not reach for
//! `unwrap()`, `expect()`, `panic!`, `unreachable!`, `todo!` or
//! `unimplemented!`. A predicate index embedded in a rule engine is
//! infrastructure — a stray panic tears down every shard's worker
//! and poisons its lock. Fallible paths return `Result`; invariant
//! checks use `debug_assert!`; the few deliberate panics (poisoned
//! locks, documented API misuse) carry a
//! `// srclint:allow(no-panic-in-lib): <why>` justification.
//!
//! Scope: `src/` of the long-lived library crates only. Tests,
//! benches, examples, bins of the bench crate, and `#[cfg(test)]`
//! modules are exempt — panicking is how tests fail.

use super::{emit, is_macro_call, is_method_call, WorkspaceMeta};
use crate::context::{FileContext, Section};
use crate::diag::Diagnostic;

const LINT: &str = "no-panic-in-lib";

/// Crates whose `src/` trees are library paths. `altindex`, `rtree`
/// and `bench` are experiment baselines/harnesses, not serving code;
/// `srclint` holds itself to its own rule.
const LIB_CRATES: &[&str] = &[
    "interval",
    "ibs",
    "predicate",
    "predindex",
    "relation",
    "rules",
    "joinmemo",
    "durable",
    "telemetry",
    "ruleserv",
    "srclint",
];

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// `self.expect(...)` / `self.unwrap(...)` is a user-defined method
/// on the enclosing type (e.g. the predicate parser's Result-
/// returning `expect(&Token, ..)`), never `Option`/`Result`'s
/// panicking one — `self` itself is not an `Option` in a method body.
fn receiver_is_self(ctx: &FileContext, call: usize) -> bool {
    let Some(dot) = ctx.prev_code(call) else {
        return false;
    };
    ctx.prev_code(dot)
        .is_some_and(|r| ctx.tokens[r].is_ident(&ctx.src, "self"))
}
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

pub(super) fn check(ctx: &FileContext, _meta: &WorkspaceMeta, diags: &mut Vec<Diagnostic>) {
    if ctx.section != Section::Src || !LIB_CRATES.contains(&ctx.krate.as_str()) {
        return;
    }
    for i in ctx.code_tokens() {
        if ctx.in_test(i) {
            continue;
        }
        for m in PANIC_METHODS {
            if is_method_call(ctx, i, m) && !receiver_is_self(ctx, i) {
                emit(
                    ctx,
                    diags,
                    LINT,
                    i,
                    format!(
                        "`.{m}()` in a library path — return a `Result`, use `unwrap_or*`, \
                         or justify with `srclint:allow({LINT})`"
                    ),
                );
            }
        }
        for m in PANIC_MACROS {
            if is_macro_call(ctx, i, m) {
                emit(
                    ctx,
                    diags,
                    LINT,
                    i,
                    format!(
                        "`{m}!` in a library path — return an error or use `debug_assert!`, \
                         or justify with `srclint:allow({LINT})`"
                    ),
                );
            }
        }
    }
}
