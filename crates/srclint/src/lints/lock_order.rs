//! `lock-order`: the cross-file deadlock guard. From the workspace
//! model it builds the nested-acquisition graph — an edge `A -> B`
//! whenever some scope may acquire lock class `B` (directly, or
//! transitively through a call) while a guard of class `A` from the
//! same scope may still be live — and checks every edge against the
//! canonical lock order documented in DESIGN.md §18. An edge that
//! runs backwards (or sideways: `A -> A` re-acquisition) is a
//! deadlock candidate and a finding; a class missing from the table
//! is a finding too, so the table cannot silently rot.
//!
//! The analysis over-approximates guard lifetimes (a guard is assumed
//! live to the end of its scope — early `drop` is invisible), so
//! genuinely sequential acquisitions get a
//! `// srclint:allow(lock-order): <why>` at the second site, exactly
//! like `lock-discipline`'s batch path.

use super::{emit, WorkspaceMeta};
use crate::callgraph::CallGraph;
use crate::context::FileContext;
use crate::diag::{Diagnostic, Severity};
use crate::model::{Event, WorkspaceModel};
use std::collections::BTreeMap;

const LINT: &str = "lock-order";

pub(super) fn check(
    ctxs: &[FileContext],
    model: &WorkspaceModel,
    meta: &WorkspaceMeta,
    diags: &mut Vec<Diagnostic>,
) {
    if model.classes.is_empty() {
        return;
    }
    let graph = CallGraph::build(model);

    // Nested-acquisition edges: (held class, acquired class) -> first
    // site that creates the edge, as (file, token).
    let mut edges: BTreeMap<(usize, usize), (usize, usize)> = BTreeMap::new();
    for (i, f) in model.fns.iter().enumerate() {
        let mut held: Vec<usize> = Vec::new();
        for e in &f.events {
            match e {
                Event::Lock { class, tok } => {
                    for &a in &held {
                        edges.entry((a, *class)).or_insert((f.file, *tok));
                    }
                    held.push(*class);
                }
                Event::Call { callee, tok } => {
                    if held.is_empty() {
                        continue;
                    }
                    for c in graph.resolve(model, i, callee) {
                        for &b in graph.locks_of(c) {
                            for &a in &held {
                                edges.entry((a, b)).or_insert((f.file, *tok));
                            }
                        }
                    }
                }
            }
        }
    }
    if edges.is_empty() {
        return;
    }

    // The table's maintenance hatch: dump the discovered graph so the
    // DESIGN.md ranks can be written from evidence, not memory.
    if std::env::var_os("SRCLINT_LOCK_EDGES").is_some() {
        for (&(a, b), &(file, tok)) in &edges {
            let t = &ctxs[file].tokens[tok];
            eprintln!(
                "lock-edge: {} -> {} at {}:{}",
                model.class(a),
                model.class(b),
                ctxs[file].path.display(),
                t.line
            );
        }
    }

    let Some(order) = canonical_order(meta) else {
        // No parseable canonical-order table: the pass is disarmed,
        // which must itself be a failure — otherwise deleting the
        // table silently turns the deadlock guard off.
        diags.push(Diagnostic {
            lint: LINT,
            severity: Severity::Deny,
            file: meta.root.join("DESIGN.md"),
            line: 1,
            col: 1,
            message: format!(
                "nested lock acquisitions exist but DESIGN.md has no parseable \
                 \"Canonical lock order\" table (§18) — {} edge(s) unchecked",
                edges.len()
            ),
        });
        return;
    };

    for (&(a, b), &(file, tok)) in &edges {
        let (ca, cb) = (model.class(a), model.class(b));
        let ra = order.get(&(ca.krate.clone(), ca.ident.clone()));
        let rb = order.get(&(cb.krate.clone(), cb.ident.clone()));
        let ctx = &ctxs[file];
        match (ra, rb) {
            (None, _) => emit(
                ctx,
                diags,
                LINT,
                tok,
                format!(
                    "lock class `{ca}` is nested with `{cb}` but missing from \
                     DESIGN.md §18's canonical lock-order table — rank it there"
                ),
            ),
            (_, None) => emit(
                ctx,
                diags,
                LINT,
                tok,
                format!(
                    "lock class `{cb}` is acquired while `{ca}` is held but missing \
                     from DESIGN.md §18's canonical lock-order table — rank it there"
                ),
            ),
            (Some(x), Some(y)) if x >= y => {
                let shape = if a == b {
                    format!("`{ca}` may be re-acquired while already held")
                } else {
                    format!(
                        "`{cb}` (rank {y}) is acquired while `{ca}` (rank {x}) is held \
                         — against the canonical order"
                    )
                };
                emit(
                    ctx,
                    diags,
                    LINT,
                    tok,
                    format!(
                        "{shape}; a deadlock candidate — reorder the acquisitions, or \
                         justify strictly-sequential guards with `srclint:allow({LINT})`"
                    ),
                );
            }
            _ => {}
        }
    }
}

/// Parses the canonical lock order out of DESIGN.md: the rows of the
/// table under the heading containing "Canonical lock order", as
/// `| <rank> | <crate> | `ident` [, `ident`]* | why |`. Returns
/// `(crate, ident) -> rank`.
pub fn canonical_order(meta: &WorkspaceMeta) -> Option<BTreeMap<(String, String), u32>> {
    let design = meta.design.as_deref()?;
    let mut in_section = false;
    let mut out = BTreeMap::new();
    for line in design.lines() {
        let trimmed = line.trim();
        if trimmed.starts_with('#') {
            in_section = trimmed.contains("Canonical lock order");
            continue;
        }
        if !in_section || !trimmed.starts_with('|') {
            continue;
        }
        let cells: Vec<&str> = trimmed.trim_matches('|').split('|').collect();
        if cells.len() < 3 {
            continue;
        }
        let Ok(rank) = cells[0].trim().parse::<u32>() else {
            continue; // header or separator row
        };
        let krate = cells[1].trim().trim_matches('`').to_string();
        for ident in cells[2].split(',') {
            let ident = ident.trim().trim_matches('`').to_string();
            if !ident.is_empty() {
                out.insert((krate.clone(), ident), rank);
            }
        }
    }
    (!out.is_empty()).then_some(out)
}
