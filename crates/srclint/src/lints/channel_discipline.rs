//! `channel-discipline`: no unbounded `mpsc::channel()` in library
//! and server code paths. An unbounded sender never blocks, so a
//! producer that outruns its consumer grows the queue without limit —
//! the server learned this the honest way and its request/pipeline
//! queues are `sync_channel` with explicit caps and a `Busy` reply.
//! `sync_channel` forces the capacity decision to the construction
//! site; even a oneshot reply slot is `sync_channel(1)` (exactly one
//! send can ever happen, so the bound is free — and documented).
//! Tests and benches may buffer however they like.

use super::{emit, WorkspaceMeta};
use crate::context::{FileContext, Section};
use crate::diag::Diagnostic;

const LINT: &str = "channel-discipline";

/// Same long-lived library/server set as `no-panic-in-lib`.
const LIB_CRATES: &[&str] = &[
    "interval",
    "ibs",
    "predicate",
    "predindex",
    "relation",
    "rules",
    "joinmemo",
    "durable",
    "telemetry",
    "ruleserv",
    "srclint",
];

pub(super) fn check(ctx: &FileContext, _meta: &WorkspaceMeta, diags: &mut Vec<Diagnostic>) {
    if ctx.section != Section::Src || !LIB_CRATES.contains(&ctx.krate.as_str()) {
        return;
    }
    for i in ctx.code_tokens() {
        if ctx.in_test(i) {
            continue;
        }
        // `mpsc :: channel (` — the unbounded constructor, path-called.
        if !ctx.tokens[i].is_ident(&ctx.src, "channel") {
            continue;
        }
        if !is_called(ctx, i) {
            continue;
        }
        let via_mpsc = ctx.prev_code(i).is_some_and(|c1| {
            ctx.tokens[c1].is_punct(&ctx.src, ':')
                && ctx.prev_code(c1).is_some_and(|c2| {
                    ctx.tokens[c2].is_punct(&ctx.src, ':')
                        && ctx
                            .prev_code(c2)
                            .is_some_and(|m| ctx.tokens[m].is_ident(&ctx.src, "mpsc"))
                })
        });
        if via_mpsc {
            emit(
                ctx,
                diags,
                LINT,
                i,
                format!(
                    "unbounded `mpsc::channel()` in a library/server path — use \
                     `sync_channel` with an explicit bound (1 for oneshot slots), or \
                     justify with `srclint:allow({LINT})`"
                ),
            );
        }
    }
}

/// `channel(` or `channel::<T>(` — a call, turbofish included.
fn is_called(ctx: &FileContext, i: usize) -> bool {
    let Some(mut n) = ctx.next_code(i) else {
        return false;
    };
    if ctx.tokens[n].is_punct(&ctx.src, ':') {
        // `:: < .. > (`
        let Some(c2) = ctx.next_code(n) else {
            return false;
        };
        let Some(lt) = ctx.next_code(c2) else {
            return false;
        };
        if !ctx.tokens[c2].is_punct(&ctx.src, ':') || !ctx.tokens[lt].is_punct(&ctx.src, '<') {
            return false;
        }
        let mut depth = 0i32;
        let mut j = lt;
        loop {
            if ctx.tokens[j].is_punct(&ctx.src, '<') {
                depth += 1;
            } else if ctx.tokens[j].is_punct(&ctx.src, '>') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            match ctx.next_code(j) {
                Some(next) => j = next,
                None => return false,
            }
        }
        match ctx.next_code(j) {
            Some(next) => n = next,
            None => return false,
        }
    }
    ctx.tokens[n].is_punct(&ctx.src, '(')
}
