//! `fsync-before-rename`: in the durability layer, a rename
//! publishes a file. Publishing contents that were never synced is
//! the classic torn-snapshot bug — after a crash the name points at
//! garbage and recovery refuses to start. So any `durable` function
//! that calls `fs::rename` must have called `sync_all`/`sync_data`
//! earlier in its body (the tmp-file write path), keeping the
//! write → sync → rename → dir-sync order machine-checked.

use super::{emit, is_call, WorkspaceMeta};
use crate::context::{FileContext, Section};
use crate::diag::Diagnostic;

const LINT: &str = "fsync-before-rename";

pub(super) fn check(ctx: &FileContext, _meta: &WorkspaceMeta, diags: &mut Vec<Diagnostic>) {
    if ctx.krate != "durable" || ctx.section != Section::Src {
        return;
    }
    for f in &ctx.fns {
        let (start, end) = f.body;
        for i in start..end {
            if ctx.tokens[i].is_comment() || ctx.in_test(i) {
                continue;
            }
            if !is_call(ctx, i, "rename") {
                continue;
            }
            let synced_before = (start..i).any(|j| {
                !ctx.tokens[j].is_comment()
                    && (is_call(ctx, j, "sync_all") || is_call(ctx, j, "sync_data"))
            });
            if !synced_before {
                emit(
                    ctx,
                    diags,
                    LINT,
                    i,
                    format!(
                        "`{}` renames without a prior sync_all/sync_data in its body — \
                         a crash can publish unsynced contents",
                        f.name
                    ),
                );
            }
        }
    }
}
