//! A hand-rolled Rust lexer: just enough token structure for lexical
//! lints, with the hard parts done properly — nested block comments,
//! raw strings (any `#` count), byte/raw-byte strings, and the
//! `'a'`-char versus `'a`-lifetime ambiguity. No syn, no proc-macro:
//! the whole analyzer stays std-only so it builds against an
//! unreachable registry.
//!
//! Comments are kept in the token stream (lints need them for
//! `// SAFETY:` and `// srclint:allow(...)` detection); whitespace is
//! dropped. Every token carries a byte span and a 1-based `line:col`
//! so diagnostics point at real source positions.

/// What a token is. Literal sub-flavours that no lint distinguishes
/// (byte vs unicode strings, ints vs floats) are merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `fn`, `unwrap`, ...); raw
    /// identifiers (`r#type`) land here with the `r#` included.
    Ident,
    /// `'a`, `'static`, `'_` — but never `'a'` (that is a [`Char`]).
    ///
    /// [`Char`]: TokenKind::Char
    Lifetime,
    /// Integer or float literal, suffix included.
    Num,
    /// `"..."` or `b"..."` with escapes.
    Str,
    /// `r"..."`, `r#"..."#`, `br##"..."##`, any hash depth.
    RawStr,
    /// `'x'`, `'\n'`, `'\u{1F980}'`, `b'x'`.
    Char,
    /// `// ...` (incl. `///` and `//!`) up to the newline.
    LineComment,
    /// `/* ... */`, nested pairs balanced like rustc does.
    BlockComment,
    /// Any single punctuation byte (`.`, `(`, `#`, `!`, ...).
    Punct,
}

/// One token: kind plus byte span and 1-based source position.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the token's first byte in the source.
    pub start: usize,
    /// Byte length.
    pub len: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text, sliced out of the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.start + self.len]
    }

    /// Is this token the identifier `word`?
    pub fn is_ident(&self, src: &str, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == word
    }

    /// Is this token the punctuation byte `p`?
    pub fn is_punct(&self, src: &str, p: char) -> bool {
        self.kind == TokenKind::Punct && self.text(src).starts_with(p)
    }

    /// Is this a line or block comment?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Byte-level cursor over the source. Decisions are ASCII-driven;
/// non-ASCII bytes are treated as identifier/comment filler, which is
/// correct for every position they can legally occupy in Rust source.
struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn eof(&self) -> bool {
        self.pos >= self.src.len()
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token vector. Never fails: unterminated
/// literals and comments are closed by end-of-file, which is the
/// right behaviour for a linter that must keep going on odd input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while !cur.eof() {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let b = cur.peek(0);
        let kind = if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        } else if b == b'/' && cur.peek(1) == b'/' {
            lex_line_comment(&mut cur)
        } else if b == b'/' && cur.peek(1) == b'*' {
            lex_block_comment(&mut cur)
        } else if let Some(kind) = try_lex_prefixed_literal(&mut cur) {
            kind
        } else if is_ident_start(b) {
            lex_ident(&mut cur)
        } else if b.is_ascii_digit() {
            lex_number(&mut cur)
        } else if b == b'"' {
            lex_string(&mut cur)
        } else if b == b'\'' {
            lex_tick(&mut cur)
        } else {
            cur.bump();
            TokenKind::Punct
        };
        out.push(Token {
            kind,
            start,
            len: cur.pos - start,
            line,
            col,
        });
    }
    out
}

fn lex_line_comment(cur: &mut Cursor) -> TokenKind {
    while !cur.eof() && cur.peek(0) != b'\n' {
        cur.bump();
    }
    TokenKind::LineComment
}

fn lex_block_comment(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // '/'
    cur.bump(); // '*'
    let mut depth = 1usize;
    while !cur.eof() && depth > 0 {
        if cur.peek(0) == b'/' && cur.peek(1) == b'*' {
            cur.bump();
            cur.bump();
            depth += 1;
        } else if cur.peek(0) == b'*' && cur.peek(1) == b'/' {
            cur.bump();
            cur.bump();
            depth -= 1;
        } else {
            cur.bump();
        }
    }
    TokenKind::BlockComment
}

/// Handles every literal form that *starts* with an identifier byte:
/// `r"` / `r#"` raw strings, `b"` byte strings, `br#"` raw byte
/// strings, `b'x'` byte chars, and `r#ident` raw identifiers. Returns
/// `None` when the lookahead says this is a plain identifier after
/// all (`radius`, `broken`, ...).
fn try_lex_prefixed_literal(cur: &mut Cursor) -> Option<TokenKind> {
    let (b0, b1) = (cur.peek(0), cur.peek(1));
    match (b0, b1) {
        (b'r', b'"') | (b'r', b'#') | (b'b', b'r') if raw_string_follows(cur) => {
            cur.bump(); // 'r' or 'b'
            if b1 == b'r' {
                cur.bump(); // 'r' of "br"
            }
            let hashes = count_hashes(cur);
            Some(lex_raw_string_body(cur, hashes))
        }
        (b'r', b'#') if is_ident_start(cur.peek(2)) => {
            // Raw identifier `r#type`: consume prefix, fall through to
            // ident rules.
            cur.bump();
            cur.bump();
            while is_ident_continue(cur.peek(0)) {
                cur.bump();
            }
            Some(TokenKind::Ident)
        }
        (b'b', b'"') => {
            cur.bump();
            Some(lex_string(cur))
        }
        (b'b', b'\'') => {
            cur.bump();
            Some(lex_char_body(cur))
        }
        _ => None,
    }
}

/// Past the `r`/`br` prefix, do we see `#* "` — i.e. the rest of a
/// raw-string opener? Distinguishes `r#"..."#` from the raw ident
/// `r#type` and `br#"..."#` from an ident starting with `br`.
fn raw_string_follows(cur: &Cursor) -> bool {
    let mut i = if cur.peek(0) == b'b' { 2 } else { 1 };
    if cur.peek(0) == b'b' && cur.peek(1) != b'r' {
        return false;
    }
    while cur.peek(i) == b'#' {
        i += 1;
    }
    cur.peek(i) == b'"'
}

/// Counts `#`s at the cursor (which sits just past `r`/`br`),
/// consuming them and the opening quote.
fn count_hashes(cur: &mut Cursor) -> usize {
    let mut n = 0;
    while cur.peek(0) == b'#' {
        cur.bump();
        n += 1;
    }
    cur.bump(); // opening '"'
    n
}

/// Scans a raw-string body until `"` followed by `hashes` `#`s. No
/// escapes exist in raw strings — a lone `\` or an interior `"` with
/// too few hashes is content, which is exactly why `r#"unsafe"#`
/// must never fool the `unsafe` lint.
fn lex_raw_string_body(cur: &mut Cursor, hashes: usize) -> TokenKind {
    while !cur.eof() {
        if cur.bump() == b'"' {
            let mut seen = 0;
            while seen < hashes && cur.peek(0) == b'#' {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                return TokenKind::RawStr;
            }
        }
    }
    TokenKind::RawStr
}

fn lex_ident(cur: &mut Cursor) -> TokenKind {
    while is_ident_continue(cur.peek(0)) {
        cur.bump();
    }
    TokenKind::Ident
}

fn lex_number(cur: &mut Cursor) -> TokenKind {
    // Digits, underscores, radix prefixes and suffixes all lex as
    // ident-continue bytes; a `.` joins only when a digit follows, so
    // `0..n` stays three tokens while `1.5` stays one.
    while is_ident_continue(cur.peek(0)) {
        cur.bump();
    }
    if cur.peek(0) == b'.' && cur.peek(1).is_ascii_digit() {
        cur.bump();
        while is_ident_continue(cur.peek(0)) {
            cur.bump();
        }
    }
    TokenKind::Num
}

fn lex_string(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // opening '"'
    while !cur.eof() {
        match cur.bump() {
            // Any escaped byte is content, including `\"` and `\\`.
            b'\\' if !cur.eof() => {
                cur.bump();
            }
            b'"' => break,
            _ => {}
        }
    }
    TokenKind::Str
}

/// A `'` starts either a char literal or a lifetime. Disambiguation,
/// matching rustc: an escape (`'\...`) is always a char; otherwise
/// one character followed by a closing `'` is a char (`'a'`, `'∞'`);
/// anything else is a lifetime (`'a`, `'static`, `'_`).
fn lex_tick(cur: &mut Cursor) -> TokenKind {
    if cur.peek(1) == b'\\' {
        return lex_char_body(cur);
    }
    // Width of the single character after the tick (UTF-8 leading
    // byte tells us), then check for the closing tick.
    let w = match cur.peek(1) {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    };
    if cur.peek(1 + w) == b'\'' && cur.peek(1) != b'\'' {
        return lex_char_body(cur);
    }
    // Lifetime: consume the tick and the label.
    cur.bump();
    while is_ident_continue(cur.peek(0)) {
        cur.bump();
    }
    TokenKind::Lifetime
}

/// Consumes a char literal starting at the opening `'`.
fn lex_char_body(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // opening '\''
    while !cur.eof() {
        match cur.bump() {
            b'\\' if !cur.eof() => {
                cur.bump();
            }
            b'\'' => break,
            _ => {}
        }
    }
    TokenKind::Char
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("fn main() { x.y }");
        assert_eq!(ks[0], (TokenKind::Ident, "fn".into()));
        assert_eq!(ks[1], (TokenKind::Ident, "main".into()));
        assert!(ks.iter().any(|(k, t)| *k == TokenKind::Punct && t == "."));
    }

    #[test]
    fn raw_string_hides_keywords() {
        let src = r##"let s = r#"unsafe { unwrap() }"#;"##;
        let ks = kinds(src);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("unsafe")));
        // The `unsafe` inside the raw string must NOT surface as an ident.
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }

    #[test]
    fn char_vs_lifetime() {
        let ks = kinds("let c: char = 'a'; fn f<'a>(x: &'a str) {} let n = '\\n';");
        let chars: Vec<_> = ks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        let lifes: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        assert_eq!(chars.len(), 2, "{chars:?}");
        assert_eq!(lifes.len(), 2, "{lifes:?}");
        assert_eq!(lifes[0].1, "'a");
    }

    #[test]
    fn nested_block_comments() {
        let ks = kinds("a /* outer /* inner */ still comment */ b");
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1].0, TokenKind::BlockComment);
        assert!(ks[1].1.contains("still comment"));
        assert_eq!(ks[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn line_positions() {
        let src = "a\n  bb\n";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let ks = kinds(r###"let a = b"bytes"; let b = br#"raw unsafe"#; let c = b'x';"###);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("bytes")));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::RawStr && t.contains("raw unsafe")));
        assert!(ks.iter().any(|(k, t)| *k == TokenKind::Char && t == "b'x'"));
        assert!(!ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "unsafe"));
    }

    #[test]
    fn raw_ident_is_ident() {
        let ks = kinds("let r#type = 1; radius");
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#type"));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "radius"));
    }

    #[test]
    fn string_escapes() {
        let ks = kinds(r#"let s = "quote \" backslash \\ done"; after"#);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "after"));
    }

    #[test]
    fn numbers_and_ranges() {
        let ks = kinds("0..n 1.5 0xff_u32");
        assert_eq!(ks[0], (TokenKind::Num, "0".into()));
        assert_eq!(ks[1], (TokenKind::Punct, ".".into()));
        assert_eq!(ks[2], (TokenKind::Punct, ".".into()));
        assert!(ks.iter().any(|(k, t)| *k == TokenKind::Num && t == "1.5"));
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Num && t == "0xff_u32"));
    }
}
