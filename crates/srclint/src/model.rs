//! The workspace item model — the cross-file stage's view of the
//! code. Where [`FileContext`](crate::context::FileContext) knows one
//! file's tokens, the model knows every function (and closure) in the
//! linted set, and for each one the ordered sequence of *events* the
//! concurrency passes care about: lock acquisitions and calls to
//! other functions. It also collects every atomic-operation site with
//! its memory ordering, for the atomic-ordering pass.
//!
//! The model is lexical, like everything in srclint: no types, no
//! name resolution beyond "same identifier". Its approximations are
//! documented in DESIGN.md §18 and recapped where they are made:
//!
//! * A lock *class* is `(crate, receiver field ident)` — the ident
//!   the guard is taken from (`shards`, `ring`, `metrics`, ...).
//!   Locks reached through a local rebinding of the field are missed
//!   unless the binding statement names the field.
//! * A guard is assumed live from its acquisition to the end of the
//!   enclosing scope (over-approximation: early `drop(guard)` is
//!   invisible).
//! * Closure bodies are separate scopes: a `thread::scope` spawn runs
//!   concurrently, so its acquisitions belong to the worker, not the
//!   spawning fn (and a closure, having no name, is never a call
//!   target — an under-approximation for same-thread closures).

use crate::context::{FileContext, Scope, Section};
use crate::lexer::TokenKind;
use std::collections::BTreeMap;

/// Crates whose `src/` trees the concurrency passes reason about:
/// the ones that own locks, atomics, or the wire codec.
pub const CONCURRENCY_CRATES: &[&str] = &["predindex", "telemetry", "ruleserv", "durable"];

/// A lock class: the crate that owns the lock and the field ident it
/// is acquired through.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockClass {
    pub krate: String,
    pub ident: String,
}

impl std::fmt::Display for LockClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.krate, self.ident)
    }
}

/// One thing a function does that the lock-order pass must know
/// about, in source order.
#[derive(Debug, Clone)]
pub enum Event {
    /// A guard is acquired: a raw `.lock()`/`.read()`/`.write()` with
    /// empty args, or a call to predindex's `lock_read`/`lock_write`
    /// helpers (which *return* the guard to the caller).
    Lock { class: usize, tok: usize },
    /// A call by name; the callee may transitively acquire locks.
    Call { callee: String, tok: usize },
}

/// One function or closure body in the linted set.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the context slice the model was built from.
    pub file: usize,
    pub krate: String,
    /// The fn name, or `{closure in f}` — only fns are call targets.
    pub name: String,
    pub named: bool,
    pub scope: Scope,
    pub events: Vec<Event>,
}

/// The shape of one atomic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    Load,
    Store,
    /// `fetch_add`, `fetch_sub`, `swap`, `compare_exchange*`, ...
    Rmw,
}

/// One atomic-operation call site.
#[derive(Debug)]
pub struct AtomicSite {
    pub file: usize,
    pub tok: usize,
    pub krate: String,
    /// Receiver field ident — the classification key.
    pub field: String,
    pub op: AtomicOp,
    /// `SeqCst` / `Relaxed` / `Acquire` / `Release` / `AcqRel`.
    pub ordering: String,
    /// `store(true, ..)` / `store(false, ..)` — the flag signature.
    pub stores_bool: bool,
}

/// The whole linted set, digested for the cross-file passes.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    pub classes: Vec<LockClass>,
    pub fns: Vec<FnNode>,
    pub atomics: Vec<AtomicSite>,
}

impl WorkspaceModel {
    pub fn class(&self, id: usize) -> &LockClass {
        &self.classes[id]
    }
}

const ATOMIC_RMW: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

const MEM_ORDERINGS: &[&str] = &["SeqCst", "Relaxed", "Acquire", "Release", "AcqRel"];

/// Call-shaped tokens that are control flow, not calls.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "fn", "move", "else", "impl",
    "where", "use", "pub",
];

/// Builds the model over every context. Only `src/` of the
/// concurrency crates contributes events and atomics; test ranges are
/// skipped everywhere.
pub fn build(ctxs: &[FileContext]) -> WorkspaceModel {
    let mut model = WorkspaceModel::default();
    let mut class_ids: BTreeMap<LockClass, usize> = BTreeMap::new();
    for (file, ctx) in ctxs.iter().enumerate() {
        if ctx.section != Section::Src || !CONCURRENCY_CRATES.contains(&ctx.krate.as_str()) {
            continue;
        }
        // One node per fn body and per closure body, then a map from
        // scope to node for event attribution.
        let mut node_of: BTreeMap<Scope, usize> = BTreeMap::new();
        for (i, f) in ctx.fns.iter().enumerate() {
            if f.body.1 > f.body.0 {
                node_of.insert(Scope::Fn(i), model.fns.len());
                model.fns.push(FnNode {
                    file,
                    krate: ctx.krate.clone(),
                    name: f.name.clone(),
                    named: true,
                    scope: Scope::Fn(i),
                    events: Vec::new(),
                });
            }
        }
        for i in 0..ctx.closures.len() {
            node_of.insert(Scope::Closure(i), model.fns.len());
            model.fns.push(FnNode {
                file,
                krate: ctx.krate.clone(),
                name: ctx.scope_name(Scope::Closure(i)),
                named: false,
                scope: Scope::Closure(i),
                events: Vec::new(),
            });
        }

        for i in ctx.code_tokens() {
            if ctx.in_test(i) {
                continue;
            }
            if let Some(site) = atomic_site(ctx, i, file) {
                model.atomics.push(site);
                continue;
            }
            if let Some(class) = lock_acquisition(ctx, i) {
                let id = *class_ids.entry(class.clone()).or_insert_with(|| {
                    model.classes.push(class);
                    model.classes.len() - 1
                });
                push_event(
                    ctx,
                    &node_of,
                    &mut model,
                    i,
                    Event::Lock { class: id, tok: i },
                );
                continue;
            }
            if let Some(callee) = call_target(ctx, i) {
                push_event(ctx, &node_of, &mut model, i, Event::Call { callee, tok: i });
            }
        }
    }
    model
}

fn push_event(
    ctx: &FileContext,
    node_of: &BTreeMap<Scope, usize>,
    model: &mut WorkspaceModel,
    tok: usize,
    event: Event,
) {
    if let Some(scope) = ctx.enclosing_scope(tok) {
        if let Some(&n) = node_of.get(&scope) {
            model.fns[n].events.push(event);
        }
    }
}

/// Is token `i` a lock acquisition? Returns its class. Raw
/// acquisitions are empty-arg `.lock()`/`.read()`/`.write()` (the
/// arg-taking `io::Read::read(buf)` / `io::Write::write(buf)` never
/// collide); predindex's `lock_read`/`lock_write` helpers count as
/// acquisitions of `predindex.shards` because they return the guard.
fn lock_acquisition(ctx: &FileContext, i: usize) -> Option<LockClass> {
    let t = &ctx.tokens[i];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let text = t.text(&ctx.src);
    let is_method = ctx
        .prev_code(i)
        .is_some_and(|p| ctx.tokens[p].is_punct(&ctx.src, '.'));
    if ctx.krate == "predindex" && is_method && (text == "lock_read" || text == "lock_write") {
        return Some(LockClass {
            krate: ctx.krate.clone(),
            ident: "shards".to_string(),
        });
    }
    if !matches!(text, "lock" | "read" | "write") || !is_method {
        return None;
    }
    // Empty argument list: `(` directly followed by `)`.
    let open = ctx.next_code(i)?;
    if !ctx.tokens[open].is_punct(&ctx.src, '(') {
        return None;
    }
    let close = ctx.next_code(open)?;
    if !ctx.tokens[close].is_punct(&ctx.src, ')') {
        return None;
    }
    let ident = receiver_field(ctx, i)?;
    Some(LockClass {
        krate: ctx.krate.clone(),
        ident,
    })
}

/// The field ident a method call's receiver chain ends in:
/// `self.shards[sid].read()` -> `shards`,
/// `self.inner.ring.lock()` -> `ring`. Balanced `[..]` / `(..)`
/// groups directly before the final `.` are skipped.
fn receiver_field(ctx: &FileContext, call: usize) -> Option<String> {
    let dot = ctx.prev_code(call)?;
    if !ctx.tokens[dot].is_punct(&ctx.src, '.') {
        return None;
    }
    let mut i = ctx.prev_code(dot)?;
    // Skip one balanced bracket/paren group (`[sid]`, `(x)`).
    for (open, close) in [('[', ']'), ('(', ')')] {
        if ctx.tokens[i].is_punct(&ctx.src, close) {
            let mut depth = 0i32;
            loop {
                let t = &ctx.tokens[i];
                if t.is_punct(&ctx.src, close) {
                    depth += 1;
                } else if t.is_punct(&ctx.src, open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i = ctx.prev_code(i)?;
            }
            i = ctx.prev_code(i)?;
        }
    }
    let t = &ctx.tokens[i];
    (t.kind == TokenKind::Ident).then(|| t.text(&ctx.src).to_string())
}

/// Is token `i` an atomic operation with an explicit `Ordering`?
fn atomic_site(ctx: &FileContext, i: usize, file: usize) -> Option<AtomicSite> {
    let t = &ctx.tokens[i];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let text = t.text(&ctx.src);
    let op = if text == "load" {
        AtomicOp::Load
    } else if text == "store" {
        AtomicOp::Store
    } else if ATOMIC_RMW.contains(&text) {
        AtomicOp::Rmw
    } else {
        return None;
    };
    let open = ctx.next_code(i)?;
    if !ctx.tokens[open].is_punct(&ctx.src, '(') {
        return None;
    }
    // Scan the argument list for a memory-ordering ident; its
    // presence is what distinguishes `AtomicU64::load` from any other
    // method that happens to be called `load`.
    let mut ordering = None;
    let mut stores_bool = false;
    let mut depth = 0i32;
    let mut j = open;
    let mut first_arg = true;
    while j < ctx.tokens.len() {
        let t = &ctx.tokens[j];
        if t.is_punct(&ctx.src, '(') {
            depth += 1;
        } else if t.is_punct(&ctx.src, ')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokenKind::Ident {
            let w = t.text(&ctx.src);
            if MEM_ORDERINGS.contains(&w) && ordering.is_none() {
                ordering = Some(w.to_string());
            }
            if first_arg && depth == 1 && (w == "true" || w == "false") {
                stores_bool = op == AtomicOp::Store;
            }
            if depth == 1 {
                first_arg = false;
            }
        }
        j += 1;
    }
    let ordering = ordering?;
    let field = receiver_field(ctx, i).unwrap_or_else(|| "?".to_string());
    Some(AtomicSite {
        file,
        tok: i,
        krate: ctx.krate.clone(),
        field,
        op,
        ordering,
        stores_bool,
    })
}

/// Is token `i` a call by name (`f(..)`, `recv.f(..)`, `T::f(..)`)?
/// Definitions (`fn f(`), keywords, and macros (`f!(`) are not calls.
fn call_target(ctx: &FileContext, i: usize) -> Option<String> {
    let t = &ctx.tokens[i];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let text = t.text(&ctx.src);
    if KEYWORDS.contains(&text) {
        return None;
    }
    let next = ctx.next_code(i)?;
    if !ctx.tokens[next].is_punct(&ctx.src, '(') {
        return None;
    }
    if let Some(p) = ctx.prev_code(i) {
        if ctx.tokens[p].is_ident(&ctx.src, "fn") {
            return None;
        }
    }
    Some(text.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn model_of(src: &str) -> WorkspaceModel {
        let ctx = FileContext::new(Path::new("crates/telemetry/src/x.rs"), src.to_string());
        build(std::slice::from_ref(&ctx))
    }

    #[test]
    fn lock_and_call_events_in_order() {
        let m = model_of(
            "fn f(&self) { let g = self.inner.ring.lock(); self.render(); }\n\
             fn render(&self) { let m = self.metrics.lock(); }\n",
        );
        let f = &m.fns[0];
        assert_eq!(f.name, "f");
        assert!(matches!(f.events[0], Event::Lock { .. }));
        assert!(matches!(f.events[1], Event::Call { ref callee, .. } if callee == "render"));
        let render = &m.fns[1];
        assert!(matches!(render.events[0], Event::Lock { .. }));
        assert_eq!(m.classes.len(), 2);
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let m = model_of("fn f(r: &mut impl std::io::Read) { r.read(&mut buf); }\n");
        assert!(m.classes.is_empty());
    }

    #[test]
    fn closure_events_stay_out_of_the_fn() {
        let m = model_of(
            "fn f(&self) { std::thread::scope(|s| { s.spawn(move || { let g = self.ring.lock(); }); }); }\n",
        );
        let f = m.fns.iter().find(|n| n.name == "f").expect("fn node");
        assert!(
            !f.events.iter().any(|e| matches!(e, Event::Lock { .. })),
            "{:?}",
            f.events
        );
        let total_locks: usize = m
            .fns
            .iter()
            .flat_map(|n| &n.events)
            .filter(|e| matches!(e, Event::Lock { .. }))
            .count();
        assert_eq!(total_locks, 1);
    }

    #[test]
    fn atomic_sites_classify_ops_and_orderings() {
        let m = model_of(
            "fn f(&self) { self.stop.store(true, Ordering::SeqCst); \
             let n = self.hits.fetch_add(1, Ordering::Relaxed); \
             let v = self.stop.load(Ordering::SeqCst); }\n",
        );
        assert_eq!(m.atomics.len(), 3);
        assert_eq!(m.atomics[0].field, "stop");
        assert_eq!(m.atomics[0].op, AtomicOp::Store);
        assert!(m.atomics[0].stores_bool);
        assert_eq!(m.atomics[0].ordering, "SeqCst");
        assert_eq!(m.atomics[1].op, AtomicOp::Rmw);
        assert_eq!(m.atomics[1].ordering, "Relaxed");
        assert_eq!(m.atomics[2].op, AtomicOp::Load);
    }

    #[test]
    fn helper_calls_are_shard_acquisitions() {
        let ctx = FileContext::new(
            Path::new("crates/predindex/src/x.rs"),
            "fn f(&self) { let g = self.lock_read(0); }\n".to_string(),
        );
        let m = build(std::slice::from_ref(&ctx));
        assert_eq!(m.classes.len(), 1);
        assert_eq!(m.classes[0].ident, "shards");
    }
}
