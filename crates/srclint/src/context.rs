//! Per-file analysis context shared by every lint: the token stream,
//! which crate/section the file belongs to, which token ranges are
//! test-only (`#[cfg(test)]` / `#[test]` items), where each `fn` body
//! begins and ends, and which lines carry `srclint:allow(...)`
//! suppressions.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Which part of a crate a file lives in. Lints use this to scope
/// themselves: library invariants apply to `Src`, not to test or
/// bench code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    Src,
    Tests,
    Benches,
    Examples,
    Other,
}

/// A function span: name plus the token-index range of its body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token-index range `[body_start, body_end)` of the braced body,
    /// including the braces themselves. Zero-length for bodyless fns
    /// (trait methods, extern decls).
    pub body: (usize, usize),
}

/// Everything a lint needs to know about one file.
pub struct FileContext {
    pub path: PathBuf,
    pub src: String,
    pub tokens: Vec<Token>,
    /// Crate the file belongs to (`predindex`, ...); the root package
    /// is `predmatch`; files outside any crate get the empty string.
    pub krate: String,
    pub section: Section,
    /// Token-index ranges belonging to `#[cfg(test)]` / `#[test]`
    /// items — exempt from library-path lints.
    test_ranges: Vec<(usize, usize)>,
    /// All fn spans, in source order.
    pub fns: Vec<FnSpan>,
    /// Token-index ranges of closure bodies (`|..| { .. }` and
    /// `|..| expr`), in source order. A closure is its own scope:
    /// code inside one — a `thread::scope` spawn, say — runs on its
    /// own schedule and must not be attributed to the enclosing fn.
    pub closures: Vec<(usize, usize)>,
    /// line -> lints allowed on that line (an allow comment covers its
    /// own line and the next).
    allows: BTreeMap<u32, BTreeSet<String>>,
}

/// A scope a token belongs to: either a named `fn` body or an
/// anonymous closure body. Lints that count per-scope facts (lock
/// acquisitions, most prominently) key on this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Index into [`FileContext::fns`].
    Fn(usize),
    /// Index into [`FileContext::closures`].
    Closure(usize),
}

impl FileContext {
    /// Builds the context for `src` at `path`. Crate and section are
    /// inferred from the path unless the file opens with an explicit
    /// `// srclint-fixture: crate=<name> section=<sec>` directive
    /// (how the fixture corpus poses as real workspace files).
    pub fn new(path: &Path, src: String) -> FileContext {
        let tokens = lex(&src);
        let (mut krate, mut section) = classify(path);
        if let Some((k, s)) = fixture_directive(&src) {
            krate = k;
            section = s;
        }
        let test_ranges = find_test_ranges(&src, &tokens);
        let fns = find_fns(&src, &tokens);
        let closures = find_closures(&src, &tokens);
        let allows = find_allows(&src, &tokens);
        FileContext {
            path: path.to_path_buf(),
            src,
            tokens,
            krate,
            section,
            test_ranges,
            fns,
            closures,
            allows,
        }
    }

    /// Is token `i` inside a test-only item?
    pub fn in_test(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(a, b)| i >= a && i < b)
    }

    /// Is `lint` suppressed at `line` by an allow comment on that
    /// line or the line above?
    pub fn is_allowed(&self, lint: &str, line: u32) -> bool {
        self.allows
            .get(&line)
            .is_some_and(|s| s.contains(lint) || s.contains("all"))
    }

    /// The innermost fn whose body contains token `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| i >= f.body.0 && i < f.body.1)
            .min_by_key(|f| f.body.1 - f.body.0)
    }

    /// The innermost scope — fn body or closure body — containing
    /// token `i`. A closure nested in a fn wins over the fn.
    pub fn enclosing_scope(&self, i: usize) -> Option<Scope> {
        let fn_ix = self
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| i >= f.body.0 && i < f.body.1)
            .min_by_key(|(_, f)| f.body.1 - f.body.0);
        let cl_ix = self
            .closures
            .iter()
            .enumerate()
            .filter(|(_, &(a, b))| i >= a && i < b)
            .min_by_key(|(_, &(a, b))| b - a);
        match (fn_ix, cl_ix) {
            (Some((fi, f)), Some((ci, &(a, b)))) => {
                if b - a < f.body.1 - f.body.0 {
                    Some(Scope::Closure(ci))
                } else {
                    Some(Scope::Fn(fi))
                }
            }
            (Some((fi, _)), None) => Some(Scope::Fn(fi)),
            (None, Some((ci, _))) => Some(Scope::Closure(ci)),
            (None, None) => None,
        }
    }

    /// Token range of a scope's body.
    pub fn scope_body(&self, s: Scope) -> (usize, usize) {
        match s {
            Scope::Fn(i) => self.fns[i].body,
            Scope::Closure(i) => self.closures[i],
        }
    }

    /// Human-readable name for a scope: the fn name, or
    /// `{closure in <fn>}` for closures.
    pub fn scope_name(&self, s: Scope) -> String {
        match s {
            Scope::Fn(i) => self.fns[i].name.clone(),
            Scope::Closure(i) => {
                let start = self.closures[i].0;
                match self.enclosing_fn(start) {
                    Some(f) => format!("{{closure in {}}}", f.name),
                    None => "{closure}".to_string(),
                }
            }
        }
    }

    /// How many `srclint:allow` suppression comments the file carries
    /// (one per comment token mentioning the marker, however many
    /// lints it names).
    pub fn suppression_count(&self) -> usize {
        self.tokens
            .iter()
            .filter(|t| t.is_comment() && t.text(&self.src).contains("srclint:allow("))
            .count()
    }

    /// Iterator over code-token indices (comments skipped).
    pub fn code_tokens(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.tokens.len()).filter(|&i| !self.tokens[i].is_comment())
    }

    /// The previous code token before `i`, if any.
    pub fn prev_code(&self, i: usize) -> Option<usize> {
        (0..i).rev().find(|&j| !self.tokens[j].is_comment())
    }

    /// The next code token after `i`, if any.
    pub fn next_code(&self, i: usize) -> Option<usize> {
        (i + 1..self.tokens.len()).find(|&j| !self.tokens[j].is_comment())
    }
}

/// Infers `(crate, section)` from a workspace-relative or absolute
/// path: `crates/<name>/<section>/...`, with the repository root's
/// own `src`/`tests` belonging to the root package.
fn classify(path: &Path) -> (String, Section) {
    let comps: Vec<&str> = path.iter().filter_map(|c| c.to_str()).collect();
    for (i, c) in comps.iter().enumerate() {
        if *c == "crates" && i + 2 < comps.len() {
            let krate = comps[i + 1].to_string();
            let section = match comps[i + 2] {
                "src" => Section::Src,
                "tests" => Section::Tests,
                "benches" => Section::Benches,
                "examples" => Section::Examples,
                _ => Section::Other,
            };
            return (krate, section);
        }
    }
    // Root package layout: src/, tests/, examples/ directly under the
    // workspace root.
    for (i, c) in comps.iter().enumerate() {
        let section = match *c {
            "src" => Section::Src,
            "tests" => Section::Tests,
            "benches" => Section::Benches,
            "examples" => Section::Examples,
            _ => continue,
        };
        if i + 1 < comps.len() {
            return ("predmatch".to_string(), section);
        }
    }
    (String::new(), Section::Other)
}

/// Parses the fixture header `// srclint-fixture: crate=x section=src`
/// from the first line of the file.
fn fixture_directive(src: &str) -> Option<(String, Section)> {
    let first = src.lines().next()?;
    let rest = first.trim().strip_prefix("// srclint-fixture:")?;
    let mut krate = String::new();
    let mut section = Section::Src;
    for part in rest.split_whitespace() {
        if let Some(v) = part.strip_prefix("crate=") {
            krate = v.to_string();
        } else if let Some(v) = part.strip_prefix("section=") {
            section = match v {
                "src" => Section::Src,
                "tests" => Section::Tests,
                "benches" => Section::Benches,
                "examples" => Section::Examples,
                _ => Section::Other,
            };
        }
    }
    Some((krate, section))
}

/// Finds token ranges covered by test-only items: an outer attribute
/// containing the ident `test` (and not `not`, so `#[cfg(not(test))]`
/// stays live code) followed by an item, covered to the item's end —
/// the matching `}` of its first body brace, or a `;` for bodyless
/// items.
fn find_test_ranges(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct(src, '#') && next_is(src, tokens, i, '[') {
            let attr_start = i;
            let (has_test, has_not, after_attr) = scan_attr(src, tokens, i);
            if has_test && !has_not {
                let end = item_end(src, tokens, after_attr);
                out.push((attr_start, end));
                i = end;
                continue;
            }
            i = after_attr;
            continue;
        }
        i += 1;
    }
    out
}

fn next_is(src: &str, tokens: &[Token], i: usize, p: char) -> bool {
    tokens.get(i + 1).is_some_and(|t| t.is_punct(src, p))
}

/// Scans an attribute starting at the `#` token; returns whether it
/// mentions `test`, whether it mentions `not`, and the index just
/// past the closing `]`.
fn scan_attr(src: &str, tokens: &[Token], hash: usize) -> (bool, bool, usize) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut i = hash + 1;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct(src, '[') {
            depth += 1;
        } else if t.is_punct(src, ']') {
            depth -= 1;
            if depth == 0 {
                return (has_test, has_not, i + 1);
            }
        } else if t.kind == TokenKind::Ident {
            match t.text(src) {
                "test" => has_test = true,
                "not" => has_not = true,
                _ => {}
            }
        }
        i += 1;
    }
    (has_test, has_not, i)
}

/// From the first token of an item (past its attributes), the token
/// index just after the item ends. Skips any further attributes, then
/// runs to the matching `}` of the first open brace — or to a `;`
/// seen before any brace (e.g. `#[cfg(test)] use helpers;`).
fn item_end(src: &str, tokens: &[Token], mut i: usize) -> usize {
    // Skip stacked attributes (`#[cfg(test)] #[allow(...)] mod t {}`).
    while i < tokens.len() && tokens[i].is_punct(src, '#') && next_is(src, tokens, i, '[') {
        let (_, _, after) = scan_attr(src, tokens, i);
        i = after;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct(src, '{') {
            depth += 1;
        } else if t.is_punct(src, '}') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(src, ';') && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Records every `fn` with its braced body range. Body detection is
/// deliberately simple: the first `{` after the `fn` keyword at zero
/// paren/bracket nesting opens the body. (Const-generic braces in
/// signatures would fool this; the workspace has none.)
fn find_fns(src: &str, tokens: &[Token]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident(src, "fn") {
            // Name is the next code token (comments can intervene).
            let name_ix = (i + 1..tokens.len()).find(|&j| !tokens[j].is_comment());
            let name = match name_ix {
                Some(j) if tokens[j].kind == TokenKind::Ident => tokens[j].text(src).to_string(),
                _ => {
                    i += 1;
                    continue;
                }
            };
            let fn_tok = i;
            let mut paren = 0i32;
            let mut bracket = 0i32;
            let mut j = name_ix.unwrap_or(i) + 1;
            let mut body = (0usize, 0usize);
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct(src, '(') {
                    paren += 1;
                } else if t.is_punct(src, ')') {
                    paren -= 1;
                } else if t.is_punct(src, '[') {
                    bracket += 1;
                } else if t.is_punct(src, ']') {
                    bracket -= 1;
                } else if t.is_punct(src, ';') && paren == 0 && bracket == 0 {
                    // Bodyless: trait method signature or extern decl.
                    break;
                } else if t.is_punct(src, '{') && paren == 0 && bracket == 0 {
                    let mut depth = 0i32;
                    let start = j;
                    while j < tokens.len() {
                        if tokens[j].is_punct(src, '{') {
                            depth += 1;
                        } else if tokens[j].is_punct(src, '}') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j += 1;
                    }
                    body = (start, (j + 1).min(tokens.len()));
                    break;
                }
                j += 1;
            }
            out.push(FnSpan { name, fn_tok, body });
            // Continue from just inside the body so nested fns are
            // found too.
            i = body.0.max(fn_tok) + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Records closure bodies. A `|` opens a closure's parameter list
/// when the previous code token is `move`, `(`, `,`, or `=` — the
/// positions where an expression (and therefore a closure literal)
/// begins and bitwise-or cannot. Params run to the matching `|` on
/// the same statement; the body is the braced block after it, or,
/// for expression-bodied closures (`move || self.work(x)`), the
/// token run up to the `,`/`)`/`;` that ends the expression. Or-
/// patterns inside closure params would fool the param scan; the
/// workspace has none.
fn find_closures(src: &str, tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_punct(src, '|') {
            i += 1;
            continue;
        }
        let prev = (0..i).rev().find(|&j| !tokens[j].is_comment());
        let opens = match prev {
            None => true,
            Some(p) => {
                let t = &tokens[p];
                t.is_ident(src, "move")
                    || t.is_punct(src, '(')
                    || t.is_punct(src, ',')
                    || t.is_punct(src, '=')
            }
        };
        if !opens {
            i += 1;
            continue;
        }
        // Find the closing `|` of the parameter list; give up at
        // statement boundaries (then it was a bitwise-or after all).
        let mut close = None;
        for (j, t) in tokens
            .iter()
            .enumerate()
            .take(tokens.len().min(i + 40))
            .skip(i + 1)
        {
            if t.is_punct(src, '|') {
                close = Some(j);
                break;
            }
            if t.is_punct(src, ';') || t.is_punct(src, '{') || t.is_punct(src, '}') {
                break;
            }
        }
        let Some(close) = close else {
            i += 1;
            continue;
        };
        // Body start: past an optional `-> Type` return annotation.
        let mut b = close + 1;
        while b < tokens.len() && tokens[b].is_comment() {
            b += 1;
        }
        if b + 1 < tokens.len() && tokens[b].is_punct(src, '-') && tokens[b + 1].is_punct(src, '>')
        {
            while b < tokens.len() && !tokens[b].is_punct(src, '{') {
                b += 1;
            }
        }
        if b >= tokens.len() {
            i = close + 1;
            continue;
        }
        let end = if tokens[b].is_punct(src, '{') {
            // Braced body: to the matching `}`.
            let mut depth = 0i32;
            let mut j = b;
            while j < tokens.len() {
                if tokens[j].is_punct(src, '{') {
                    depth += 1;
                } else if tokens[j].is_punct(src, '}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            (j + 1).min(tokens.len())
        } else {
            // Expression body: to the `,`, `;`, or unbalanced closer
            // that ends the expression.
            let mut depth = 0i32;
            let mut j = b;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct(src, '(') || t.is_punct(src, '[') || t.is_punct(src, '{') {
                    depth += 1;
                } else if t.is_punct(src, ')') || t.is_punct(src, ']') || t.is_punct(src, '}') {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                } else if depth == 0 && (t.is_punct(src, ',') || t.is_punct(src, ';')) {
                    break;
                }
                j += 1;
            }
            j.min(tokens.len())
        };
        out.push((b, end));
        i = close + 1;
    }
    out
}

/// Collects `srclint:allow(a, b)` comments into a line -> lints map.
/// An allow on line L covers L (trailing form) and L+1 (preceding
/// form).
fn find_allows(src: &str, tokens: &[Token]) -> BTreeMap<u32, BTreeSet<String>> {
    let mut out: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let text = t.text(src);
        let mut rest = text;
        while let Some(at) = rest.find("srclint:allow(") {
            rest = &rest[at + "srclint:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            for name in rest[..close].split(',') {
                let name = name.trim().to_string();
                if name.is_empty() {
                    continue;
                }
                out.entry(t.line).or_default().insert(name.clone());
                out.entry(t.line + 1).or_default().insert(name);
            }
            rest = &rest[close..];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileContext {
        FileContext::new(Path::new("crates/demo/src/lib.rs"), src.to_string())
    }

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify(Path::new("crates/predindex/src/sharded.rs")),
            ("predindex".to_string(), Section::Src)
        );
        assert_eq!(
            classify(Path::new("/abs/repo/crates/ibs/tests/prop.rs")).1,
            Section::Tests
        );
        assert_eq!(
            classify(Path::new("tests/end_to_end.rs")),
            ("predmatch".to_string(), Section::Tests)
        );
    }

    #[test]
    fn test_mod_ranges_cover_bodies() {
        let c = ctx(
            "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn t() { y.unwrap(); }\n}\n",
        );
        let unwraps: Vec<usize> = c
            .code_tokens()
            .filter(|&i| c.tokens[i].is_ident(&c.src, "unwrap"))
            .collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!c.in_test(unwraps[0]));
        assert!(c.in_test(unwraps[1]));
    }

    #[test]
    fn cfg_not_test_is_live() {
        let c = ctx("#[cfg(not(test))]\nfn live() { x.unwrap(); }\n");
        let i = c
            .code_tokens()
            .find(|&i| c.tokens[i].is_ident(&c.src, "unwrap"))
            .expect("token");
        assert!(!c.in_test(i));
    }

    #[test]
    fn fn_spans_and_nesting() {
        let c = ctx("fn outer() { if x { fn inner() { b(); } } }\nfn flat() {}\n");
        let names: Vec<&str> = c.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "flat"]);
        let b_ix = c
            .code_tokens()
            .find(|&i| c.tokens[i].is_ident(&c.src, "b"))
            .expect("token");
        assert_eq!(c.enclosing_fn(b_ix).map(|f| f.name.as_str()), Some("inner"));
    }

    #[test]
    fn allow_covers_own_and_next_line() {
        let c = ctx("// srclint:allow(no-panic-in-lib): fine here\nfn f() { x.unwrap(); }\nfn g() { y.unwrap(); }\n");
        assert!(c.is_allowed("no-panic-in-lib", 1));
        assert!(c.is_allowed("no-panic-in-lib", 2));
        assert!(!c.is_allowed("no-panic-in-lib", 3));
        assert!(!c.is_allowed("safety-comment", 2));
    }

    #[test]
    fn fixture_directive_overrides_path() {
        let c = FileContext::new(
            Path::new("crates/srclint/tests/fixtures/x.rs"),
            "// srclint-fixture: crate=predindex section=src\nfn f() {}\n".to_string(),
        );
        assert_eq!(c.krate, "predindex");
        assert_eq!(c.section, Section::Src);
    }

    #[test]
    fn bodyless_fn_has_empty_body() {
        let c = ctx("trait T { fn sig(&self); fn has_body(&self) { self.sig() } }");
        assert_eq!(c.fns[0].name, "sig");
        assert_eq!(c.fns[0].body, (0, 0));
        assert_eq!(c.fns[1].name, "has_body");
        assert!(c.fns[1].body.1 > c.fns[1].body.0);
    }

    #[test]
    fn spawn_closures_are_found_and_own_their_tokens() {
        let c = ctx(
            "fn outer(s: &S) { let a = go(); s.spawn(move || { let b = work(); }); let d = tail(); }",
        );
        assert_eq!(c.closures.len(), 1, "{:?}", c.closures);
        let b_ix = c
            .code_tokens()
            .find(|&i| c.tokens[i].is_ident(&c.src, "b"))
            .expect("b token");
        let a_ix = c
            .code_tokens()
            .find(|&i| c.tokens[i].is_ident(&c.src, "a"))
            .expect("a token");
        // `b` belongs to the closure, `a` to the fn — and the closure
        // scope wins over the enclosing fn for its own tokens.
        assert_eq!(c.enclosing_scope(b_ix), Some(Scope::Closure(0)));
        assert_eq!(c.enclosing_scope(a_ix), Some(Scope::Fn(0)));
        assert_eq!(c.scope_name(Scope::Closure(0)), "{closure in outer}");
    }

    #[test]
    fn or_operators_are_not_closures() {
        let c =
            ctx("fn f(a: bool, b: bool) -> bool { let x = a | b; if a || b { true } else { x } }");
        assert!(c.closures.is_empty(), "{:?}", c.closures);
    }

    #[test]
    fn expression_bodied_closure_ends_at_comma() {
        let c = ctx("fn f(v: Vec<i32>) { v.iter().map(|x| x + 1, ); let y = after(); }");
        assert_eq!(c.closures.len(), 1);
        let y_ix = c
            .code_tokens()
            .find(|&i| c.tokens[i].is_ident(&c.src, "y"))
            .expect("y token");
        assert_eq!(c.enclosing_scope(y_ix), Some(Scope::Fn(0)));
    }

    #[test]
    fn suppression_count_counts_allow_comments() {
        let c = ctx(
            "// srclint:allow(no-panic-in-lib): one\nfn f() {}\n// srclint:allow(lock-discipline, lock-order): two lints, one comment\nfn g() {}\n// plain comment\n",
        );
        assert_eq!(c.suppression_count(), 2);
    }
}
