// srclint-fixture: crate=telemetry section=src
// A fixture, not compiled: nested acquisitions that follow DESIGN.md
// §18's canonical order (accounts=3 < names=4 < metrics=6), plus the
// blessed sequential-guard escape hatch.

struct S {
    accounts: std::sync::Mutex<i32>,
    names: std::sync::Mutex<i32>,
    metrics: std::sync::Mutex<i32>,
}

impl S {
    fn descending_ranks(&self) {
        let _a = self.accounts.lock();
        let _n = self.names.lock();
        let _m = self.metrics.lock();
    }

    fn mint(&self) {
        let _n = self.names.lock();
        let _m = self.metrics.lock();
    }

    fn transitive_in_order(&self) {
        let _a = self.accounts.lock();
        self.mint(); // names then metrics, both above accounts
    }

    fn sequential_probe_then_mint(&self) {
        {
            let _probe = self.metrics.lock();
        }
        // The probe guard above is already dropped; the analysis
        // cannot see that, so the site declares it.
        // srclint:allow(lock-order): strictly sequential — the probe guard is dropped at its block end
        let _again = self.metrics.lock();
    }
}
