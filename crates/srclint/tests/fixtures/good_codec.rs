// srclint-fixture: crate=durable section=src
// A fixture, not compiled: a fully-covered mini `Record` — encode
// arm, decode arm, tag constant, and a DESIGN.md §14 row that agrees
// (`Insert` is 4 in the real table).

pub enum Record {
    Insert(u8),
}

const TAG_INSERT: u8 = 4;

fn encode(r: &Record) -> u8 {
    match r {
        Record::Insert(_) => TAG_INSERT,
    }
}

fn decode_prefix(tag: u8) -> Option<Record> {
    match tag {
        TAG_INSERT => Some(Record::Insert(0)),
        _ => None,
    }
}
