// srclint-fixture: crate=predicate section=src
// A fixture, not compiled: panicking calls in a library path.

fn first(v: &[i32]) -> i32 {
    *v.first().unwrap()
}

fn named(v: &[i32]) -> i32 {
    *v.first().expect("non-empty")
}

fn dispatch(x: u8) -> u8 {
    match x {
        0 => 1,
        _ => unreachable!("caller filtered"),
    }
}

fn not_done() {
    todo!()
}

fn chain(v: Option<Option<i32>>) -> i32 {
    // An allow comment placed too far up: it covers its own line and
    // the next, but the offending call sits two lines below it.
    // srclint:allow(no-panic-in-lib): misplaced — does not reach the expect below
    v.flatten()
        .map(|x| x + 1)
        .expect("still flagged")
}
