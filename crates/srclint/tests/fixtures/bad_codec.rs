// srclint-fixture: crate=durable section=src
// A fixture, not compiled: codec-conformance gaps on a mini `Record`.
// `Insert` is fully covered (and its tag agrees with DESIGN.md §14);
// `Ghost` is a grown variant nobody wired up; `Update`'s tag
// disagrees with the documented value.

pub enum Record {
    Insert(u8),
    Update(u8),
    Ghost(u8),
}

const TAG_INSERT: u8 = 4;
const TAG_UPDATE: u8 = 9; // DESIGN.md documents 5

fn encode(r: &Record) -> u8 {
    // Not compiled, so the missing `Ghost` arm is fine here — that
    // absence is exactly what the lint must catch.
    match r {
        Record::Insert(_) => TAG_INSERT,
        Record::Update(_) => TAG_UPDATE,
    }
}

fn decode_prefix(tag: u8) -> Option<Record> {
    match tag {
        TAG_INSERT => Some(Record::Insert(0)),
        TAG_UPDATE => Some(Record::Update(0)),
        _ => None,
    }
}
