// srclint-fixture: crate=telemetry section=src
// A fixture, not compiled: every atomic-ordering finding shape. The
// classifier sees all sites of a field at once, so each struct field
// below earns its class from its own usage.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct S {
    hits: AtomicU64,  // counter: all writes are RMW
    stop: AtomicBool, // flag: stores a bool literal
    head: AtomicU64,  // publication: plain store, loaded elsewhere
}

impl S {
    fn count(&self) {
        self.hits.fetch_add(1, Ordering::SeqCst); // fence tax on a counter
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst); // flag needs Relaxed (or Release)
    }

    fn poll(&self) -> bool {
        self.stop.load(Ordering::SeqCst) // same, load side
    }

    fn publish(&self, v: u64) {
        self.head.store(v, Ordering::Relaxed); // publication with no edge
    }

    fn read_head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }
}
