// srclint-fixture: crate=telemetry section=src
// A fixture, not compiled: every way a metric name can go wrong.

fn mint(registry: &telemetry::Registry, shard: usize) {
    // Counter family not ending in _total.
    let _ = registry.counter("rules_fired");
    // CamelCase violates the grammar.
    let _ = registry.counter("RulesFired_total");
    // Interpolation inside the family part of the name.
    let _ = registry.counter(&format!("predindex_{shard}_total"));
    // Not a literal at all.
    let name = String::from("rules_fired_total");
    let _ = registry.counter(&name);
    // Conforming but absent from DESIGN.md's table.
    let _ = registry.counter("predindex_never_registered_total");
}
