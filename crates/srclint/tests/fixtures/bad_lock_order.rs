// srclint-fixture: crate=telemetry section=src
// A fixture, not compiled: lock-order violations. Ranks come from
// DESIGN.md §18's canonical table — `accounts` is rank 3, `names`
// rank 4, `metrics` rank 6 — so everything below runs backwards or
// sideways.

struct S {
    accounts: std::sync::Mutex<i32>,
    names: std::sync::Mutex<i32>,
    metrics: std::sync::Mutex<i32>,
    zebra: std::sync::Mutex<i32>,
}

impl S {
    fn backwards(&self) {
        let _m = self.metrics.lock();
        let _a = self.accounts.lock(); // rank 6 held, rank 3 acquired
    }

    fn reacquire(&self) {
        let _one = self.metrics.lock();
        let _two = self.metrics.lock(); // self-deadlock with std Mutex
    }

    fn unranked(&self) {
        let _m = self.accounts.lock();
        let _z = self.zebra.lock(); // `zebra` is in no table row
    }

    fn grab_names(&self) {
        let _n = self.names.lock();
    }

    fn transitive_backwards(&self) {
        let _m = self.metrics.lock();
        self.grab_names(); // locks `names` (rank 4) while `metrics` (6) held
    }
}
