// srclint-fixture: crate=predindex section=src
// A fixture, not compiled: raw shard-lock acquisition and multiple
// guards live in one fn.

struct M {
    shards: Vec<std::sync::RwLock<i32>>,
}

impl M {
    fn lock_read(&self, sid: usize) -> std::sync::RwLockReadGuard<'_, i32> {
        // srclint:allow(no-panic-in-lib): fixture helper mirrors the real one
        self.shards[sid].read().expect("poisoned")
    }

    fn raw_acquisition(&self, sid: usize) -> i32 {
        // srclint:allow(no-panic-in-lib): fixture isolates the lock-discipline finding
        *self.shards[sid].read().expect("poisoned")
    }

    fn two_guards(&self, a: usize, b: usize) -> i32 {
        let ga = self.lock_read(a);
        let gb = self.lock_read(b);
        *ga + *gb
    }
}
