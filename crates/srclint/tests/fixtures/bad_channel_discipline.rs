// srclint-fixture: crate=ruleserv section=src
// A fixture, not compiled: unbounded channels in server paths.

use std::sync::mpsc;

fn plain_unbounded() {
    let (_tx, _rx) = mpsc::channel::<u8>();
}

fn turbofish_free_unbounded() {
    let (_tx, _rx): (mpsc::Sender<u8>, mpsc::Receiver<u8>) = mpsc::channel();
}
