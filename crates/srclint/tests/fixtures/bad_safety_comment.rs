// srclint-fixture: crate=ibs section=src
// A fixture, not compiled: `unsafe` with no SAFETY comment anywhere
// near it must be flagged — including inside test code, which gets no
// pass on memory safety.

fn read_first(v: &[u8]) -> u8 {
    // The comment above the block talks about something unrelated.
    unsafe { *v.get_unchecked(0) }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unsafe_in_tests_is_still_checked() {
        let v = [1u8];
        let _ = unsafe { *v.as_ptr() };
    }
}
