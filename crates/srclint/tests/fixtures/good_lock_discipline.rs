// srclint-fixture: crate=predindex section=src
// A fixture, not compiled: the blessed patterns — helpers own the raw
// acquisition, callers take one guard per fn, and the ordered batch
// path declares itself.

struct M {
    shards: Vec<std::sync::RwLock<i32>>,
}

impl M {
    fn lock_read(&self, sid: usize) -> std::sync::RwLockReadGuard<'_, i32> {
        // srclint:allow(no-panic-in-lib): poisoned shard lock means a writer panicked
        self.shards[sid].read().expect("poisoned")
    }

    fn lock_write(&self, sid: usize) -> std::sync::RwLockWriteGuard<'_, i32> {
        // srclint:allow(no-panic-in-lib): poisoned shard lock means a writer panicked
        self.shards[sid].write().expect("poisoned")
    }

    fn one_guard(&self, sid: usize) -> i32 {
        *self.lock_read(sid)
    }

    fn ordered_batch(&self, sids: &[usize]) -> i32 {
        let mut total = 0;
        let first = self.lock_read(0);
        for &sid in sids {
            // srclint:allow(lock-discipline, lock-order): this is the ordered batch-acquisition path — sids are sorted ascending
            total += *self.lock_write(sid);
        }
        total + *first
    }

    fn other_rwlocks_are_out_of_scope(cache: &std::sync::RwLock<i32>) -> i32 {
        // srclint:allow(no-panic-in-lib): fixture
        *cache.read().expect("not a shard lock")
    }

    // The `match_batch` shape: the enclosing fn takes one guard, and
    // each scoped-thread closure takes its own. The closure bodies
    // run on their own schedule, so their acquisitions must not be
    // attributed to (or counted against) the enclosing fn.
    fn match_batch_threads(&self, chunks: &[usize]) -> i32 {
        let total = *self.lock_read(0);
        std::thread::scope(|s| {
            for &sid in chunks {
                s.spawn(move || {
                    let _guard = self.lock_read(sid);
                });
            }
        });
        total
    }
}
