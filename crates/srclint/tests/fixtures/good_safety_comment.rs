// srclint-fixture: crate=ibs section=src
// A fixture, not compiled: every accepted placement of the SAFETY
// justification.

fn single_line(v: &[u8]) -> u8 {
    // SAFETY: caller guarantees `v` is non-empty.
    unsafe { *v.get_unchecked(0) }
}

fn multi_line_block(v: &[u8]) -> u8 {
    // SAFETY: the id came off a live tree link, and links only ever
    // point at in-bounds, occupied slots — dealloc unlinks before
    // freeing, so the slot cannot have been recycled under us.
    unsafe { *v.get_unchecked(0) }
}

fn opener_lines_up_the_block(v: &[u8]) -> u8 {
    // A leading remark,
    // then the SAFETY: marker on a later line of the same comment
    // block, still counts — the block is read as a unit.
    unsafe { *v.get_unchecked(0) }
}

fn trailing(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) } // SAFETY: bounds checked by caller.
}

/// Docs for an unsafe fn use the rustdoc convention instead.
///
/// # Safety
///
/// `p` must be valid for reads.
unsafe fn deref(p: *const u8) -> u8 {
    // SAFETY: forwarded contract — `p` is valid per this fn's docs.
    unsafe { *p }
}
