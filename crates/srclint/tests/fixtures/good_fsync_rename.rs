// srclint-fixture: crate=durable section=src
// A fixture, not compiled: write → sync → rename, the only order that
// survives a crash.

use std::fs;
use std::io;
use std::path::Path;

fn publish(tmp: &Path, dst: &Path, body: &[u8]) -> io::Result<()> {
    let mut f = fs::File::create(tmp)?;
    io::Write::write_all(&mut f, body)?;
    f.sync_all()?;
    fs::rename(tmp, dst)
}

fn publish_data_only(tmp: &Path, dst: &Path, body: &[u8]) -> io::Result<()> {
    let mut f = fs::File::create(tmp)?;
    io::Write::write_all(&mut f, body)?;
    f.sync_data()?;
    fs::rename(tmp, dst)
}

fn no_rename_no_rule(tmp: &Path, body: &[u8]) -> io::Result<()> {
    fs::write(tmp, body)
}
