// srclint-fixture: crate=durable section=src
// A fixture, not compiled: publishing a file that was never synced.

use std::fs;
use std::io;
use std::path::Path;

fn publish_unsynced(tmp: &Path, dst: &Path) -> io::Result<()> {
    fs::write(tmp, b"snapshot body")?;
    fs::rename(tmp, dst)
}

fn sync_after_is_too_late(tmp: &Path, dst: &Path) -> io::Result<()> {
    let f = fs::File::create(tmp)?;
    fs::rename(tmp, dst)?;
    f.sync_all()
}
