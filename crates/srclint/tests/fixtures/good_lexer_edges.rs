// srclint-fixture: crate=predicate section=src
// A fixture, not compiled: lexer edge cases that would surface false
// positives if mishandled. Everything below is clean.

/* A block comment /* with a nested block */ still inside the outer:
   unsafe { } and x.unwrap() are comment text, not code. */

fn lifetimes_are_not_chars<'a>(x: &'a str) -> &'a str {
    // 'a above must lex as a lifetime; the literals below as chars.
    let _tick: char = '\'';
    let _escaped: char = '\u{7f}';
    let _plain: char = 'u';
    x
}

fn raw_strings_hide_everything() -> &'static str {
    r##"r#"nested quote"# and panic!("text") and unsafe { }"##
}

fn byte_strings_too() -> &'static [u8] {
    br#"b.unwrap() // not a comment either"#
}

fn r_is_a_normal_ident(r: i32) -> i32 {
    let r#match = r; // raw ident keyword
    r#match
}

fn raw_strings_hide_line_comments() -> &'static str {
    // The `//` inside must NOT start a comment: if it did, the
    // closing delimiter would be swallowed and `panic!` below would
    // leak into code.
    r#"scheme://host/path // still string text, panic!("never code")"#
}

#[doc = "A doc attribute whose string holds /* a block comment /* nested */ opener */ as text."]
fn doc_attr_string_is_not_a_comment() -> i32 {
    // If the lexer treated the attribute string's `/*` as a comment
    // opener, everything to here would be comment text.
    0
}

#[doc = r"raw doc strings too: /* unterminated-looking and // markers"]
fn raw_doc_attr_edge() -> i32 {
    0
}
