// srclint-fixture: crate=ruleserv section=src
// A fixture, not compiled: opcode-conformance gaps. `OP_PING` is
// fully covered and agrees with DESIGN.md §14; `OP_WARP` has no
// encode arm, no decode arm, and no doc row.

const OP_PING: u8 = 0x01;
const OP_WARP: u8 = 0x42;

fn encode_frame(out: &mut Vec<u8>) {
    out.push(OP_PING);
}

fn decode_frame(op: u8) -> bool {
    op == OP_PING
}
