// srclint-fixture: crate=predicate section=src
// A fixture, not compiled: every accepted way to live with the
// no-panic rule in a library path.

fn fallible(v: &[i32]) -> Option<i32> {
    v.first().copied()
}

fn defaulted(v: &[i32]) -> i32 {
    v.first().copied().unwrap_or(0)
}

fn justified(v: &[i32]) -> i32 {
    // srclint:allow(no-panic-in-lib): v is rebuilt non-empty two lines up
    *v.first().expect("non-empty by construction")
}

struct Parser;
impl Parser {
    fn expect(&self, _want: u8) -> Result<(), String> {
        Ok(())
    }
    fn caller(&self) -> Result<(), String> {
        // A user-defined `expect` on self is not Option::expect.
        self.expect(1)
    }
}

fn raw_strings_do_not_confuse_the_lexer() -> &'static str {
    // The words below are string content, not calls.
    r#"x.unwrap() and panic!("boom") inside a raw string"#
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v = vec![1];
        assert_eq!(*v.first().unwrap(), 1);
        if v.is_empty() {
            panic!("impossible");
        }
    }
}
