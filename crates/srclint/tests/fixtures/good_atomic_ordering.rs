// srclint-fixture: crate=telemetry section=src
// A fixture, not compiled: atomics whose orderings match their class,
// plus the allowlisted independent-config-word shape.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct S {
    hits: AtomicU64,
    stop: AtomicBool,
    head: AtomicU64,
    threshold: AtomicU64,
}

impl S {
    fn count(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    fn poll(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn publish(&self, v: u64) {
        self.head.store(v, Ordering::Release);
    }

    fn read_head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    fn set_threshold(&self, v: u64) {
        // srclint:allow(atomic-ordering): an independent config word — guards no other data
        self.threshold.store(v, Ordering::Relaxed);
    }

    fn threshold(&self) -> u64 {
        // srclint:allow(atomic-ordering): an independent config word — guards no other data
        self.threshold.load(Ordering::Relaxed)
    }
}
