// srclint-fixture: crate=telemetry section=src
// A fixture, not compiled: conforming registrations — literal
// snake_case families from DESIGN.md's table, labels after the `{{`
// escape.

fn mint(registry: &telemetry::Registry, shard: usize) {
    let _ = registry.counter("rules_fired_total");
    let _ = registry.histogram("wal_fsync_nanos");
    // Labels may interpolate; the family prefix is still literal.
    let _ = registry.counter(&format!(
        "predindex_shard_lock_wait_nanos_total{{shard=\"{shard}\"}}"
    ));
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_metrics_are_exempt() {
        let r = telemetry::Registry::default();
        let _ = r.counter("x_total");
        let _ = r.histogram("lat");
    }
}
