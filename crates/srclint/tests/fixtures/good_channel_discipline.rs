// srclint-fixture: crate=ruleserv section=src
// A fixture, not compiled: the blessed channel shapes — explicit
// bounds, oneshot slots at capacity 1, tests exempt, and the
// justified escape hatch.

use std::sync::mpsc;

fn bounded_queue() {
    let (_tx, _rx) = mpsc::sync_channel::<u8>(1024);
}

fn oneshot_slot() {
    let (_tx, _rx) = mpsc::sync_channel::<u8>(1);
}

fn justified() {
    // srclint:allow(channel-discipline): fixture demonstrates the allow path
    let (_tx, _rx) = mpsc::channel::<u8>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_buffer_freely() {
        let (_tx, _rx) = std::sync::mpsc::channel::<u8>();
    }
}
