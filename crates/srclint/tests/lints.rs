//! Fixture-driven positive/negative tests for every lint, plus
//! exit-code checks on the built binary. Fixtures live in
//! `tests/fixtures/` (excluded from the workspace walk) and pose as
//! workspace files via the `// srclint-fixture:` header.

use srclint::{run, Config};
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    srclint::walker::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the srclint crate")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lints one fixture and returns `(lint, line)` per finding.
fn findings(name: &str) -> Vec<(String, u32)> {
    let report = run(&Config {
        root: workspace_root(),
        paths: vec![fixture(name)],
        changed_ref: None,
    })
    .expect("fixture lints");
    report
        .diagnostics
        .iter()
        .map(|d| (d.lint.to_string(), d.line))
        .collect()
}

// ---------------------------------------------------------------- good

#[test]
fn good_fixtures_are_clean() {
    for name in [
        "good_safety_comment.rs",
        "good_no_panic.rs",
        "good_lock_discipline.rs",
        "good_fsync_rename.rs",
        "good_metric_names.rs",
        "good_lexer_edges.rs",
        "good_lock_order.rs",
        "good_atomic_ordering.rs",
        "good_channel_discipline.rs",
        "good_codec.rs",
    ] {
        let found = findings(name);
        assert!(found.is_empty(), "{name} should be clean, got {found:?}");
    }
}

// ----------------------------------------------------------------- bad

#[test]
fn bad_safety_comment_flags_bare_unsafe() {
    let found = findings("bad_safety_comment.rs");
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|(l, _)| l == "safety-comment"));
    // One in library code, one inside #[cfg(test)] — no test exemption
    // for memory safety.
    let lines: Vec<u32> = found.iter().map(|&(_, ln)| ln).collect();
    assert_eq!(lines, vec![8, 16]);
}

#[test]
fn bad_no_panic_flags_methods_macros_and_misplaced_allow() {
    let found = findings("bad_no_panic.rs");
    assert!(found.iter().all(|(l, _)| l == "no-panic-in-lib"));
    let lines: Vec<u32> = found.iter().map(|&(_, ln)| ln).collect();
    // unwrap, expect, unreachable!, todo!, and the expect two lines
    // below a misplaced allow comment (allow covers its line + 1).
    assert_eq!(lines, vec![5, 9, 15, 20, 29], "{found:?}");
}

#[test]
fn bad_lock_discipline_flags_raw_and_double_acquisition() {
    let found = findings("bad_lock_discipline.rs");
    // The double-guard fn also trips the cross-file lock-order pass
    // (a shard-while-shard edge) — assert both lints see it.
    let discipline: Vec<_> = found
        .iter()
        .filter(|(l, _)| l == "lock-discipline")
        .collect();
    // One raw `.read()` outside the helpers, one second-guard site.
    assert_eq!(discipline.len(), 2, "{found:?}");
    assert!(
        found.iter().any(|(l, _)| l == "lock-order"),
        "nested shard guards should also be a lock-order finding: {found:?}"
    );
}

#[test]
fn bad_fsync_rename_flags_unsynced_and_late_sync() {
    let found = findings("bad_fsync_rename.rs");
    assert!(found.iter().all(|(l, _)| l == "fsync-before-rename"));
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn bad_metric_names_flags_every_shape() {
    let found = findings("bad_metric_names.rs");
    assert!(found.iter().all(|(l, _)| l == "metric-name-registry"));
    // missing _total, bad grammar, interpolated family, non-literal,
    // and a conforming name absent from DESIGN.md's table.
    assert_eq!(found.len(), 5, "{found:?}");
}

#[test]
fn bad_lock_order_flags_backward_self_unranked_and_transitive() {
    let found = findings("bad_lock_order.rs");
    assert!(found.iter().all(|(l, _)| l == "lock-order"), "{found:?}");
    // Backward direct edge, re-acquisition, an unranked class, and a
    // backward edge reached through a call.
    assert_eq!(found.len(), 4, "{found:?}");
}

#[test]
fn bad_atomic_ordering_flags_every_class() {
    let found = findings("bad_atomic_ordering.rs");
    assert!(
        found.iter().all(|(l, _)| l == "atomic-ordering"),
        "{found:?}"
    );
    // SeqCst counter RMW, SeqCst flag store + load, Relaxed
    // publication store.
    assert_eq!(found.len(), 4, "{found:?}");
}

#[test]
fn bad_channel_discipline_flags_unbounded_channels() {
    let found = findings("bad_channel_discipline.rs");
    assert!(
        found.iter().all(|(l, _)| l == "channel-discipline"),
        "{found:?}"
    );
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn bad_codec_flags_record_gaps() {
    let found = findings("bad_codec.rs");
    assert!(
        found.iter().all(|(l, _)| l == "codec-conformance"),
        "{found:?}"
    );
    // Ghost: no encode arm, no decode arm, no tag constant.
    // Update: tag value disagrees with DESIGN.md.
    assert_eq!(found.len(), 4, "{found:?}");
}

#[test]
fn bad_codec_proto_flags_opcode_gaps() {
    let found = findings("bad_codec_proto.rs");
    assert!(
        found.iter().all(|(l, _)| l == "codec-conformance"),
        "{found:?}"
    );
    // OP_WARP: no encode, no decode, no DESIGN.md row. OP_PING clean.
    assert_eq!(found.len(), 3, "{found:?}");
}

#[test]
fn scoped_thread_closures_own_their_acquisitions() {
    // The match_batch shape in good_lock_discipline.rs: one guard in
    // the fn plus one per spawned closure must NOT count as multiple
    // acquisition sites in one scope.
    let found = findings("good_lock_discipline.rs");
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn design_md_lock_order_table_is_present_and_parsed() {
    // The deadlock guard must be armed: if DESIGN.md loses the
    // canonical-order table, every edge check silently vanishes
    // (well — loudly, but via a different finding; this pins the
    // parse itself).
    let design = std::fs::read_to_string(workspace_root().join("DESIGN.md")).expect("DESIGN.md");
    let meta = srclint::lints::WorkspaceMeta {
        root: workspace_root(),
        design: Some(design),
        metric_families: None,
    };
    let order = srclint::lints::lock_order_canonical_order(&meta)
        .expect("DESIGN.md has a parseable canonical lock-order table");
    for (krate, ident) in [
        ("predindex", "shards"),
        ("predindex", "per_attr"),
        ("telemetry", "accounts"),
        ("telemetry", "names"),
        ("telemetry", "metrics"),
        ("telemetry", "ring"),
    ] {
        assert!(
            order.contains_key(&(krate.to_string(), ident.to_string())),
            "table lost `{krate}.{ident}`"
        );
    }
    // Ranks must actually order the hierarchy the workspace uses.
    let rank = |k: &str, i: &str| order[&(k.to_string(), i.to_string())];
    assert!(rank("predindex", "shards") < rank("predindex", "per_attr"));
    assert!(rank("telemetry", "accounts") < rank("telemetry", "names"));
    assert!(rank("telemetry", "names") < rank("telemetry", "metrics"));
}

#[test]
fn design_md_table_is_present_and_parsed() {
    // The registry cross-check must be armed: if DESIGN.md loses its
    // metric-families table, absent-family findings silently vanish.
    let design = std::fs::read_to_string(workspace_root().join("DESIGN.md")).expect("DESIGN.md");
    let families = srclint::lints::metric_names_design_families(&design)
        .expect("DESIGN.md has a parseable metric-families table");
    for expected in [
        "predindex_match_tuples_total",
        "predindex_shard_lock_wait_nanos",
        "rules_fired_total",
        "wal_fsync_nanos",
        "durable_recovery_frames_total",
    ] {
        assert!(families.contains(expected), "table lost `{expected}`");
    }
}

// -------------------------------------------------------------- binary

fn run_bin(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_srclint"))
        .args(args)
        .current_dir(workspace_root())
        .output()
        .expect("binary runs");
    let code = out.status.code().expect("exit code");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (code, stdout)
}

#[test]
fn deny_exits_nonzero_on_each_bad_fixture_and_zero_on_good() {
    for name in [
        "bad_safety_comment.rs",
        "bad_no_panic.rs",
        "bad_lock_discipline.rs",
        "bad_fsync_rename.rs",
        "bad_metric_names.rs",
        "bad_lock_order.rs",
        "bad_atomic_ordering.rs",
        "bad_channel_discipline.rs",
        "bad_codec.rs",
        "bad_codec_proto.rs",
    ] {
        let (code, _) = run_bin(&["--deny", fixture(name).to_str().expect("utf8 path")]);
        assert_eq!(code, 1, "{name} should fail --deny");
    }
    for name in [
        "good_no_panic.rs",
        "good_metric_names.rs",
        "good_lock_order.rs",
        "good_atomic_ordering.rs",
        "good_channel_discipline.rs",
        "good_codec.rs",
    ] {
        let (code, out) = run_bin(&["--deny", fixture(name).to_str().expect("utf8 path")]);
        assert_eq!(code, 0, "{name} should pass --deny: {out}");
    }
}

#[test]
fn changed_mode_restricts_per_file_stage_but_stays_clean() {
    // --changed narrows the per-file stage to the git diff; the
    // cross-file stage still sees the whole workspace. Either way the
    // tree must be clean. When git is unavailable the run widens to a
    // full walk, so this asserts the same invariant in both worlds.
    let (code, out) = run_bin(&["--deny", "--changed"]);
    assert_eq!(code, 0, "--changed run should be clean: {out}");
    let (code_json, json) = run_bin(&["--changed", "--format", "json"]);
    assert_eq!(code_json, 0);
    assert!(json.contains("\"files_linted\""), "{json}");
}

#[test]
fn json_report_is_well_formed() {
    let (code, out) = run_bin(&[
        "--format",
        "json",
        fixture("bad_no_panic.rs").to_str().expect("utf8 path"),
    ]);
    assert_eq!(code, 1);
    assert!(out.contains("\"schema\": \"srclint/report-v2\""), "{out}");
    assert!(out.contains("\"lint\": \"no-panic-in-lib\""));
    assert!(out.contains("\"severity\": \"error\""));
    assert!(out.contains("\"files_linted\""), "{out}");
    assert!(out.contains("\"suppressions\""), "{out}");
    assert!(out.contains("\"elapsed_ms\""), "{out}");
    // Paths in the report are workspace-relative.
    assert!(out.contains("crates/srclint/tests/fixtures/bad_no_panic.rs"));
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let (code, _) = run_bin(&["--definitely-not-a-flag"]);
    assert_eq!(code, 2);
}
