//! Fixture-driven positive/negative tests for every lint, plus
//! exit-code checks on the built binary. Fixtures live in
//! `tests/fixtures/` (excluded from the workspace walk) and pose as
//! workspace files via the `// srclint-fixture:` header.

use srclint::{run, Config};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    srclint::walker::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above the srclint crate")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Lints one fixture and returns `(lint, line)` per finding.
fn findings(name: &str) -> Vec<(String, u32)> {
    let report = run(&Config {
        root: workspace_root(),
        paths: vec![fixture(name)],
    })
    .expect("fixture lints");
    report
        .diagnostics
        .iter()
        .map(|d| (d.lint.to_string(), d.line))
        .collect()
}

fn lints_of(name: &str) -> BTreeSet<String> {
    findings(name).into_iter().map(|(l, _)| l).collect()
}

// ---------------------------------------------------------------- good

#[test]
fn good_fixtures_are_clean() {
    for name in [
        "good_safety_comment.rs",
        "good_no_panic.rs",
        "good_lock_discipline.rs",
        "good_fsync_rename.rs",
        "good_metric_names.rs",
        "good_lexer_edges.rs",
    ] {
        let found = findings(name);
        assert!(found.is_empty(), "{name} should be clean, got {found:?}");
    }
}

// ----------------------------------------------------------------- bad

#[test]
fn bad_safety_comment_flags_bare_unsafe() {
    let found = findings("bad_safety_comment.rs");
    assert_eq!(found.len(), 2, "{found:?}");
    assert!(found.iter().all(|(l, _)| l == "safety-comment"));
    // One in library code, one inside #[cfg(test)] — no test exemption
    // for memory safety.
    let lines: Vec<u32> = found.iter().map(|&(_, ln)| ln).collect();
    assert_eq!(lines, vec![8, 16]);
}

#[test]
fn bad_no_panic_flags_methods_macros_and_misplaced_allow() {
    let found = findings("bad_no_panic.rs");
    assert!(found.iter().all(|(l, _)| l == "no-panic-in-lib"));
    let lines: Vec<u32> = found.iter().map(|&(_, ln)| ln).collect();
    // unwrap, expect, unreachable!, todo!, and the expect two lines
    // below a misplaced allow comment (allow covers its line + 1).
    assert_eq!(lines, vec![5, 9, 15, 20, 29], "{found:?}");
}

#[test]
fn bad_lock_discipline_flags_raw_and_double_acquisition() {
    let found = findings("bad_lock_discipline.rs");
    assert_eq!(lints_of("bad_lock_discipline.rs").len(), 1);
    assert!(found.iter().all(|(l, _)| l == "lock-discipline"));
    // One raw `.read()` outside the helpers, one second-guard site.
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn bad_fsync_rename_flags_unsynced_and_late_sync() {
    let found = findings("bad_fsync_rename.rs");
    assert!(found.iter().all(|(l, _)| l == "fsync-before-rename"));
    assert_eq!(found.len(), 2, "{found:?}");
}

#[test]
fn bad_metric_names_flags_every_shape() {
    let found = findings("bad_metric_names.rs");
    assert!(found.iter().all(|(l, _)| l == "metric-name-registry"));
    // missing _total, bad grammar, interpolated family, non-literal,
    // and a conforming name absent from DESIGN.md's table.
    assert_eq!(found.len(), 5, "{found:?}");
}

#[test]
fn design_md_table_is_present_and_parsed() {
    // The registry cross-check must be armed: if DESIGN.md loses its
    // metric-families table, absent-family findings silently vanish.
    let design = std::fs::read_to_string(workspace_root().join("DESIGN.md")).expect("DESIGN.md");
    let families = srclint::lints::metric_names_design_families(&design)
        .expect("DESIGN.md has a parseable metric-families table");
    for expected in [
        "predindex_match_tuples_total",
        "predindex_shard_lock_wait_nanos",
        "rules_fired_total",
        "wal_fsync_nanos",
        "durable_recovery_frames_total",
    ] {
        assert!(families.contains(expected), "table lost `{expected}`");
    }
}

// -------------------------------------------------------------- binary

fn run_bin(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_srclint"))
        .args(args)
        .current_dir(workspace_root())
        .output()
        .expect("binary runs");
    let code = out.status.code().expect("exit code");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    (code, stdout)
}

#[test]
fn deny_exits_nonzero_on_each_bad_fixture_and_zero_on_good() {
    for name in [
        "bad_safety_comment.rs",
        "bad_no_panic.rs",
        "bad_lock_discipline.rs",
        "bad_fsync_rename.rs",
        "bad_metric_names.rs",
    ] {
        let (code, _) = run_bin(&["--deny", fixture(name).to_str().expect("utf8 path")]);
        assert_eq!(code, 1, "{name} should fail --deny");
    }
    for name in ["good_no_panic.rs", "good_metric_names.rs"] {
        let (code, out) = run_bin(&["--deny", fixture(name).to_str().expect("utf8 path")]);
        assert_eq!(code, 0, "{name} should pass --deny: {out}");
    }
}

#[test]
fn json_report_is_well_formed() {
    let (code, out) = run_bin(&[
        "--format",
        "json",
        fixture("bad_no_panic.rs").to_str().expect("utf8 path"),
    ]);
    assert_eq!(code, 1);
    assert!(out.contains("\"schema\": \"srclint/report-v1\""), "{out}");
    assert!(out.contains("\"lint\": \"no-panic-in-lib\""));
    // Paths in the report are workspace-relative.
    assert!(out.contains("crates/srclint/tests/fixtures/bad_no_panic.rs"));
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let (code, _) = run_bin(&["--definitely-not-a-flag"]);
    assert_eq!(code, 2);
}
