//! The lexer's structural contract: tokens partition the source.
//!
//! Every token's `[start, start+len)` slice must reproduce its text,
//! tokens must be ordered and non-overlapping, and the gaps between
//! them must be pure whitespace — so concatenating gaps and token
//! slices reassembles the file byte-for-byte. Checked exhaustively
//! over every real workspace file, then property-tested over
//! generated sources (including the nasty shapes: raw strings holding
//! `//`, nested block comments, doc-attribute strings).

use proptest::prelude::*;
use srclint::lexer::lex;
use std::path::Path;

/// Reassembles `src` from its token stream; panics (with context) on
/// any structural violation. Returns the rebuilt string.
fn reassemble(src: &str, label: &str) -> String {
    let tokens = lex(src);
    let mut out = String::with_capacity(src.len());
    let mut pos = 0usize;
    for (i, t) in tokens.iter().enumerate() {
        assert!(
            t.start >= pos,
            "{label}: token {i} starts at {} before previous end {pos}",
            t.start
        );
        let gap = &src[pos..t.start];
        assert!(
            gap.chars().all(char::is_whitespace),
            "{label}: non-whitespace bytes {gap:?} fell between tokens"
        );
        out.push_str(gap);
        let end = t.start + t.len;
        assert!(end <= src.len(), "{label}: token {i} overruns the source");
        out.push_str(&src[t.start..end]);
        assert_eq!(&src[t.start..end], t.text(src), "{label}: text() disagrees");
        pos = end;
    }
    let tail = &src[pos..];
    assert!(
        tail.chars().all(char::is_whitespace),
        "{label}: non-whitespace tail {tail:?} after the last token"
    );
    out.push_str(tail);
    out
}

#[test]
fn every_workspace_file_reassembles_byte_identical() {
    let root = srclint::walker::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root");
    let files = srclint::walker::workspace_files(&root).expect("walk");
    assert!(
        files.len() > 100,
        "suspiciously small walk: {}",
        files.len()
    );
    for f in files {
        let src = std::fs::read_to_string(&f).expect("readable source");
        let rebuilt = reassemble(&src, &f.display().to_string());
        assert_eq!(rebuilt, src, "{} did not reassemble", f.display());
    }
}

#[test]
fn fixture_corpus_reassembles_too() {
    // Fixtures are excluded from the walk but full of deliberate edge
    // cases — exactly the bytes the lexer must not mangle.
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    for entry in std::fs::read_dir(dir).expect("fixtures dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("readable fixture");
        let rebuilt = reassemble(&src, &path.display().to_string());
        assert_eq!(rebuilt, src, "{} did not reassemble", path.display());
    }
}

/// Fragments chosen to stress delimiter tracking; random sequences of
/// these compose into sources no hand-written case list would cover.
fn arb_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z]{1,8}".prop_map(|s| format!("let {s} = 1;\n")),
        "[a-z]{0,6}".prop_map(|s| format!("// line comment {s}\n")),
        "[a-z]{0,6}".prop_map(|s| format!("/* block /* nested {s} */ still */ ")),
        "[a-z]{0,6}".prop_map(|s| format!("let u = \"str with // inside {s}\";\n")),
        "[a-z]{0,6}".prop_map(|s| format!("let r = r#\"raw // {s} /* not a comment */\"#;\n")),
        "[a-z]{0,6}".prop_map(|s| format!("#[doc = \"/* {s} */ and // markers\"]\nfn d() {{}}\n")),
        Just("let c = 'x'; let lt: &'static str = \"s\";\n".to_string()),
        Just("let b = br##\"bytes \"# close-looking\"##;\n".to_string()),
        Just("\t \n".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Lex-then-reassemble is the identity on any composition of the
    /// fragment alphabet.
    #[test]
    fn generated_sources_reassemble(frags in proptest::collection::vec(arb_fragment(), 0..12)) {
        let src: String = frags.concat();
        let rebuilt = reassemble(&src, "generated");
        prop_assert_eq!(rebuilt, src);
    }
}
