//! A minimal FNV-1a hasher for the hot relation-name lookups.
//!
//! The top level of the paper's index is "a hash table, using relation
//! names as keys" consulted once per modified tuple (Figure 1). The
//! standard library's SipHash is DoS-resistant but slow for short string
//! keys; an in-process rule index faces no untrusted keys, so FNV-1a is
//! the appropriate trade (see the workspace performance guide). Written
//! out here (~30 lines) rather than pulling in a crate.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, 64-bit.
#[derive(Debug, Clone, Copy)]
pub struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// `HashMap` keyed with FNV-1a.
pub type FnvHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// `HashSet` keyed with FNV-1a.
pub type FnvHashSet<K> = HashSet<K, BuildHasherDefault<FnvHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c
        let mut h = FnvHasher::default();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn map_works() {
        let mut m: FnvHashMap<String, i32> = FnvHashMap::default();
        m.insert("emp".into(), 1);
        m.insert("dept".into(), 2);
        assert_eq!(m["emp"], 1);
        assert_eq!(m.get("nope"), None);
    }
}
