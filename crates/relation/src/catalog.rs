//! The catalog (named relations + statistics) and the [`Database`]
//! facade whose mutations emit the tuple events a rule system consumes.

use crate::fx::FnvHashMap;
use crate::relation::{Relation, RelationError, Tuple, TupleId};
use crate::schema::Schema;
use crate::stats::ColumnStats;
use crate::value::Value;
use std::fmt;

/// Catalog errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A relation with this name already exists.
    Duplicate(String),
    /// No relation with this name.
    NoSuchRelation(String),
    /// Underlying relation mutation failed.
    Relation(RelationError),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Duplicate(n) => write!(f, "relation {n:?} already exists"),
            CatalogError::NoSuchRelation(n) => write!(f, "no relation named {n:?}"),
            CatalogError::Relation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CatalogError {}

impl From<RelationError> for CatalogError {
    fn from(e: RelationError) -> Self {
        CatalogError::Relation(e)
    }
}

/// Named relations plus per-column optimizer statistics.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: FnvHashMap<String, Relation>,
    /// `(relation, attr index)` → stats, populated by [`Catalog::analyze`].
    stats: FnvHashMap<(String, usize), ColumnStats>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a new relation.
    pub fn create_relation(&mut self, schema: Schema) -> Result<(), CatalogError> {
        let name = schema.name().to_string();
        if self.relations.contains_key(&name) {
            return Err(CatalogError::Duplicate(name));
        }
        self.relations.insert(name, Relation::new(schema));
        Ok(())
    }

    /// Installs an already-populated relation under its schema name —
    /// the recovery path: a snapshot decodes complete [`Relation`]s
    /// (contents, holes, free list) and adopts them wholesale instead
    /// of re-running every historical insert.
    pub fn adopt_relation(&mut self, rel: Relation) -> Result<(), CatalogError> {
        let name = rel.schema().name().to_string();
        if self.relations.contains_key(&name) {
            return Err(CatalogError::Duplicate(name));
        }
        self.relations.insert(name, rel);
        Ok(())
    }

    /// Drops a relation, returning it, along with its column stats.
    /// Predicates already registered against the relation are the
    /// caller's concern: matchers bind at registration time and keep
    /// matching against their own state, so dropping here neither
    /// unregisters them nor invalidates in-flight matching.
    pub fn drop_relation(&mut self, name: &str) -> Result<Relation, CatalogError> {
        let rel = self
            .relations
            .remove(name)
            .ok_or_else(|| CatalogError::NoSuchRelation(name.to_string()))?;
        self.stats.retain(|(r, _), _| r != name);
        Ok(rel)
    }

    /// The relation called `name`.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Mutable access to the relation called `name`.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// Iterates relations in unspecified order.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// (Re)builds column statistics for every relation from current
    /// contents — the stand-in for "selectivity estimates are obtained
    /// from the query optimizer" (§4).
    pub fn analyze(&mut self) {
        self.stats.clear();
        for (name, rel) in &self.relations {
            for i in 0..rel.schema().arity() {
                let column: Vec<Value> = rel.iter().map(|(_, t)| t.get(i).clone()).collect();
                self.stats
                    .insert((name.clone(), i), ColumnStats::from_values(column));
            }
        }
    }

    /// Stats for one column, if analyzed.
    pub fn column_stats(&self, relation: &str, attr: usize) -> Option<&ColumnStats> {
        // Allocation-free lookup would need a borrowed pair key; this
        // path only runs at predicate-registration time, not per tuple.
        self.stats.get(&(relation.to_string(), attr))
    }
}

/// A tuple-level change, as delivered to the rule engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TupleEvent {
    /// A tuple was inserted.
    Inserted {
        relation: String,
        id: TupleId,
        tuple: Tuple,
    },
    /// A tuple was replaced.
    Updated {
        relation: String,
        id: TupleId,
        old: Tuple,
        new: Tuple,
    },
    /// A tuple was deleted.
    Deleted {
        relation: String,
        id: TupleId,
        tuple: Tuple,
    },
}

impl TupleEvent {
    /// The relation the event belongs to.
    pub fn relation(&self) -> &str {
        match self {
            TupleEvent::Inserted { relation, .. }
            | TupleEvent::Updated { relation, .. }
            | TupleEvent::Deleted { relation, .. } => relation,
        }
    }

    /// The tuple as it exists *after* the event (the paper's matching
    /// target: "each new or modified tuple"). `None` for deletions.
    pub fn current(&self) -> Option<&Tuple> {
        match self {
            TupleEvent::Inserted { tuple, .. } => Some(tuple),
            TupleEvent::Updated { new, .. } => Some(new),
            TupleEvent::Deleted { .. } => None,
        }
    }
}

/// A catalog with event-emitting mutations.
#[derive(Debug, Clone, Default)]
pub struct Database {
    catalog: Catalog,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access (schema changes, analyze).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// Registers a new relation.
    pub fn create_relation(&mut self, schema: Schema) -> Result<(), CatalogError> {
        self.catalog.create_relation(schema)
    }

    /// Drops a relation (see [`Catalog::drop_relation`]).
    pub fn drop_relation(&mut self, name: &str) -> Result<Relation, CatalogError> {
        self.catalog.drop_relation(name)
    }

    /// Inserts a tuple, returning a clone of what was stored (convenient
    /// for immediately matching it against predicates).
    pub fn insert(&mut self, relation: &str, values: Vec<Value>) -> Result<Tuple, CatalogError> {
        Ok(self
            .insert_event(relation, values)?
            .current()
            // srclint:allow(no-panic-in-lib): insert_event always yields Inserted, which carries the stored tuple
            .unwrap()
            .clone())
    }

    /// Inserts a tuple and returns the full event.
    pub fn insert_event(
        &mut self,
        relation: &str,
        values: Vec<Value>,
    ) -> Result<TupleEvent, CatalogError> {
        let rel = self
            .catalog
            .relation_mut(relation)
            .ok_or_else(|| CatalogError::NoSuchRelation(relation.to_string()))?;
        let id = rel.insert(values)?;
        Ok(TupleEvent::Inserted {
            relation: relation.to_string(),
            id,
            // srclint:allow(no-panic-in-lib): rel.insert just returned this id
            tuple: rel.get(id).expect("just inserted").clone(),
        })
    }

    /// Replaces a tuple and returns the full event.
    pub fn update_event(
        &mut self,
        relation: &str,
        id: TupleId,
        values: Vec<Value>,
    ) -> Result<TupleEvent, CatalogError> {
        let rel = self
            .catalog
            .relation_mut(relation)
            .ok_or_else(|| CatalogError::NoSuchRelation(relation.to_string()))?;
        let old = rel.update(id, values)?;
        Ok(TupleEvent::Updated {
            relation: relation.to_string(),
            id,
            old,
            // srclint:allow(no-panic-in-lib): rel.update just succeeded for this id
            new: rel.get(id).expect("just updated").clone(),
        })
    }

    /// Deletes a tuple and returns the full event.
    pub fn delete_event(
        &mut self,
        relation: &str,
        id: TupleId,
    ) -> Result<TupleEvent, CatalogError> {
        let rel = self
            .catalog
            .relation_mut(relation)
            .ok_or_else(|| CatalogError::NoSuchRelation(relation.to_string()))?;
        let tuple = rel.delete(id)?;
        Ok(TupleEvent::Deleted {
            relation: relation.to_string(),
            id,
            tuple,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttrType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("age", AttrType::Int)
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn create_duplicate_fails() {
        let mut d = db();
        let err = d
            .create_relation(Schema::builder("emp").attr("x", AttrType::Int).build())
            .unwrap_err();
        assert_eq!(err, CatalogError::Duplicate("emp".into()));
    }

    #[test]
    fn events_carry_old_and_new() {
        let mut d = db();
        let ev = d
            .insert_event("emp", vec![Value::str("al"), Value::Int(30)])
            .unwrap();
        let TupleEvent::Inserted { id, .. } = ev else {
            panic!("expected insert event")
        };
        let ev = d
            .update_event("emp", id, vec![Value::str("al"), Value::Int(31)])
            .unwrap();
        match &ev {
            TupleEvent::Updated { old, new, .. } => {
                assert_eq!(old.get(1), &Value::Int(30));
                assert_eq!(new.get(1), &Value::Int(31));
                assert_eq!(ev.current().unwrap().get(1), &Value::Int(31));
            }
            _ => panic!("expected update event"),
        }
        let ev = d.delete_event("emp", id).unwrap();
        assert!(ev.current().is_none());
        assert_eq!(ev.relation(), "emp");
    }

    #[test]
    fn drop_relation_removes_state_and_stats() {
        let mut d = db();
        d.insert("emp", vec![Value::str("al"), Value::Int(30)])
            .unwrap();
        d.catalog_mut().analyze();
        assert!(d.catalog().column_stats("emp", 1).is_some());

        let rel = d.drop_relation("emp").unwrap();
        assert_eq!(rel.schema().name(), "emp");
        assert!(d.catalog().relation("emp").is_none());
        assert!(d.catalog().column_stats("emp", 1).is_none());
        assert!(matches!(
            d.drop_relation("emp"),
            Err(CatalogError::NoSuchRelation(_))
        ));

        // The name is reusable after the drop.
        d.create_relation(Schema::builder("emp").attr("x", AttrType::Int).build())
            .unwrap();
        assert_eq!(d.catalog().relation("emp").unwrap().schema().arity(), 1);
    }

    #[test]
    fn unknown_relation_errors() {
        let mut d = db();
        assert!(matches!(
            d.insert("nope", vec![]),
            Err(CatalogError::NoSuchRelation(_))
        ));
    }

    #[test]
    fn analyze_builds_stats() {
        let mut d = db();
        for i in 0..100 {
            d.insert("emp", vec![Value::str(format!("e{i}")), Value::Int(i)])
                .unwrap();
        }
        d.catalog_mut().analyze();
        let stats = d.catalog().column_stats("emp", 1).unwrap();
        assert_eq!(stats.rows(), 100);
        assert_eq!(stats.distinct(), 100);
        assert!(d.catalog().column_stats("emp", 5).is_none());
    }
}
