//! Tuples and in-memory relations.

use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A tuple: attribute values in schema order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Wraps raw values (validated by [`Relation::insert`]).
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The value at attribute position `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.values[i]
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Identifier of a stored tuple within its relation (stable across other
/// tuples' deletions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleId(pub u32);

/// Errors from relation mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// Tuple arity does not match the schema.
    Arity { expected: usize, got: usize },
    /// A value's type does not match its attribute.
    Type {
        attr: String,
        expected: String,
        got: String,
    },
    /// No tuple with the given id.
    NoSuchTuple(TupleId),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::Arity { expected, got } => {
                write!(f, "arity mismatch: expected {expected}, got {got}")
            }
            RelationError::Type {
                attr,
                expected,
                got,
            } => write!(f, "type mismatch on {attr}: expected {expected}, got {got}"),
            RelationError::NoSuchTuple(id) => write!(f, "no tuple with id {}", id.0),
        }
    }
}

impl std::error::Error for RelationError {}

/// A main-memory relation: schema plus slotted tuple storage.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    slots: Vec<Option<Tuple>>,
    free: Vec<u32>,
    len: usize,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn new(schema: Schema) -> Self {
        Relation {
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn validate(&self, values: &[Value]) -> Result<(), RelationError> {
        if values.len() != self.schema.arity() {
            return Err(RelationError::Arity {
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for (attr, v) in self.schema.attributes().iter().zip(values) {
            if v.attr_type() != attr.ty {
                return Err(RelationError::Type {
                    attr: attr.name.clone(),
                    expected: attr.ty.to_string(),
                    got: v.attr_type().to_string(),
                });
            }
        }
        Ok(())
    }

    /// Inserts a tuple, returning its id.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<TupleId, RelationError> {
        self.validate(&values)?;
        let tuple = Tuple::new(values);
        self.len += 1;
        if let Some(ix) = self.free.pop() {
            self.slots[ix as usize] = Some(tuple);
            Ok(TupleId(ix))
        } else {
            self.slots.push(Some(tuple));
            Ok(TupleId((self.slots.len() - 1) as u32))
        }
    }

    /// The tuple stored under `id`.
    pub fn get(&self, id: TupleId) -> Option<&Tuple> {
        self.slots.get(id.0 as usize)?.as_ref()
    }

    /// Replaces the tuple under `id`, returning the old one.
    pub fn update(&mut self, id: TupleId, values: Vec<Value>) -> Result<Tuple, RelationError> {
        self.validate(&values)?;
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(RelationError::NoSuchTuple(id))?;
        Ok(std::mem::replace(slot, Tuple::new(values)))
    }

    /// Deletes the tuple under `id`, returning it.
    pub fn delete(&mut self, id: TupleId) -> Result<Tuple, RelationError> {
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .ok_or(RelationError::NoSuchTuple(id))?;
        let tuple = slot.take().ok_or(RelationError::NoSuchTuple(id))?;
        self.free.push(id.0);
        self.len -= 1;
        Ok(tuple)
    }

    /// Iterates live `(id, tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_ref().map(|t| (TupleId(i as u32), t)))
    }

    /// Raw slot storage, including holes — the serialization view.
    pub(crate) fn slots(&self) -> &[Option<Tuple>] {
        &self.slots
    }

    /// The free-slot stack in pop order (last entry is reused first).
    /// Serialization must preserve this order exactly, or a restored
    /// relation would hand out different `TupleId`s than the original.
    pub(crate) fn free_list(&self) -> &[u32] {
        &self.free
    }

    /// Reassembles a relation from its serialized parts. The caller
    /// ([`crate::codec`]) has already validated tuples against the
    /// schema and checked that `free` lists exactly the empty slots.
    pub(crate) fn from_parts(schema: Schema, slots: Vec<Option<Tuple>>, free: Vec<u32>) -> Self {
        let len = slots.iter().filter(|s| s.is_some()).count();
        debug_assert_eq!(slots.len() - len, free.len());
        Relation {
            schema,
            slots,
            free,
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::AttrType;

    fn emp() -> Relation {
        Relation::new(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("age", AttrType::Int)
                .build(),
        )
    }

    #[test]
    fn crud() {
        let mut r = emp();
        let id = r.insert(vec![Value::str("al"), Value::Int(40)]).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(id).unwrap().get(1), &Value::Int(40));
        let old = r
            .update(id, vec![Value::str("al"), Value::Int(41)])
            .unwrap();
        assert_eq!(old.get(1), &Value::Int(40));
        assert_eq!(r.get(id).unwrap().get(1), &Value::Int(41));
        let gone = r.delete(id).unwrap();
        assert_eq!(gone.get(1), &Value::Int(41));
        assert!(r.is_empty());
        assert_eq!(r.delete(id), Err(RelationError::NoSuchTuple(id)));
    }

    #[test]
    fn validation() {
        let mut r = emp();
        assert!(matches!(
            r.insert(vec![Value::str("al")]),
            Err(RelationError::Arity {
                expected: 2,
                got: 1
            })
        ));
        assert!(matches!(
            r.insert(vec![Value::Int(1), Value::Int(2)]),
            Err(RelationError::Type { .. })
        ));
    }

    #[test]
    fn slot_reuse_keeps_other_ids_stable() {
        let mut r = emp();
        let a = r.insert(vec![Value::str("a"), Value::Int(1)]).unwrap();
        let b = r.insert(vec![Value::str("b"), Value::Int(2)]).unwrap();
        r.delete(a).unwrap();
        let c = r.insert(vec![Value::str("c"), Value::Int(3)]).unwrap();
        assert_eq!(c, a, "slot reused");
        assert_eq!(r.get(b).unwrap().get(0), &Value::str("b"));
        let ids: Vec<TupleId> = r.iter().map(|(i, _)| i).collect();
        assert_eq!(ids.len(), 2);
    }
}
