//! Hand-rolled binary encoding for the relational substrate.
//!
//! The durability layer (crate `durable`) serializes catalog state and
//! WAL records without serde (the build environment has no registry
//! access), so the substrate provides its own length-prefixed codec for
//! the types whose internals live in this crate: [`Value`], [`Schema`],
//! [`Tuple`], and whole [`Relation`]s including their slot layout.
//!
//! Layout conventions, shared by every `encode_*`/`decode_*` pair:
//!
//! * integers are little-endian fixed width;
//! * strings and sequences carry a `u32` length prefix;
//! * enums carry a one-byte tag;
//! * floats are stored as their IEEE-754 bit pattern (`f64::to_bits`),
//!   so NaN payloads and signed zeros round-trip exactly.
//!
//! A relation is encoded slot-for-slot — holes and the free-list order
//! included — because `TupleId` assignment pops the free stack: a
//! restored relation must hand out the same ids the original would
//! have, or log replay after a snapshot would diverge.

use crate::relation::{Relation, Tuple};
use crate::schema::{Schema, SchemaBuilder};
use crate::value::{AttrType, Value};
use std::fmt;

/// Decoding errors. Encoding is infallible (it only appends to a
/// growable buffer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the announced structure was complete.
    Truncated { needed: usize, available: usize },
    /// An enum tag byte had no defined meaning.
    BadTag { what: &'static str, tag: u8 },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// Structurally well-formed input describing an impossible value
    /// (e.g. a free-list entry pointing at an occupied slot).
    Invalid(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(f, "truncated input: needed {needed} bytes, had {available}")
            }
            CodecError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::Invalid(m) => write!(f, "invalid encoded value: {m}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// An append-only encode buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty buffer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Has anything been written?
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    pub fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    /// A `u32` length prefix followed by the UTF-8 bytes.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }
}

/// A cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Has every byte been consumed?
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, CodecError> {
        // srclint:allow(no-panic-in-lib): take(2) returned exactly 2 bytes; the array conversion is infallible
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, CodecError> {
        // srclint:allow(no-panic-in-lib): take(4) returned exactly 4 bytes; the array conversion is infallible
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, CodecError> {
        // srclint:allow(no-panic-in-lib): take(8) returned exactly 8 bytes; the array conversion is infallible
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn i32(&mut self) -> Result<i32, CodecError> {
        // srclint:allow(no-panic-in-lib): take(4) returned exactly 4 bytes; the array conversion is infallible
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn i64(&mut self) -> Result<i64, CodecError> {
        // srclint:allow(no-panic-in-lib): take(8) returned exactly 8 bytes; the array conversion is infallible
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag { what: "bool", tag }),
        }
    }

    /// Inverse of [`Writer::str`]. The length prefix is validated
    /// against the remaining input before any allocation, so a
    /// corrupted length cannot trigger an over-sized reservation.
    pub fn str(&mut self) -> Result<String, CodecError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }
}

const VALUE_BOOL: u8 = 0;
const VALUE_INT: u8 = 1;
const VALUE_FLOAT: u8 = 2;
const VALUE_STR: u8 = 3;

/// Encodes one [`Value`] as `tag + payload`.
pub fn encode_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Bool(b) => {
            w.u8(VALUE_BOOL);
            w.bool(*b);
        }
        Value::Int(i) => {
            w.u8(VALUE_INT);
            w.i64(*i);
        }
        Value::Float(x) => {
            w.u8(VALUE_FLOAT);
            w.f64(*x);
        }
        Value::Str(s) => {
            w.u8(VALUE_STR);
            w.str(s);
        }
    }
}

/// Inverse of [`encode_value`].
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value, CodecError> {
    match r.u8()? {
        VALUE_BOOL => Ok(Value::Bool(r.bool()?)),
        VALUE_INT => Ok(Value::Int(r.i64()?)),
        VALUE_FLOAT => Ok(Value::Float(r.f64()?)),
        VALUE_STR => Ok(Value::Str(r.str()?)),
        tag => Err(CodecError::BadTag { what: "value", tag }),
    }
}

fn encode_attr_type(w: &mut Writer, ty: AttrType) {
    w.u8(match ty {
        AttrType::Bool => VALUE_BOOL,
        AttrType::Int => VALUE_INT,
        AttrType::Float => VALUE_FLOAT,
        AttrType::Str => VALUE_STR,
    });
}

fn decode_attr_type(r: &mut Reader<'_>) -> Result<AttrType, CodecError> {
    match r.u8()? {
        VALUE_BOOL => Ok(AttrType::Bool),
        VALUE_INT => Ok(AttrType::Int),
        VALUE_FLOAT => Ok(AttrType::Float),
        VALUE_STR => Ok(AttrType::Str),
        tag => Err(CodecError::BadTag {
            what: "attr type",
            tag,
        }),
    }
}

/// Encodes a [`Schema`]: name, then attributes in declaration order.
pub fn encode_schema(w: &mut Writer, schema: &Schema) {
    w.str(schema.name());
    w.u32(schema.arity() as u32);
    for attr in schema.attributes() {
        w.str(&attr.name);
        encode_attr_type(w, attr.ty);
    }
}

/// Inverse of [`encode_schema`].
pub fn decode_schema(r: &mut Reader<'_>) -> Result<Schema, CodecError> {
    let name = r.str()?;
    let arity = r.u32()? as usize;
    let mut builder: SchemaBuilder = Schema::builder(name);
    let mut seen: Vec<String> = Vec::with_capacity(arity);
    for _ in 0..arity {
        let attr = r.str()?;
        let ty = decode_attr_type(r)?;
        // SchemaBuilder panics on duplicates (a programming error on the
        // construction path); decoding untrusted bytes must error.
        if seen.contains(&attr) {
            return Err(CodecError::Invalid(format!("duplicate attribute {attr:?}")));
        }
        seen.push(attr.clone());
        builder = builder.attr(attr, ty);
    }
    Ok(builder.build())
}

/// Encodes a [`Tuple`] as a counted value sequence.
pub fn encode_tuple(w: &mut Writer, tuple: &Tuple) {
    w.u32(tuple.arity() as u32);
    for v in tuple.values() {
        encode_value(w, v);
    }
}

/// Inverse of [`encode_tuple`].
pub fn decode_tuple(r: &mut Reader<'_>) -> Result<Tuple, CodecError> {
    let arity = r.u32()? as usize;
    let mut values = Vec::with_capacity(arity.min(r.remaining()));
    for _ in 0..arity {
        values.push(decode_value(r)?);
    }
    Ok(Tuple::new(values))
}

/// Encodes a whole [`Relation`]: schema, every slot (holes included),
/// and the free-slot stack in order.
pub fn encode_relation(w: &mut Writer, rel: &Relation) {
    encode_schema(w, rel.schema());
    let slots = rel.slots();
    w.u32(slots.len() as u32);
    for slot in slots {
        match slot {
            Some(tuple) => {
                w.u8(1);
                encode_tuple(w, tuple);
            }
            None => w.u8(0),
        }
    }
    let free = rel.free_list();
    w.u32(free.len() as u32);
    for &ix in free {
        w.u32(ix);
    }
}

/// Inverse of [`encode_relation`]. Validates that every stored tuple
/// matches the schema and that the free list is exactly the set of
/// empty slots (in any order — the *order* is preserved as written).
pub fn decode_relation(r: &mut Reader<'_>) -> Result<Relation, CodecError> {
    let schema = decode_schema(r)?;
    let slot_count = r.u32()? as usize;
    let mut slots: Vec<Option<Tuple>> = Vec::with_capacity(slot_count.min(r.remaining()));
    for _ in 0..slot_count {
        match r.u8()? {
            0 => slots.push(None),
            1 => {
                let tuple = decode_tuple(r)?;
                if tuple.arity() != schema.arity() {
                    return Err(CodecError::Invalid(format!(
                        "tuple arity {} does not match schema {}",
                        tuple.arity(),
                        schema.arity()
                    )));
                }
                for (attr, v) in schema.attributes().iter().zip(tuple.values()) {
                    if v.attr_type() != attr.ty {
                        return Err(CodecError::Invalid(format!(
                            "attribute {:?}: expected {}, got {}",
                            attr.name,
                            attr.ty,
                            v.attr_type()
                        )));
                    }
                }
                slots.push(Some(tuple));
            }
            tag => return Err(CodecError::BadTag { what: "slot", tag }),
        }
    }
    let free_count = r.u32()? as usize;
    let mut free: Vec<u32> = Vec::with_capacity(free_count.min(r.remaining()));
    for _ in 0..free_count {
        free.push(r.u32()?);
    }
    // The free list must enumerate exactly the holes: every entry names
    // an empty slot, no entry repeats, and no hole is missing — the len
    // counter and TupleId reuse both depend on it.
    let mut holes: Vec<u32> = slots
        .iter()
        .enumerate()
        .filter_map(|(i, s)| s.is_none().then_some(i as u32))
        .collect();
    let mut sorted_free = free.clone();
    sorted_free.sort_unstable();
    holes.sort_unstable();
    if sorted_free != holes {
        return Err(CodecError::Invalid(
            "free list does not match empty slots".into(),
        ));
    }
    Ok(Relation::from_parts(schema, slots, free))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::TupleId;

    fn emp_rel() -> Relation {
        let mut rel = Relation::new(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("age", AttrType::Int)
                .attr("score", AttrType::Float)
                .attr("active", AttrType::Bool)
                .build(),
        );
        for i in 0..6i64 {
            rel.insert(vec![
                Value::str(format!("e{i}")),
                Value::Int(i),
                Value::Float(i as f64 / 3.0),
                Value::Bool(i % 2 == 0),
            ])
            .unwrap();
        }
        rel
    }

    fn round_trip(rel: &Relation) -> Relation {
        let mut w = Writer::new();
        encode_relation(&mut w, rel);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let out = decode_relation(&mut r).unwrap();
        assert!(r.is_empty(), "decoder must consume every byte");
        out
    }

    #[test]
    fn value_round_trips_all_variants() {
        for v in [
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(0),
            Value::Int(i64::MAX),
            Value::Float(0.0),
            Value::Float(-0.0),
            Value::Float(f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Float(1e-300),
            Value::str(""),
            Value::str("héllo \"quoted\" \\slash\n"),
        ] {
            let mut w = Writer::new();
            encode_value(&mut w, &v);
            let bytes = w.into_bytes();
            let got = decode_value(&mut Reader::new(&bytes)).unwrap();
            // Bit-exact for floats: compare through the total order.
            assert_eq!(got.cmp(&v), std::cmp::Ordering::Equal, "{v:?}");
            if let (Value::Float(a), Value::Float(b)) = (&got, &v) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn schema_and_tuple_round_trip() {
        let rel = emp_rel();
        let mut w = Writer::new();
        encode_schema(&mut w, rel.schema());
        let bytes = w.into_bytes();
        assert_eq!(
            &decode_schema(&mut Reader::new(&bytes)).unwrap(),
            rel.schema()
        );

        let (_, tuple) = rel.iter().next().unwrap();
        let mut w = Writer::new();
        encode_tuple(&mut w, tuple);
        let bytes = w.into_bytes();
        assert_eq!(&decode_tuple(&mut Reader::new(&bytes)).unwrap(), tuple);
    }

    #[test]
    fn relation_round_trip_preserves_ids_and_free_order() {
        let mut rel = emp_rel();
        // Punch holes in a specific order: free stack becomes [4, 1].
        rel.delete(TupleId(4)).unwrap();
        rel.delete(TupleId(1)).unwrap();
        let restored = round_trip(&rel);
        assert_eq!(restored.len(), rel.len());
        assert_eq!(
            restored.iter().collect::<Vec<_>>(),
            rel.iter().collect::<Vec<_>>()
        );
        // Next insert must reuse slot 1 (top of the free stack), then 4 —
        // identical to what the original relation would do.
        let mut a = rel.clone();
        let mut b = restored;
        for _ in 0..3 {
            let row = vec![
                Value::str("new"),
                Value::Int(9),
                Value::Float(0.5),
                Value::Bool(false),
            ];
            assert_eq!(a.insert(row.clone()).unwrap(), b.insert(row).unwrap());
        }
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let rel = emp_rel();
        let mut w = Writer::new();
        encode_relation(&mut w, &rel);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let err = decode_relation(&mut Reader::new(&bytes[..cut]));
            assert!(err.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn corrupt_tags_and_free_lists_are_rejected() {
        assert!(matches!(
            decode_value(&mut Reader::new(&[9])),
            Err(CodecError::BadTag { .. })
        ));

        // A free list naming an occupied slot must not decode.
        let mut rel = emp_rel();
        rel.delete(TupleId(2)).unwrap();
        let mut w = Writer::new();
        encode_relation(&mut w, &rel);
        let mut bytes = w.into_bytes();
        // The trailing u32 is the single free-list entry (slot 2).
        let n = bytes.len();
        bytes[n - 4] = 0; // now claims slot 0, which is occupied
        assert!(matches!(
            decode_relation(&mut Reader::new(&bytes)),
            Err(CodecError::Invalid(_))
        ));
    }

    #[test]
    fn bad_utf8_is_rejected() {
        let mut w = Writer::new();
        w.u8(VALUE_STR);
        w.u32(2);
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        assert_eq!(
            decode_value(&mut Reader::new(&bytes)),
            Err(CodecError::BadUtf8)
        );
    }
}
