//! Relation schemas.

use crate::value::AttrType;
use std::fmt;

/// One attribute: a name and a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: String,
    pub ty: AttrType,
}

/// A relation schema: the relation name and its attributes, in order.
///
/// Real applications "often involve relations with anywhere from one to
/// over 100 attributes, with a large fraction having from 5 to 25" (§2.4,
/// citing \[Col89\]); the workload generators lean on that observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    name: String,
    attrs: Vec<Attribute>,
}

impl Schema {
    /// Starts a builder for a relation called `name`.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            attrs: Vec::new(),
        }
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Index of the attribute called `name`.
    pub fn attr_index(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// The attribute called `name`.
    pub fn attr(&self, name: &str) -> Option<&Attribute> {
        self.attrs.iter().find(|a| a.name == name)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

/// Builder for [`Schema`].
pub struct SchemaBuilder {
    name: String,
    attrs: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Appends an attribute. Panics on duplicate names (schemas are
    /// program literals; fail fast).
    pub fn attr(mut self, name: impl Into<String>, ty: AttrType) -> Self {
        let name = name.into();
        assert!(
            !self.attrs.iter().any(|a| a.name == name),
            "duplicate attribute {name:?}"
        );
        self.attrs.push(Attribute { name, ty });
        self
    }

    /// Finalizes the schema.
    pub fn build(self) -> Schema {
        Schema {
            name: self.name,
            attrs: self.attrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> Schema {
        Schema::builder("emp")
            .attr("name", AttrType::Str)
            .attr("age", AttrType::Int)
            .attr("salary", AttrType::Int)
            .attr("dept", AttrType::Str)
            .build()
    }

    #[test]
    fn lookup() {
        let s = emp();
        assert_eq!(s.name(), "emp");
        assert_eq!(s.arity(), 4);
        assert_eq!(s.attr_index("salary"), Some(2));
        assert_eq!(s.attr_index("nope"), None);
        assert_eq!(s.attr("age").unwrap().ty, AttrType::Int);
    }

    #[test]
    fn display() {
        assert_eq!(
            emp().to_string(),
            "emp(name: str, age: int, salary: int, dept: str)"
        );
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicate_attr_panics() {
        Schema::builder("r")
            .attr("a", AttrType::Int)
            .attr("a", AttrType::Int)
            .build();
    }
}
