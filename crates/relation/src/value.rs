//! Typed attribute values with a total order.
//!
//! The paper's predicates run over "totally ordered domains" with only
//! `{<, =, >}` required. [`Value`] provides that order for the SQL-ish
//! scalar types a database rule system needs. Floats use `total_cmp`, so
//! the order is genuinely total (`Eq`/`Ord` are safe to implement);
//! cross-type comparisons fall back to a type-tag order, which a
//! well-typed schema never exercises.

use std::cmp::Ordering;
use std::fmt;

/// Attribute type tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    Bool,
    Int,
    Float,
    Str,
}

impl fmt::Display for AttrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrType::Bool => write!(f, "bool"),
            AttrType::Int => write!(f, "int"),
            AttrType::Float => write!(f, "float"),
            AttrType::Str => write!(f, "str"),
        }
    }
}

/// A scalar value in a tuple or a predicate constant.
#[derive(Debug, Clone)]
pub enum Value {
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// The type of this value.
    pub fn attr_type(&self) -> AttrType {
        match self {
            Value::Bool(_) => AttrType::Bool,
            Value::Int(_) => AttrType::Int,
            Value::Float(_) => AttrType::Float,
            Value::Str(_) => AttrType::Str,
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// Coerces this value to `ty` where the conversion is exact enough
    /// for predicate constants (`Int` → `Float`). Returns `None` for any
    /// other mismatch.
    pub fn coerce_to(&self, ty: AttrType) -> Option<Value> {
        if self.attr_type() == ty {
            return Some(self.clone());
        }
        match (self, ty) {
            (Value::Int(i), AttrType::Float) => Some(Value::Float(*i as f64)),
            _ => None,
        }
    }

    /// A numeric image of the value for R-tree coordinates. Strings map
    /// through their first eight bytes (order-preserving on the prefix,
    /// scaled to stay inside the R-tree's finite world bounds), which is
    /// the lossy flattening the §2.4 baseline needs; exact comparisons
    /// still happen in the residual predicate test.
    pub fn as_f64_lossy(&self) -> f64 {
        match self {
            Value::Bool(b) => *b as u8 as f64,
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            Value::Str(s) => {
                let mut bytes = [0u8; 8];
                for (i, b) in s.bytes().take(8).enumerate() {
                    bytes[i] = b;
                }
                // >> 14 keeps the image below 1.13e15 (inside any finite
                // world box) while preserving prefix order.
                (u64::from_be_bytes(bytes) >> 14) as f64
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            // Mixed numeric comparison: promote the int.
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Bool(b) => {
                0u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                1u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_within_types() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.5) < Value::Float(2.0));
        assert!(Value::str("a") < Value::str("b"));
        assert!(Value::Bool(false) < Value::Bool(true));
    }

    #[test]
    fn mixed_numeric_ordering() {
        assert!(Value::Int(1) < Value::Float(1.5));
        assert!(Value::Float(0.5) < Value::Int(1));
        assert_eq!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn nan_is_ordered() {
        // total_cmp puts NaN above +inf; what matters is consistency.
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(Value::Float(1.0) < nan);
    }

    #[test]
    fn coercion() {
        assert_eq!(
            Value::Int(3).coerce_to(AttrType::Float),
            Some(Value::Float(3.0))
        );
        assert_eq!(Value::str("x").coerce_to(AttrType::Int), None);
        assert_eq!(Value::Int(3).coerce_to(AttrType::Int), Some(Value::Int(3)));
    }

    #[test]
    fn lossy_f64_preserves_prefix_order() {
        let a = Value::str("apple").as_f64_lossy();
        let b = Value::str("banana").as_f64_lossy();
        assert!(a < b);
    }
}
