//! # Main-memory relational substrate
//!
//! The DBMS context the paper assumes: typed values over totally ordered
//! domains, schemas, tuples, slotted in-memory relations, a catalog, and
//! the two things the predicate-matching layer needs from the engine —
//! **tuple change events** (each new or modified tuple must be matched,
//! §1) and **optimizer selectivity estimates** (used to choose which
//! clause of a conjunctive predicate gets indexed, §4).

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

mod catalog;
pub mod codec;
pub mod fx;
mod relation;
mod schema;
pub mod stats;
mod value;

pub use catalog::{Catalog, CatalogError, Database, TupleEvent};
pub use relation::{Relation, RelationError, Tuple, TupleId};
pub use schema::{Attribute, Schema, SchemaBuilder};
pub use stats::{default_selectivity, ColumnStats};
pub use value::{AttrType, Value};
