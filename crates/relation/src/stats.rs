//! Optimizer statistics: equi-depth histograms and selectivity
//! estimates.
//!
//! The paper's indexing scheme needs one thing from the query optimizer:
//! when a predicate conjoins several indexable clauses, "the most
//! selective one is placed in the IBS-tree (selectivity estimates are
//! obtained from the query optimizer)" (§4). This module supplies those
//! estimates: an equi-depth histogram plus a distinct-value count per
//! column, with System-R-style magic numbers as the fallback when a
//! column has never been analyzed.

use crate::value::Value;
use interval::{Interval, Lower, Upper};

/// Default selectivities when no statistics exist, in the spirit of
/// Selinger et al. \[S\*79\]: equality is assumed rarest, a two-sided range
/// next, a one-sided range broadest.
pub mod defaults {
    /// `attr = c` with no stats.
    pub const EQUALITY: f64 = 0.01;
    /// `c1 ≤ attr ≤ c2` with no stats.
    pub const CLOSED_RANGE: f64 = 0.05;
    /// `attr ≤ c` / `attr ≥ c` with no stats.
    pub const OPEN_RANGE: f64 = 0.33;
}

/// Per-column statistics built from data.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Equi-depth bucket boundaries: `bounds[0]` = min, last = max, with
    /// approximately equal row counts between consecutive entries.
    bounds: Vec<Value>,
    /// Total rows sampled.
    rows: usize,
    /// Distinct values seen.
    distinct: usize,
}

impl ColumnStats {
    /// Number of histogram buckets built (when enough data exists).
    pub const BUCKETS: usize = 32;

    /// Builds stats from a column of values.
    pub fn from_values(mut values: Vec<Value>) -> Self {
        values.sort();
        let rows = values.len();
        let mut distinct = 0;
        for i in 0..values.len() {
            if i == 0 || values[i] != values[i - 1] {
                distinct += 1;
            }
        }
        let mut bounds = Vec::new();
        if !values.is_empty() {
            let buckets = Self::BUCKETS.min(rows);
            for b in 0..=buckets {
                let ix = (b * (rows - 1)) / buckets.max(1);
                // Duplicate boundaries are deliberately kept: a value
                // spanning many boundaries is exactly how an equi-depth
                // histogram represents a heavy hitter.
                bounds.push(values[ix].clone());
            }
        }
        ColumnStats {
            bounds,
            rows,
            distinct,
        }
    }

    /// Rows sampled.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Distinct values seen.
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// Fraction of the column ≤ `v` (0 at/below min, 1 at/above max),
    /// linearly interpolated by bucket position.
    fn fraction_at_most(&self, v: &Value) -> f64 {
        if self.bounds.is_empty() {
            return 0.5;
        }
        if v < &self.bounds[0] {
            return 0.0;
        }
        let last = self.bounds.len() - 1;
        if v >= &self.bounds[last] {
            return 1.0;
        }
        // Position of the first boundary above v.
        let pos = self.bounds.partition_point(|b| b <= v);
        pos as f64 / (last + 1) as f64
    }

    /// Estimated fraction of rows whose value lies in `iv`.
    pub fn selectivity(&self, iv: &Interval<Value>) -> f64 {
        if self.rows == 0 {
            return default_selectivity(iv);
        }
        if iv.is_point() {
            return (1.0 / self.distinct.max(1) as f64).min(1.0);
        }
        let hi_frac = match iv.hi() {
            Upper::Unbounded => 1.0,
            Upper::Inclusive(v) | Upper::Exclusive(v) => self.fraction_at_most(v),
        };
        let lo_frac = match iv.lo() {
            Lower::Unbounded => 0.0,
            Lower::Inclusive(v) | Lower::Exclusive(v) => self.fraction_at_most(v),
        };
        // Clamp away from exactly 0 so "most selective" stays a ranking,
        // not a hard zero that would erase ordering between clauses.
        (hi_frac - lo_frac).max(1.0 / self.rows.max(1) as f64)
    }
}

/// The stats-free fallback estimate for a clause interval.
pub fn default_selectivity(iv: &Interval<Value>) -> f64 {
    if iv.is_point() {
        defaults::EQUALITY
    } else {
        let lo_open = iv.lo().value().is_none();
        let hi_open = iv.hi().value().is_none();
        match (lo_open, hi_open) {
            (false, false) => defaults::CLOSED_RANGE,
            (true, true) => 1.0,
            _ => defaults::OPEN_RANGE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_ints(n: i64) -> ColumnStats {
        ColumnStats::from_values((0..n).map(Value::Int).collect())
    }

    #[test]
    fn equality_uses_distinct_count() {
        let s = uniform_ints(1000);
        let sel = s.selectivity(&Interval::point(Value::Int(42)));
        assert!((sel - 0.001).abs() < 1e-9, "sel = {sel}");
    }

    #[test]
    fn range_selectivity_tracks_width() {
        let s = uniform_ints(1000);
        let quarter = s.selectivity(&Interval::closed(Value::Int(0), Value::Int(250)));
        assert!((0.15..=0.35).contains(&quarter), "quarter = {quarter}");
        let half = s.selectivity(&Interval::closed(Value::Int(250), Value::Int(750)));
        assert!((0.4..=0.6).contains(&half), "half = {half}");
        let all = s.selectivity(&Interval::closed(Value::Int(-10), Value::Int(2000)));
        assert!(all > 0.95, "all = {all}");
    }

    #[test]
    fn open_ended_ranges() {
        let s = uniform_ints(1000);
        let below = s.selectivity(&Interval::at_most(Value::Int(100)));
        assert!((0.05..=0.2).contains(&below), "below = {below}");
        let above = s.selectivity(&Interval::at_least(Value::Int(900)));
        assert!((0.05..=0.2).contains(&above), "above = {above}");
    }

    #[test]
    fn out_of_range_is_minimal() {
        let s = uniform_ints(100);
        let sel = s.selectivity(&Interval::closed(Value::Int(5000), Value::Int(6000)));
        assert!(sel <= 0.011, "sel = {sel}");
    }

    #[test]
    fn empty_column_falls_back() {
        let s = ColumnStats::from_values(vec![]);
        assert_eq!(
            s.selectivity(&Interval::point(Value::Int(1))),
            defaults::EQUALITY
        );
    }

    #[test]
    fn defaults_rank_sensibly() {
        let eq = default_selectivity(&Interval::point(Value::Int(1)));
        let range = default_selectivity(&Interval::closed(Value::Int(1), Value::Int(5)));
        let open = default_selectivity(&Interval::at_least(Value::Int(1)));
        assert!(eq < range && range < open);
    }

    #[test]
    fn skewed_distribution() {
        // 90% of the mass at value 7.
        let mut vals: Vec<Value> = vec![Value::Int(7); 900];
        vals.extend((0..100).map(|i| Value::Int(i * 100)));
        let s = ColumnStats::from_values(vals);
        let tail = s.selectivity(&Interval::closed(Value::Int(5000), Value::Int(9900)));
        assert!(tail < 0.2, "tail = {tail}");
    }
}
