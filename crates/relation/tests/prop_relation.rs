//! Property tests on the relational substrate: total-order axioms for
//! [`Value`], histogram selectivity behavior, and relation storage
//! round-trips.

use interval::Interval;
use proptest::prelude::*;
use relation::{AttrType, ColumnStats, Relation, Schema, Value};

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        (-1000i64..1000).prop_map(Value::Int),
        (-1000i64..1000).prop_map(|i| Value::Float(i as f64 / 4.0)),
        prop_oneof![Just(f64::NAN), Just(f64::INFINITY), Just(f64::NEG_INFINITY)]
            .prop_map(Value::Float),
        "[a-z]{0,6}".prop_map(Value::str),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `Ord` on Value is a total order: antisymmetric, transitive, and
    /// consistent with `Eq` — even with NaN and mixed types in play.
    #[test]
    fn value_order_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Consistency with Eq.
        prop_assert_eq!(a == b, a.cmp(&b) == Ordering::Equal);
        // Transitivity (check via sorted triple).
        let mut v = [a.clone(), b.clone(), c.clone()];
        v.sort();
        prop_assert!(v[0] <= v[1] && v[1] <= v[2]);
        prop_assert!(v[0] <= v[2]);
        // Reflexivity.
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    /// Equal values hash equally.
    #[test]
    fn value_hash_consistent_with_eq(a in arb_value(), b in arb_value()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        if a == b {
            prop_assert_eq!(h(&a), h(&b));
        }
    }

    /// The lossy f64 image is monotone (never inverts an ordering),
    /// which is what the R-tree baseline's correctness rests on.
    #[test]
    fn lossy_f64_is_monotone(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let (va, vb) = (Value::Int(a), Value::Int(b));
        if va < vb {
            prop_assert!(va.as_f64_lossy() <= vb.as_f64_lossy());
        }
    }

    /// Same for strings (prefix order).
    #[test]
    fn lossy_f64_strings_monotone(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
        let (va, vb) = (Value::str(a), Value::str(b));
        if va < vb {
            prop_assert!(va.as_f64_lossy() <= vb.as_f64_lossy());
        }
    }

    /// Selectivity lies in (0, 1] and grows with interval inclusion
    /// (over non-degenerate ranges).
    #[test]
    fn selectivity_bounds_and_monotonicity(
        data in prop::collection::vec(-500i64..500, 1..300),
        lo in -600i64..600,
        w1 in 0i64..200,
        w2 in 0i64..200,
    ) {
        let stats = ColumnStats::from_values(data.into_iter().map(Value::Int).collect());
        let narrow = Interval::closed(Value::Int(lo), Value::Int(lo + w1));
        let wide = Interval::closed(Value::Int(lo), Value::Int(lo + w1 + w2));
        let s_narrow = stats.selectivity(&narrow);
        let s_wide = stats.selectivity(&wide);
        prop_assert!(s_narrow > 0.0 && s_narrow <= 1.0, "narrow = {}", s_narrow);
        prop_assert!(s_wide > 0.0 && s_wide <= 1.0, "wide = {}", s_wide);
        prop_assert!(s_narrow <= s_wide + 1e-12, "monotonicity: {} > {}", s_narrow, s_wide);
    }

    /// Relation storage: insert/update/delete round-trips arbitrary
    /// value sequences and keeps ids stable.
    #[test]
    fn relation_storage_round_trip(rows in prop::collection::vec((any::<i64>(), "[a-z]{0,5}"), 1..40)) {
        let mut r = Relation::new(
            Schema::builder("t")
                .attr("n", AttrType::Int)
                .attr("s", AttrType::Str)
                .build(),
        );
        let mut ids = Vec::new();
        for (n, s) in &rows {
            let id = r.insert(vec![Value::Int(*n), Value::str(s.clone())]).unwrap();
            ids.push(id);
        }
        prop_assert_eq!(r.len(), rows.len());
        for (id, (n, s)) in ids.iter().zip(&rows) {
            let t = r.get(*id).unwrap();
            prop_assert_eq!(t.get(0), &Value::Int(*n));
            prop_assert_eq!(t.get(1), &Value::str(s.clone()));
        }
        // Delete every other row; survivors stay addressable.
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                r.delete(*id).unwrap();
            }
        }
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 1 {
                prop_assert!(r.get(*id).is_some());
            } else {
                prop_assert!(r.get(*id).is_none());
            }
        }
    }
}
