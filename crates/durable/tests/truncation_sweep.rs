//! Kill-at-every-byte-offset: run a scripted workload, then simulate a
//! crash at **every possible WAL prefix length** and assert each
//! recovery lands exactly on the state after some prefix of the
//! operation history — never a panic, never a torn half-operation.

mod common;

use common::{apply_both, fingerprint, test_actions, Cmd, TempDir};
use durable::{
    parse_wal, replay, ActionSpec, DurableRuleEngine, Options, RuleSpec, SyncPolicy, SNAPSHOT_FILE,
    WAL_FILE,
};
use predicate::FunctionRegistry;
use relation::{AttrType, Database, Schema, Value};
use rules::{EventMask, RuleEngine};

fn emp_schema() -> Schema {
    Schema::builder("emp")
        .attr("name", AttrType::Str)
        .attr("salary", AttrType::Int)
        .build()
}

fn script() -> Vec<Cmd> {
    let spec = |name: &str, cond: &str, mask, priority, action| RuleSpec {
        name: name.into(),
        condition: cond.into(),
        mask,
        priority,
        action,
    };
    vec![
        Cmd::Create(emp_schema()),
        Cmd::Create(Schema::builder("audit").attr("n", AttrType::Int).build()),
        Cmd::AddRule(spec(
            "underpaid",
            "emp.salary < 15000",
            EventMask::INSERT_UPDATE,
            0,
            ActionSpec::Log("below minimum".into()),
        )),
        Cmd::AddRule(spec(
            "vip",
            "emp.salary > 100000",
            EventMask::ALL,
            5,
            ActionSpec::Named("cascade".into()),
        )),
        Cmd::Insert("emp".into(), vec![Value::str("al"), Value::Int(9_000)]),
        Cmd::Insert("emp".into(), vec![Value::str("bo"), Value::Int(120_000)]),
        Cmd::Insert("emp".into(), vec![Value::str("cy"), Value::Int(50_000)]),
        Cmd::UpdateNth("emp".into(), 0, vec![Value::str("al"), Value::Int(16_000)]),
        Cmd::UpdateNth("emp".into(), 1, vec![Value::str("bo"), Value::Int(14_000)]),
        Cmd::DeleteNth("emp".into(), 2),
        Cmd::Insert("emp".into(), vec![Value::str("dd"), Value::Int(200_000)]),
        Cmd::Batch(
            "emp".into(),
            vec![
                vec![Value::str("e1"), Value::Int(1_000)],
                vec![Value::str("e2"), Value::Int(1_000_000)],
                vec![Value::str("e3"), Value::Int(77)],
            ],
        ),
        Cmd::RemoveRule(0),
        Cmd::Insert("emp".into(), vec![Value::str("ff"), Value::Int(1_000)]),
        // Engine-level failures must replay as the same failures.
        Cmd::Create(emp_schema()),
        Cmd::Insert("nope".into(), vec![Value::Int(1)]),
        Cmd::Drop("audit".into()),
        // The cascade's target is gone: the chain now errors midway,
        // deterministically.
        Cmd::Insert("emp".into(), vec![Value::str("gg"), Value::Int(500_000)]),
        // An unsatisfiable condition (empty intersection) survives the
        // log → snapshot → log round trip.
        Cmd::AddRule(spec(
            "impossible",
            "emp.salary < 0 and emp.salary > 0",
            EventMask::ALL,
            1,
            ActionSpec::Log("never".into()),
        )),
        Cmd::Insert("emp".into(), vec![Value::str("hh"), Value::Int(60_000)]),
        Cmd::Drop("emp".into()),
        Cmd::Insert("emp".into(), vec![Value::str("ii"), Value::Int(1)]),
        Cmd::Create(Schema::builder("emp2").attr("v", AttrType::Int).build()),
        Cmd::AddRule(spec(
            "emp2pos",
            "emp2.v >= 10",
            EventMask::ALL,
            0,
            ActionSpec::Log("big".into()),
        )),
        Cmd::Insert("emp2".into(), vec![Value::Int(12)]),
        Cmd::RemoveRule(99),
        Cmd::Insert("emp2".into(), vec![Value::Int(3)]),
    ]
}

/// Runs the script in `dir`, returning the expected fingerprint after
/// each logged record (`expected[k]` = state once `k` records
/// applied) plus the final WAL and snapshot bytes.
fn run_script(dir: &TempDir) -> (Vec<String>, Vec<u8>, Vec<u8>) {
    let actions = test_actions();
    let mut durable = DurableRuleEngine::open(
        dir.path(),
        FunctionRegistry::default(),
        actions.clone(),
        Options {
            sync: SyncPolicy::Manual,
            snapshot_every: None,
        },
    )
    .unwrap();
    let mut shadow = RuleEngine::new(Database::new());

    let mut expected = vec![fingerprint(&shadow)];
    assert_eq!(
        fingerprint(durable.engine()),
        expected[0],
        "fresh open must equal a fresh engine"
    );
    for cmd in script() {
        let seq_before = durable.next_seq();
        apply_both(&cmd, &mut durable, &mut shadow, &actions);
        assert_eq!(
            fingerprint(durable.engine()),
            fingerprint(&shadow),
            "live state diverged after {cmd:?}"
        );
        // One fingerprint per *logged record* (position-resolved ops
        // that found no target log nothing).
        if durable.next_seq() > seq_before {
            expected.push(fingerprint(&shadow));
        }
    }
    durable.sync().unwrap();
    let wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
    let snap = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
    (expected, wal, snap)
}

#[test]
fn recovery_from_every_byte_prefix_is_a_clean_op_prefix() {
    let build_dir = TempDir::new("sweep-build");
    let (expected, wal_bytes, snap_bytes) = run_script(&build_dir);
    let frame_ends = parse_wal(&wal_bytes).frame_ends;
    assert_eq!(
        frame_ends.len() + 1,
        expected.len(),
        "one expected state per record plus the base"
    );
    // The script must have logged a meaningful number of operations.
    assert!(frame_ends.len() >= 20, "script too short to be a sweep");

    let funcs = FunctionRegistry::default();
    let actions = test_actions();
    let crash = TempDir::new("sweep-crash");
    for cut in 0..=wal_bytes.len() {
        std::fs::write(crash.join(SNAPSHOT_FILE), &snap_bytes).unwrap();
        std::fs::write(crash.join(WAL_FILE), &wal_bytes[..cut]).unwrap();
        let recovered = replay(crash.path(), &funcs, &actions)
            .unwrap_or_else(|e| panic!("recovery failed at cut {cut}: {e}"));
        let k = frame_ends.iter().filter(|&&e| e <= cut as u64).count();
        assert_eq!(
            fingerprint(&recovered.engine),
            expected[k],
            "cut at byte {cut} did not recover to op-prefix {k}"
        );
    }
}

#[test]
fn reopen_after_clean_shutdown_preserves_everything() {
    let dir = TempDir::new("reopen");
    let actions = test_actions();
    let opts = Options {
        sync: SyncPolicy::EveryN(4),
        snapshot_every: Some(7), // force several snapshot cycles mid-script
    };
    let mut durable = DurableRuleEngine::open(
        dir.path(),
        FunctionRegistry::default(),
        actions.clone(),
        opts,
    )
    .unwrap();
    let mut shadow = RuleEngine::new(Database::new());
    for cmd in script() {
        apply_both(&cmd, &mut durable, &mut shadow, &actions);
    }
    let want = fingerprint(durable.engine());
    assert_eq!(want, fingerprint(&shadow));
    drop(durable);

    let reopened =
        DurableRuleEngine::open(dir.path(), FunctionRegistry::default(), actions, opts).unwrap();
    assert_eq!(fingerprint(reopened.engine()), want);
}
