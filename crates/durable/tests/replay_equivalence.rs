//! Randomized crash-recovery equivalence: drive a [`DurableRuleEngine`]
//! and an in-memory shadow through the same random command stream
//! (with random snapshot/sync points mixed in), then recover from disk
//! and require the replayed engine to be operation-for-operation
//! equivalent — same relation contents and tuple ids, same rules and
//! fire counts, same log lines, and the same firing behavior on fresh
//! probe inserts.

mod common;

use common::{apply_both, fingerprint, test_actions, Cmd, TempDir};
use durable::{replay, ActionSpec, DurableRuleEngine, Options, RuleSpec, SyncPolicy};
use predicate::FunctionRegistry;
use proptest::prelude::*;
use relation::{AttrType, Database, Schema, Value};
use rules::{EventMask, RuleEngine};

/// A scripted step: an engine command or a durability control point.
#[derive(Debug, Clone)]
enum Step {
    C(Cmd),
    Snapshot,
    Sync,
}

const RELS: [&str; 3] = ["emp", "dept", "audit"];

fn schema_for(r: usize) -> Schema {
    match RELS[r] {
        "emp" => Schema::builder("emp")
            .attr("a", AttrType::Int)
            .attr("s", AttrType::Str)
            .build(),
        "dept" => Schema::builder("dept").attr("b", AttrType::Int).build(),
        _ => Schema::builder("audit").attr("n", AttrType::Int).build(),
    }
}

const CONDS: [&str; 11] = [
    "emp.a > 10",
    "emp.a < 0 or emp.a > 90",
    "isodd(emp.a)",
    "dept.b >= 5",
    "emp.s = \"mx\"",
    "emp.a < 0 and emp.a > 0", // unsatisfiable
    "emp.a >= 0 and emp.s < \"zz\"",
    "emp.a > 5 or dept.b < 2",
    // Multi-premise join conditions: the beta memos these build must
    // survive snapshot + WAL replay bit-identically.
    "emp.a = dept.b",
    "emp.a = dept.b and dept.b > 0",
    "emp.a = dept.b and dept.b = audit.n",
];

const STRS: [&str; 4] = ["", "a", "mx", "zz"];

fn rule_spec(cond: usize, mask: usize, priority: i32, named: bool) -> RuleSpec {
    RuleSpec {
        name: format!("r{cond}-{mask}"),
        condition: CONDS[cond].into(),
        mask: match mask {
            0 => EventMask::ALL,
            1 => EventMask::INSERT_UPDATE,
            _ => EventMask {
                on_insert: false,
                on_update: false,
                on_delete: true,
            },
        },
        priority,
        action: if named {
            ActionSpec::Named("cascade".into())
        } else {
            ActionSpec::Log("hit".into())
        },
    }
}

fn row_for(r: usize, v: i64, s: usize) -> Vec<Value> {
    match RELS[r] {
        "emp" => vec![Value::Int(v), Value::str(STRS[s])],
        _ => vec![Value::Int(v)],
    }
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        1 => (0usize..3).prop_map(|r| Step::C(Cmd::Create(schema_for(r)))),
        1 => (0usize..3).prop_map(|r| Step::C(Cmd::Drop(RELS[r].into()))),
        3 => (0usize..11, 0usize..3, -1i32..3, any::<bool>())
            .prop_map(|(c, m, p, named)| Step::C(Cmd::AddRule(rule_spec(c, m, p, named)))),
        1 => (0u32..8).prop_map(|id| Step::C(Cmd::RemoveRule(id))),
        8 => (0usize..3, -100i64..100, 0usize..4)
            .prop_map(|(r, v, s)| Step::C(Cmd::Insert(RELS[r].into(), row_for(r, v, s)))),
        3 => (0usize..3, 0usize..6, -100i64..100, 0usize..4)
            .prop_map(|(r, n, v, s)| Step::C(Cmd::UpdateNth(RELS[r].into(), n, row_for(r, v, s)))),
        2 => (0usize..3, 0usize..6).prop_map(|(r, n)| Step::C(Cmd::DeleteNth(RELS[r].into(), n))),
        2 => (0usize..3, -100i64..100, 1usize..5).prop_map(|(r, v, k)| {
            Step::C(Cmd::Batch(
                RELS[r].into(),
                (0..k).map(|i| row_for(r, v + i as i64, i % 4)).collect(),
            ))
        }),
        1 => Just(Step::Snapshot),
        1 => Just(Step::Sync),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn recovered_engine_is_operation_equivalent(
        steps in prop::collection::vec(arb_step(), 1..45),
        snapshot_every in prop_oneof![Just(None), Just(Some(3u64)), Just(Some(9u64))],
    ) {
        let dir = TempDir::new("equiv");
        let funcs = FunctionRegistry::default();
        let actions = test_actions();
        let mut durable = DurableRuleEngine::open(
            dir.path(),
            funcs.clone(),
            actions.clone(),
            Options { sync: SyncPolicy::Manual, snapshot_every },
        )
        .unwrap();
        let mut shadow = RuleEngine::new(Database::new());

        // Fixed prelude so random suffixes usually have something to hit.
        let prelude = [
            Step::C(Cmd::Create(schema_for(0))),
            Step::C(Cmd::Create(schema_for(1))),
            Step::C(Cmd::Create(schema_for(2))),
            Step::C(Cmd::AddRule(rule_spec(0, 0, 0, true))),
            Step::C(Cmd::AddRule(rule_spec(3, 1, 2, false))),
            Step::C(Cmd::AddRule(rule_spec(8, 0, 1, false))),
        ];
        for step in prelude.iter().chain(steps.iter()) {
            match step {
                Step::C(cmd) => apply_both(cmd, &mut durable, &mut shadow, &actions),
                Step::Snapshot => durable.snapshot().unwrap(),
                Step::Sync => durable.sync().unwrap(),
            }
        }
        prop_assert_eq!(
            fingerprint(durable.engine()),
            fingerprint(&shadow),
            "live divergence before crash"
        );

        // Simulate a crash with everything flushed, then recover.
        durable.sync().unwrap();
        drop(durable);
        let recovered = replay(dir.path(), &funcs, &actions).expect("recovery");
        let mut rec = recovered.engine;
        prop_assert_eq!(fingerprint(&rec), fingerprint(&shadow), "recovered state diverged");

        // The recovered engine must keep *behaving* identically: fire
        // the same rules on fresh probes.
        for (r, v) in [(0usize, 95i64), (0, -7), (1, 1), (2, 4)] {
            let rel = RELS[r];
            let a = rec.insert(rel, row_for(r, v, 2));
            let b = shadow.insert(rel, row_for(r, v, 2));
            prop_assert_eq!(a.is_ok(), b.is_ok(), "probe {} outcome diverged", rel);
            if let (Ok(a), Ok(b)) = (a, b) {
                prop_assert_eq!(a.fired, b.fired, "probe {} firings diverged", rel);
            }
        }
        prop_assert_eq!(fingerprint(&rec), fingerprint(&shadow), "post-probe divergence");
    }
}
