//! Flight-recorder integration: the durable engine's trace ring must
//! double as a post-mortem buffer.
//!
//! Two properties: an explicit dump captures the spans of recent WAL
//! work plus the metric exposition, and a corrupt snapshot makes the
//! open itself leave a dump behind before refusing.

mod common;

use common::{test_actions, TempDir};
use durable::{
    ActionSpec, DurableError, DurableRuleEngine, Options, RecoverError, RuleSpec, FLIGHT_DIR,
    SNAPSHOT_FILE,
};
use predicate::FunctionRegistry;
use relation::{AttrType, Schema, Value};
use rules::EventMask;
use std::sync::Arc;
use telemetry::{Registry, Tracer, DEFAULT_TRACE_CAPACITY};

fn open_traced(dir: &std::path::Path) -> Result<DurableRuleEngine, DurableError> {
    DurableRuleEngine::open_with_telemetry(
        dir,
        FunctionRegistry::default(),
        test_actions(),
        Options::default(),
        Arc::new(Registry::new()),
        Tracer::new(DEFAULT_TRACE_CAPACITY),
    )
}

/// Loads a small cascading workload (emp insert → audit insert).
fn run_workload(engine: &mut DurableRuleEngine) {
    engine
        .create_relation(Schema::builder("emp").attr("salary", AttrType::Int).build())
        .unwrap();
    engine
        .create_relation(Schema::builder("audit").attr("n", AttrType::Int).build())
        .unwrap();
    engine
        .add_rule(RuleSpec {
            name: "underpaid".into(),
            condition: "emp.salary < 1000".into(),
            mask: EventMask::INSERT_UPDATE,
            priority: 0,
            action: ActionSpec::Named("cascade".into()),
        })
        .unwrap();
    for salary in [500, 5_000, 700] {
        engine.insert("emp", vec![Value::Int(salary)]).unwrap();
    }
}

#[test]
fn explicit_dump_captures_wal_spans_and_metrics() {
    let dir = TempDir::new("flight-dump");
    let mut engine = open_traced(dir.path()).unwrap();
    run_workload(&mut engine);

    let path = engine.dump_flight("test-probe").unwrap();
    assert!(path.starts_with(dir.join(FLIGHT_DIR)));
    let text = std::fs::read_to_string(&path).unwrap();

    // The last insert's durability spans are in the ring...
    assert!(
        text.contains("\"wal_append\""),
        "no wal_append span:\n{text}"
    );
    assert!(text.contains("\"wal_fsync\""), "no wal_fsync span:\n{text}");
    // ...alongside the cascade spans the same insert produced...
    assert!(text.contains("\"cascade\""), "no cascade span:\n{text}");
    // ...and the counter exposition.
    assert!(text.contains("wal_appends_total"), "no metrics:\n{text}");
    assert!(
        text.contains("rules_fired_total"),
        "no rule counters:\n{text}"
    );
    assert!(text.contains("test-probe"), "reason missing:\n{text}");

    // Dumps snapshot rather than drain: a second dump sees the same
    // evidence.
    let second = engine.dump_flight("again").unwrap();
    assert_ne!(path, second);
    assert!(std::fs::read_to_string(&second)
        .unwrap()
        .contains("\"wal_append\""));
}

#[test]
fn corrupt_snapshot_leaves_a_flight_dump_on_open() {
    let dir = TempDir::new("flight-corrupt");
    {
        let mut engine = open_traced(dir.path()).unwrap();
        run_workload(&mut engine);
        engine.snapshot().unwrap();
    }
    // Damage the snapshot body; the checksum catches it on reopen.
    let snap_path = dir.join(SNAPSHOT_FILE);
    let mut bytes = std::fs::read(&snap_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x55;
    std::fs::write(&snap_path, &bytes).unwrap();

    let err = match open_traced(dir.path()) {
        Ok(_) => panic!("corrupt snapshot must refuse to open"),
        Err(e) => e,
    };
    assert!(
        matches!(err, DurableError::Recover(RecoverError::Corrupt { .. })),
        "unexpected error: {err}"
    );

    let flight = dir.join(FLIGHT_DIR);
    let dumps: Vec<_> = std::fs::read_dir(&flight)
        .expect("flight dir exists after corrupt open")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(dumps.len(), 1, "exactly one dump: {dumps:?}");
    let name = dumps[0].file_name().unwrap().to_string_lossy().into_owned();
    assert!(name.contains("recovery-corrupt"), "dump name: {name}");
    let text = std::fs::read_to_string(&dumps[0]).unwrap();
    // The dump holds whatever recovery traced before it refused.
    assert!(
        text.contains("recovery_snapshot_load"),
        "no recovery span in dump:\n{text}"
    );
}
