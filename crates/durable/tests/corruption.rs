//! Bit-flip fault injection.
//!
//! WAL: flipping any bit anywhere in the log must leave recovery
//! *working* — the damaged frame and everything after it are dropped,
//! and the recovered state equals the state after some prefix of the
//! operation history no longer than the damaged point.
//!
//! Snapshot: the snapshot is written atomically and checksummed, so
//! any damage there is a **hard error** — recovery must refuse (and
//! must not panic) rather than proceed from silently wrong state.

mod common;

use common::{apply_both, fingerprint, test_actions, Cmd, TempDir};
use durable::{
    parse_wal, replay, ActionSpec, DurableRuleEngine, Options, RuleSpec, SyncPolicy, SNAPSHOT_FILE,
    WAL_FILE,
};
use predicate::FunctionRegistry;
use relation::{AttrType, Database, Schema, Value};
use rules::{EventMask, RuleEngine};

/// A compact workload with rules, firings, and churn.
fn build(dir: &TempDir) -> (Vec<String>, Vec<u8>, Vec<u8>) {
    let actions = test_actions();
    let mut durable = DurableRuleEngine::open(
        dir.path(),
        FunctionRegistry::default(),
        actions.clone(),
        Options {
            sync: SyncPolicy::Manual,
            snapshot_every: None,
        },
    )
    .unwrap();
    let mut shadow = RuleEngine::new(Database::new());
    let cmds = vec![
        Cmd::Create(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("salary", AttrType::Int)
                .build(),
        ),
        Cmd::Create(Schema::builder("audit").attr("n", AttrType::Int).build()),
        Cmd::AddRule(RuleSpec {
            name: "vip".into(),
            condition: "emp.salary > 1000".into(),
            mask: EventMask::ALL,
            priority: 1,
            action: ActionSpec::Named("cascade".into()),
        }),
        Cmd::Insert("emp".into(), vec![Value::str("al"), Value::Int(2_000)]),
        Cmd::Insert("emp".into(), vec![Value::str("bo"), Value::Int(10)]),
        Cmd::UpdateNth("emp".into(), 1, vec![Value::str("bo"), Value::Int(5_000)]),
        Cmd::DeleteNth("emp".into(), 0),
        Cmd::Insert("emp".into(), vec![Value::str("cy"), Value::Int(9_999)]),
    ];
    let mut expected = vec![fingerprint(&shadow)];
    for cmd in cmds {
        let before = durable.next_seq();
        apply_both(&cmd, &mut durable, &mut shadow, &actions);
        if durable.next_seq() > before {
            expected.push(fingerprint(&shadow));
        }
    }
    durable.sync().unwrap();
    let wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
    let snap = std::fs::read(dir.join(SNAPSHOT_FILE)).unwrap();
    (expected, wal, snap)
}

#[test]
fn wal_bit_flips_recover_to_a_prefix_at_or_before_the_damage() {
    let build_dir = TempDir::new("flip-build");
    let (expected, wal_bytes, snap_bytes) = build(&build_dir);
    let frame_ends = parse_wal(&wal_bytes).frame_ends;
    assert!(frame_ends.len() >= 7);

    let funcs = FunctionRegistry::default();
    let actions = test_actions();
    let crash = TempDir::new("flip-crash");
    for pos in 0..wal_bytes.len() {
        for bit in [0u8, 3, 7] {
            let mut bad = wal_bytes.clone();
            bad[pos] ^= 1 << bit;
            std::fs::write(crash.join(SNAPSHOT_FILE), &snap_bytes).unwrap();
            std::fs::write(crash.join(WAL_FILE), &bad).unwrap();
            let recovered = replay(crash.path(), &funcs, &actions)
                .unwrap_or_else(|e| panic!("flip at byte {pos} bit {bit} broke recovery: {e}"));
            // The damaged byte lives in (or before) some frame; the
            // recovered state may not include that frame or anything
            // after it, but every earlier frame must survive intact.
            let ceiling = frame_ends.iter().filter(|&&e| e <= pos as u64).count();
            let got = fingerprint(&recovered.engine);
            let k = expected.iter().position(|f| *f == got).unwrap_or_else(|| {
                panic!("flip at byte {pos} bit {bit} recovered to a non-prefix state")
            });
            assert!(
                k <= ceiling + 1,
                "flip at byte {pos} bit {bit}: recovered {k} ops, damage caps it near {ceiling}"
            );
        }
    }
}

#[test]
fn snapshot_damage_is_always_refused() {
    let dir = TempDir::new("snap-flip");
    let (_, _, snap_bytes) = build(&dir);
    let funcs = FunctionRegistry::default();
    let actions = test_actions();

    let crash = TempDir::new("snap-flip-crash");
    for pos in 0..snap_bytes.len() {
        let mut bad = snap_bytes.clone();
        bad[pos] ^= 0x10;
        std::fs::write(crash.join(SNAPSHOT_FILE), &bad).unwrap();
        let res = replay(crash.path(), &funcs, &actions);
        assert!(res.is_err(), "snapshot flip at byte {pos} was not detected");
    }
    // And truncations.
    for cut in (0..snap_bytes.len()).step_by(7) {
        std::fs::write(crash.join(SNAPSHOT_FILE), &snap_bytes[..cut]).unwrap();
        assert!(replay(crash.path(), &funcs, &actions).is_err());
    }
}
