//! Durability-layer observability: WAL, snapshot, and recovery metrics
//! recorded through a registry attached at open time.

mod common;

use common::TempDir;
use durable::{ActionRegistry, ActionSpec, DurableRuleEngine, Options, RuleSpec, SyncPolicy};
use predicate::FunctionRegistry;
use relation::{AttrType, Schema, Value};
use rules::EventMask;
use std::sync::Arc;
use telemetry::Registry;

fn open(dir: &TempDir, registry: Arc<Registry>) -> DurableRuleEngine {
    DurableRuleEngine::open_with_metrics(
        dir.path(),
        FunctionRegistry::default(),
        ActionRegistry::new(),
        Options {
            sync: SyncPolicy::Always,
            snapshot_every: None,
        },
        registry,
    )
    .unwrap()
}

#[test]
fn wal_snapshot_and_recovery_metrics_flow_through_one_registry() {
    let dir = TempDir::new("metrics");
    let registry = Arc::new(Registry::new());
    let mut engine = open(&dir, registry.clone());

    engine
        .create_relation(Schema::builder("emp").attr("salary", AttrType::Int).build())
        .unwrap();
    engine
        .add_rule(RuleSpec {
            name: "underpaid".into(),
            condition: "emp.salary < 15000".into(),
            mask: EventMask::INSERT_UPDATE,
            priority: 0,
            action: ActionSpec::Log("below minimum".into()),
        })
        .unwrap();
    for salary in [9_000, 50_000, 7_000] {
        engine.insert("emp", vec![Value::Int(salary)]).unwrap();
    }

    // 1 create + 1 add_rule + 3 inserts, each synced immediately.
    assert_eq!(registry.counter_value("wal_appends_total"), Some(5));
    let (fsyncs, fsync_nanos) = registry.histogram_totals("wal_fsync_nanos").unwrap();
    assert_eq!(fsyncs, 5);
    assert!(fsync_nanos > 0);
    let bytes = registry.counter_value("wal_append_bytes_total").unwrap();
    assert!(bytes > 0);
    // A fresh directory had nothing to replay.
    assert_eq!(
        registry.counter_value("durable_recovery_frames_total"),
        Some(0)
    );

    // The whole stack records into the same registry.
    assert_eq!(registry.counter_value("rules_fired_total"), Some(2));
    assert_eq!(
        registry.counter_value("predindex_match_tuples_total"),
        Some(3)
    );

    engine.snapshot().unwrap();
    assert_eq!(registry.counter_value("durable_snapshots_total"), Some(1));
    let (snaps, _) = registry.histogram_totals("durable_snapshot_nanos").unwrap();
    assert_eq!(snaps, 1);
    let (count, size_sum) = registry.histogram_totals("durable_snapshot_bytes").unwrap();
    assert_eq!(count, 1);
    assert!(size_sum > 0);

    // Post-truncation appends keep counting on the same cells.
    engine.insert("emp", vec![Value::Int(100)]).unwrap();
    engine.insert("emp", vec![Value::Int(200)]).unwrap();
    assert_eq!(registry.counter_value("wal_appends_total"), Some(7));
    drop(engine);

    // Reopen: the snapshot covers the first five operations, so only
    // the two post-snapshot frames replay.
    let reopened_registry = Arc::new(Registry::new());
    let reopened = open(&dir, reopened_registry.clone());
    assert_eq!(
        reopened_registry.counter_value("durable_recovery_frames_total"),
        Some(2)
    );
    assert_eq!(
        reopened
            .engine()
            .db()
            .catalog()
            .relation("emp")
            .unwrap()
            .len(),
        5
    );
    // The exposition names the families an operator greps for.
    let text = reopened_registry.render_text();
    assert!(text.contains("# TYPE wal_fsync_nanos histogram"));
    assert!(text.contains("durable_recovery_frames_total 2"));
}

#[test]
fn plain_open_stays_dark() {
    let dir = TempDir::new("dark");
    let mut engine = DurableRuleEngine::open(
        dir.path(),
        FunctionRegistry::default(),
        ActionRegistry::new(),
        Options::default(),
    )
    .unwrap();
    engine
        .create_relation(Schema::builder("emp").attr("salary", AttrType::Int).build())
        .unwrap();
    engine.insert("emp", vec![Value::Int(1)]).unwrap();
    engine.snapshot().unwrap();
    assert!(!engine.metrics().is_enabled());
    assert!(engine.metrics().names().is_empty());
}
