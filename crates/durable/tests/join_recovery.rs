//! Crash recovery for join memos: the beta-layer partial-match state
//! is *not* persisted tuple-by-tuple — it is reseeded from the restored
//! relations — so these tests pin down the invariant that makes that
//! sound: the reseeded memo is fingerprint-identical to the pre-crash
//! incremental state, across snapshot boundaries, WAL suffixes, and
//! retractions in either of those windows.

mod common;

use common::{fingerprint, test_actions, TempDir};
use durable::{replay, ActionSpec, DurableRuleEngine, Options, RuleSpec, SyncPolicy};
use predicate::FunctionRegistry;
use relation::{AttrType, Schema, TupleId, Value};
use rules::EventMask;

fn open(dir: &std::path::Path) -> DurableRuleEngine {
    DurableRuleEngine::open(
        dir,
        FunctionRegistry::default(),
        test_actions(),
        Options {
            sync: SyncPolicy::Manual,
            snapshot_every: None,
        },
    )
    .unwrap()
}

fn setup(engine: &mut DurableRuleEngine) {
    engine
        .create_relation(
            Schema::builder("emp")
                .attr("a", AttrType::Int)
                .attr("s", AttrType::Str)
                .build(),
        )
        .unwrap();
    engine
        .create_relation(Schema::builder("dept").attr("b", AttrType::Int).build())
        .unwrap();
    engine
        .create_relation(Schema::builder("audit").attr("n", AttrType::Int).build())
        .unwrap();
    engine
        .add_rule(RuleSpec {
            name: "same-key".into(),
            condition: "emp.a = dept.b".into(),
            mask: EventMask::ALL,
            priority: 0,
            action: ActionSpec::Log("pair".into()),
        })
        .unwrap();
    engine
        .add_rule(RuleSpec {
            name: "three-way".into(),
            condition: "emp.a = dept.b and dept.b = audit.n".into(),
            mask: EventMask::ALL,
            priority: 1,
            action: ActionSpec::Log("triple".into()),
        })
        .unwrap();
}

fn emp(a: i64) -> Vec<Value> {
    vec![Value::Int(a), Value::str("x")]
}

/// Partial matches built before the snapshot, extended and retracted
/// by the WAL suffix: the recovered memo must digest identically and
/// keep behaving identically on fresh probes.
#[test]
fn join_memo_survives_snapshot_plus_wal_suffix() {
    let dir = TempDir::new("join-recovery");
    let mut engine = open(dir.path());
    setup(&mut engine);

    // Pre-snapshot: one complete pair match, several partials.
    engine.insert("emp", emp(1)).unwrap();
    engine.insert("emp", emp(2)).unwrap();
    engine.insert("dept", vec![Value::Int(1)]).unwrap();
    engine.snapshot().unwrap();

    // WAL suffix: complete the second pair, start a triple, retract
    // one emp so a partial disappears.
    engine.insert("dept", vec![Value::Int(2)]).unwrap();
    engine.insert("audit", vec![Value::Int(1)]).unwrap();
    engine.delete("emp", TupleId(1)).unwrap();
    engine.sync().unwrap();

    let live_fp = fingerprint(engine.engine());
    let live_join_fp = engine.engine().join_fingerprint();
    let live_stats = engine.engine().join_stats();
    drop(engine); // crash with everything flushed

    let recovered = replay(dir.path(), &FunctionRegistry::default(), &test_actions())
        .expect("recovery succeeds");
    let mut rec = recovered.engine;
    assert_eq!(rec.join_fingerprint(), live_join_fp, "memo digest diverged");
    assert_eq!(rec.join_stats(), live_stats, "memo shape diverged");
    assert_eq!(fingerprint(&rec), live_fp, "engine state diverged");

    // The reseeded memo must keep *extending* correctly: the deleted
    // emp #1 left dept 1 + audit 1 partials behind, so re-inserting
    // emp 1 completes both the pair and the triple again.
    let report = rec.insert("emp", emp(1)).unwrap();
    let names: Vec<&str> = report.fired.iter().map(|(_, n)| n.as_str()).collect();
    assert_eq!(names, ["three-way", "same-key"], "fired: {names:?}");
}

/// A snapshot taken *after* a retraction must not resurrect the
/// retracted partial on recovery (delete-then-recover must equal
/// delete-then-continue).
#[test]
fn retraction_before_snapshot_stays_retracted() {
    let dir = TempDir::new("join-retract-snap");
    let mut engine = open(dir.path());
    setup(&mut engine);

    engine.insert("emp", emp(7)).unwrap();
    engine.insert("dept", vec![Value::Int(7)]).unwrap();
    engine.delete("dept", TupleId(0)).unwrap();
    engine.snapshot().unwrap();
    engine.sync().unwrap();

    let live_join_fp = engine.engine().join_fingerprint();
    drop(engine);

    let recovered = replay(dir.path(), &FunctionRegistry::default(), &test_actions())
        .expect("recovery succeeds");
    let mut rec = recovered.engine;
    assert_eq!(rec.join_fingerprint(), live_join_fp);

    // Exactly one firing when the pair completes again — a resurrected
    // stale partial would double-fire.
    let report = rec.insert("dept", vec![Value::Int(7)]).unwrap();
    assert_eq!(report.fired.len(), 1);
    assert_eq!(report.fired[0].1, "same-key");
}

/// Recovery with *no* snapshot (pure WAL replay from genesis) also
/// reconstructs the memo, because replay re-executes every command
/// through the ordinary incremental path.
#[test]
fn pure_wal_replay_rebuilds_memo() {
    let dir = TempDir::new("join-wal-only");
    let mut engine = open(dir.path());
    setup(&mut engine);
    for a in 0..5 {
        engine.insert("emp", emp(a)).unwrap();
    }
    engine.insert("dept", vec![Value::Int(3)]).unwrap();
    engine.sync().unwrap();
    let live_join_fp = engine.engine().join_fingerprint();
    let live_fp = fingerprint(engine.engine());
    drop(engine);

    let recovered = replay(dir.path(), &FunctionRegistry::default(), &test_actions())
        .expect("recovery succeeds");
    assert_eq!(recovered.engine.join_fingerprint(), live_join_fp);
    assert_eq!(fingerprint(&recovered.engine), live_fp);
}
