//! Shared helpers for the durability fault-injection tests.
//!
//! Each integration-test binary compiles this module independently
//! and uses a different subset of it.
#![allow(dead_code)]

use durable::{ActionRegistry, ActionSpec, DurableRuleEngine, RuleSpec};
use predicate::FunctionRegistry;
use relation::{Schema, TupleId, Value};
use rules::{Action, Rule, RuleEngine, RuleId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

static COUNTER: AtomicU32 = AtomicU32::new(0);

/// A per-test scratch directory, removed on drop.
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    pub fn new(label: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!(
            "durable-it-{}-{}-{label}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).unwrap();
        TempDir { path }
    }

    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A deterministic rendering of everything observable about an engine:
/// relation contents (tuple ids included, so slot-reuse order
/// matters), rules with masks/priorities/fire counts, the counters,
/// and the log. Two engines with equal fingerprints are
/// operation-for-operation equivalent for our purposes; condition
/// *text* is deliberately excluded (its round-trip fidelity is covered
/// by matching-behavior probes and the predicate property tests).
pub fn fingerprint(engine: &RuleEngine) -> String {
    let mut out = String::new();
    let cat = engine.db().catalog();
    let mut rel_names: Vec<&str> = cat.relations().map(|r| r.schema().name()).collect();
    rel_names.sort_unstable();
    for name in rel_names {
        let rel = cat.relation(name).unwrap();
        out.push_str(&format!("relation {name} ["));
        for attr in rel.schema().attributes() {
            out.push_str(&format!("{}:{:?} ", attr.name, attr.ty));
        }
        out.push(']');
        let mut rows: Vec<String> = rel
            .iter()
            .map(|(id, t)| format!("#{}={:?}", id.0, t))
            .collect();
        rows.sort();
        for row in rows {
            out.push_str(&format!(" {row}"));
        }
        out.push('\n');
    }
    let mut rules: Vec<String> = engine
        .rules_detail()
        .map(|(id, rule, fired)| {
            format!(
                "rule {} {:?} mask={:?} prio={} conds={} fired={fired}\n",
                id.0,
                rule.name,
                rule.mask,
                rule.priority,
                rule.conditions.len()
            )
        })
        .collect();
    rules.sort();
    for r in rules {
        out.push_str(&r);
    }
    out.push_str(&format!(
        "next_rule={} total_fired={} limit={} join_fp={:#018x}\n",
        engine.next_rule_id(),
        engine.total_fired(),
        engine.firing_limit(),
        engine.join_fingerprint()
    ));
    for line in engine.log() {
        out.push_str("log ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// The action registry every fault-injection test uses: one named
/// callback that cascades an insert into `audit` (which carries no
/// rules, so the chain always terminates).
pub fn test_actions() -> ActionRegistry {
    let mut actions = ActionRegistry::new();
    actions.register("cascade", |ctx| {
        ctx.queue(rules::DbOp::Insert {
            relation: "audit".into(),
            values: vec![Value::Int(1)],
        });
    });
    actions
}

/// Builds the same live [`Rule`] a [`DurableRuleEngine`] builds from
/// `spec`, sharing the registry's action `Arc`s — the shadow engine's
/// rules must behave bit-identically.
pub fn shadow_rule(spec: &RuleSpec, actions: &ActionRegistry) -> Rule {
    let mut conditions = Vec::new();
    let mut joins = Vec::new();
    for cond in predicate::parse_conditions(&spec.condition, &FunctionRegistry::default())
        .expect("test spec")
    {
        match cond {
            predicate::ParsedCondition::Single(p) => conditions.push(p),
            predicate::ParsedCondition::Join(j) => joins.push(j),
        }
    }
    let action = match &spec.action {
        ActionSpec::Log(m) => Action::Log(m.clone()),
        ActionSpec::Named(n) => Action::Callback(actions.get(n).expect("registered")),
    };
    Rule {
        name: spec.name.clone(),
        conditions,
        joins,
        mask: spec.mask,
        action,
        priority: spec.priority,
    }
}

/// One scripted engine operation, with tuple targets named by
/// live-position so scripts stay valid as ids shift.
#[derive(Debug, Clone)]
pub enum Cmd {
    Create(Schema),
    Drop(String),
    AddRule(RuleSpec),
    RemoveRule(u32),
    Insert(String, Vec<Value>),
    /// Update the `n`-th live tuple of the relation (skipped, and not
    /// logged, if fewer exist).
    UpdateNth(String, usize, Vec<Value>),
    /// Delete the `n`-th live tuple of the relation.
    DeleteNth(String, usize),
    Batch(String, Vec<Vec<Value>>),
}

fn nth_live(engine: &RuleEngine, rel: &str, n: usize) -> Option<TupleId> {
    engine
        .db()
        .catalog()
        .relation(rel)?
        .iter()
        .map(|(id, _)| id)
        .nth(n)
}

/// Applies `cmd` to the durable engine and its in-memory shadow,
/// asserting both see the same outcome (success/failure and firing
/// sequence).
pub fn apply_both(
    cmd: &Cmd,
    durable: &mut DurableRuleEngine,
    shadow: &mut RuleEngine,
    actions: &ActionRegistry,
) {
    match cmd {
        Cmd::Create(schema) => {
            let a = durable.create_relation(schema.clone());
            let b = shadow.create_relation(schema.clone());
            assert_eq!(a.is_ok(), b.is_ok(), "create {:?}", schema.name());
        }
        Cmd::Drop(name) => {
            let a = durable.drop_relation(name);
            let b = shadow.drop_relation(name);
            assert_eq!(a.is_ok(), b.is_ok(), "drop {name:?}");
        }
        Cmd::AddRule(spec) => {
            let a = durable.add_rule(spec.clone());
            let b = shadow.add_rule(shadow_rule(spec, actions));
            assert!(
                a.is_ok() == b.is_ok(),
                "add_rule {:?}: durable={:?} shadow={:?}",
                spec.name,
                a.as_ref().err(),
                b.as_ref().err()
            );
            if let (Ok(a), Ok(b)) = (a, b) {
                assert_eq!(a, b, "rule id diverged for {:?}", spec.name);
            }
        }
        Cmd::RemoveRule(id) => {
            let a = durable.remove_rule(RuleId(*id));
            let b = shadow.remove_rule(RuleId(*id));
            assert_eq!(a.is_ok(), b.is_ok(), "remove_rule {id}");
        }
        Cmd::Insert(rel, values) => {
            let a = durable.insert(rel, values.clone());
            let b = shadow.insert(rel, values.clone());
            assert_reports(a.map_err(drop), b.map_err(drop), &format!("insert {rel}"));
        }
        Cmd::UpdateNth(rel, n, values) => {
            let Some(id) = nth_live(shadow, rel, *n) else {
                return;
            };
            let a = durable.update(rel, id, values.clone());
            let b = shadow.update(rel, id, values.clone());
            assert_reports(a.map_err(drop), b.map_err(drop), &format!("update {rel}"));
        }
        Cmd::DeleteNth(rel, n) => {
            let Some(id) = nth_live(shadow, rel, *n) else {
                return;
            };
            let a = durable.delete(rel, id);
            let b = shadow.delete(rel, id);
            assert_reports(a.map_err(drop), b.map_err(drop), &format!("delete {rel}"));
        }
        Cmd::Batch(rel, rows) => {
            let a = durable.insert_batch(rel, rows.clone());
            let b = shadow.insert_batch(rel, rows.clone());
            assert_reports(a.map_err(drop), b.map_err(drop), &format!("batch {rel}"));
        }
    }
}

fn assert_reports(a: Result<rules::FireReport, ()>, b: Result<rules::FireReport, ()>, what: &str) {
    match (a, b) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.fired, b.fired, "{what}: firing sequence diverged");
            assert_eq!(a.ops_applied, b.ops_applied, "{what}: op count diverged");
        }
        (Err(()), Err(())) => {}
        (a, b) => panic!("{what}: durable {:?} vs shadow {:?}", a.is_ok(), b.is_ok()),
    }
}
