//! Logical WAL records.
//!
//! The log is a *command* log: each record names a mutating engine
//! operation with its original arguments, and recovery re-executes the
//! commands against a rebuilt [`rules::RuleEngine`]. Replay is
//! deterministic — rule ids are allocated sequentially, the agenda is
//! totally ordered, and cascaded operations are a pure function of
//! engine state — so the replayed engine is operation-for-operation
//! identical to the lost one: same match sets, same fire counts, same
//! log lines.
//!
//! Records are self-describing binary values built on
//! [`relation::codec`]; framing (length, checksum, sequence number)
//! belongs to [`crate::wal`], not to the record encoding.

use relation::codec::{
    decode_schema, decode_value, encode_schema, encode_value, CodecError, Reader, Writer,
};
use relation::{Schema, Value};
use rules::EventMask;

/// How a rule's action is named in durable storage. Callbacks are
/// arbitrary native closures and cannot be serialized; durable rules
/// instead carry either a log message or the *name* of a callback the
/// application re-registers in its [`crate::ActionRegistry`] before
/// recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionSpec {
    /// [`rules::Action::Log`] with this message.
    Log(String),
    /// A named callback, resolved against the action registry.
    Named(String),
}

/// A durable rule definition: everything [`rules::Rule`] holds, with
/// the condition as source text and the action as an [`ActionSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpec {
    /// Rule name (diagnostics only, need not be unique).
    pub name: String,
    /// Condition in the predicate language; disjunctions allowed
    /// (split into conjunct predicates exactly as
    /// [`rules::RuleBuilder::when`] does).
    pub condition: String,
    /// Which tuple events trigger the rule.
    pub mask: EventMask,
    /// Agenda priority (higher fires first).
    pub priority: i32,
    /// The action to run on firing.
    pub action: ActionSpec,
}

/// One logged engine mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// `RuleEngine::create_relation`.
    CreateRelation { schema: Schema },
    /// `RuleEngine::drop_relation`.
    DropRelation { name: String },
    /// `RuleEngine::add_rule` (the spec is re-parsed on replay).
    AddRule { spec: RuleSpec },
    /// `RuleEngine::remove_rule`.
    RemoveRule { id: u32 },
    /// `RuleEngine::insert`.
    Insert {
        relation: String,
        values: Vec<Value>,
    },
    /// `RuleEngine::update`.
    Update {
        relation: String,
        id: u32,
        values: Vec<Value>,
    },
    /// `RuleEngine::delete`.
    Delete { relation: String, id: u32 },
    /// `RuleEngine::insert_batch`.
    InsertBatch {
        relation: String,
        rows: Vec<Vec<Value>>,
    },
}

const TAG_CREATE_RELATION: u8 = 0;
const TAG_DROP_RELATION: u8 = 1;
const TAG_ADD_RULE: u8 = 2;
const TAG_REMOVE_RULE: u8 = 3;
const TAG_INSERT: u8 = 4;
const TAG_UPDATE: u8 = 5;
const TAG_DELETE: u8 = 6;
const TAG_INSERT_BATCH: u8 = 7;

/// Packs an [`EventMask`] into a bitfield (bit 0 insert, 1 update,
/// 2 delete).
pub(crate) fn encode_mask(m: EventMask) -> u8 {
    (m.on_insert as u8) | (m.on_update as u8) << 1 | (m.on_delete as u8) << 2
}

pub(crate) fn decode_mask(b: u8) -> Result<EventMask, CodecError> {
    if b & !0b111 != 0 {
        return Err(CodecError::BadTag {
            what: "event mask",
            tag: b,
        });
    }
    Ok(EventMask {
        on_insert: b & 1 != 0,
        on_update: b & 2 != 0,
        on_delete: b & 4 != 0,
    })
}

pub(crate) fn encode_action(w: &mut Writer, a: &ActionSpec) {
    match a {
        ActionSpec::Log(msg) => {
            w.u8(0);
            w.str(msg);
        }
        ActionSpec::Named(name) => {
            w.u8(1);
            w.str(name);
        }
    }
}

pub(crate) fn decode_action(r: &mut Reader<'_>) -> Result<ActionSpec, CodecError> {
    match r.u8()? {
        0 => Ok(ActionSpec::Log(r.str()?)),
        1 => Ok(ActionSpec::Named(r.str()?)),
        tag => Err(CodecError::BadTag {
            what: "action spec",
            tag,
        }),
    }
}

pub(crate) fn encode_rule_spec(w: &mut Writer, s: &RuleSpec) {
    w.str(&s.name);
    w.str(&s.condition);
    w.u8(encode_mask(s.mask));
    w.i32(s.priority);
    encode_action(w, &s.action);
}

pub(crate) fn decode_rule_spec(r: &mut Reader<'_>) -> Result<RuleSpec, CodecError> {
    Ok(RuleSpec {
        name: r.str()?,
        condition: r.str()?,
        mask: decode_mask(r.u8()?)?,
        priority: r.i32()?,
        action: decode_action(r)?,
    })
}

fn encode_values(w: &mut Writer, values: &[Value]) {
    w.u32(values.len() as u32);
    for v in values {
        encode_value(w, v);
    }
}

fn decode_values(r: &mut Reader<'_>) -> Result<Vec<Value>, CodecError> {
    let n = r.u32()? as usize;
    // Each value costs at least 2 bytes; refuse counts the buffer
    // cannot possibly hold (corrupted lengths must not allocate).
    if n > r.remaining() {
        return Err(CodecError::Invalid(format!(
            "value count {n} exceeds remaining {}",
            r.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(decode_value(r)?);
    }
    Ok(out)
}

impl Record {
    /// Serializes the record payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Record::CreateRelation { schema } => {
                w.u8(TAG_CREATE_RELATION);
                encode_schema(&mut w, schema);
            }
            Record::DropRelation { name } => {
                w.u8(TAG_DROP_RELATION);
                w.str(name);
            }
            Record::AddRule { spec } => {
                w.u8(TAG_ADD_RULE);
                encode_rule_spec(&mut w, spec);
            }
            Record::RemoveRule { id } => {
                w.u8(TAG_REMOVE_RULE);
                w.u32(*id);
            }
            Record::Insert { relation, values } => {
                w.u8(TAG_INSERT);
                w.str(relation);
                encode_values(&mut w, values);
            }
            Record::Update {
                relation,
                id,
                values,
            } => {
                w.u8(TAG_UPDATE);
                w.str(relation);
                w.u32(*id);
                encode_values(&mut w, values);
            }
            Record::Delete { relation, id } => {
                w.u8(TAG_DELETE);
                w.str(relation);
                w.u32(*id);
            }
            Record::InsertBatch { relation, rows } => {
                w.u8(TAG_INSERT_BATCH);
                w.str(relation);
                w.u32(rows.len() as u32);
                for row in rows {
                    encode_values(&mut w, row);
                }
            }
        }
        w.into_bytes()
    }

    /// Deserializes a record payload; the whole buffer must be
    /// consumed (trailing garbage means a framing bug or corruption
    /// the checksum failed to catch).
    pub fn decode(buf: &[u8]) -> Result<Record, CodecError> {
        let (rec, consumed) = Record::decode_prefix(buf)?;
        if consumed != buf.len() {
            return Err(CodecError::Invalid(format!(
                "{} trailing bytes after record",
                buf.len() - consumed
            )));
        }
        Ok(rec)
    }

    /// Deserializes one record from the front of `buf`, returning it
    /// with the number of bytes consumed — for frames that carry a
    /// defined suffix after the record (the rule-server protocol's
    /// optional trace id). Unlike [`decode`](Self::decode), trailing
    /// bytes are the *caller's* to validate.
    pub fn decode_prefix(buf: &[u8]) -> Result<(Record, usize), CodecError> {
        let mut r = Reader::new(buf);
        let rec = match r.u8()? {
            TAG_CREATE_RELATION => Record::CreateRelation {
                schema: decode_schema(&mut r)?,
            },
            TAG_DROP_RELATION => Record::DropRelation { name: r.str()? },
            TAG_ADD_RULE => Record::AddRule {
                spec: decode_rule_spec(&mut r)?,
            },
            TAG_REMOVE_RULE => Record::RemoveRule { id: r.u32()? },
            TAG_INSERT => Record::Insert {
                relation: r.str()?,
                values: decode_values(&mut r)?,
            },
            TAG_UPDATE => Record::Update {
                relation: r.str()?,
                id: r.u32()?,
                values: decode_values(&mut r)?,
            },
            TAG_DELETE => Record::Delete {
                relation: r.str()?,
                id: r.u32()?,
            },
            TAG_INSERT_BATCH => {
                let relation = r.str()?;
                let n = r.u32()? as usize;
                if n > r.remaining() {
                    return Err(CodecError::Invalid(format!(
                        "row count {n} exceeds remaining {}",
                        r.remaining()
                    )));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(decode_values(&mut r)?);
                }
                Record::InsertBatch { relation, rows }
            }
            tag => {
                return Err(CodecError::BadTag {
                    what: "record",
                    tag,
                })
            }
        };
        Ok((rec, buf.len() - r.remaining()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relation::AttrType;

    fn samples() -> Vec<Record> {
        vec![
            Record::CreateRelation {
                schema: Schema::builder("emp")
                    .attr("name", AttrType::Str)
                    .attr("salary", AttrType::Int)
                    .build(),
            },
            Record::DropRelation { name: "emp".into() },
            Record::AddRule {
                spec: RuleSpec {
                    name: "underpaid".into(),
                    condition: "emp.salary < 15000 or emp.salary > 900000".into(),
                    mask: EventMask::ALL,
                    priority: -3,
                    action: ActionSpec::Named("page-hr".into()),
                },
            },
            Record::RemoveRule { id: 7 },
            Record::Insert {
                relation: "emp".into(),
                values: vec![Value::str("al"), Value::Int(9000)],
            },
            Record::Update {
                relation: "emp".into(),
                id: 3,
                values: vec![Value::str("al"), Value::Float(-0.5)],
            },
            Record::Delete {
                relation: "emp".into(),
                id: 3,
            },
            Record::InsertBatch {
                relation: "emp".into(),
                rows: vec![
                    vec![Value::str("bo"), Value::Int(1)],
                    vec![Value::Bool(true), Value::Int(2)],
                ],
            },
        ]
    }

    #[test]
    fn round_trips() {
        for rec in samples() {
            let bytes = rec.encode();
            assert_eq!(Record::decode(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        for rec in samples() {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                assert!(Record::decode(&bytes[..cut]).is_err());
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = Record::RemoveRule { id: 1 }.encode();
        bytes.push(0);
        assert!(Record::decode(&bytes).is_err());
    }

    #[test]
    fn decode_prefix_reports_exact_consumption() {
        for rec in samples() {
            let bytes = rec.encode();
            let mut extended = bytes.clone();
            extended.extend_from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
            let (got, consumed) = Record::decode_prefix(&extended).unwrap();
            assert_eq!(got, rec);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn mask_bitfield_round_trips() {
        for bits in 0..8u8 {
            let m = decode_mask(bits).unwrap();
            assert_eq!(encode_mask(m), bits);
        }
        assert!(decode_mask(0b1000).is_err());
    }
}
