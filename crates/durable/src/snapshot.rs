//! Snapshots: a point-in-time serialization of the whole engine.
//!
//! ## On-disk format
//!
//! ```text
//! magic "PMSNAP\0\0" (8) | version u16 | body_len u32 | body_crc u32 | body
//! ```
//!
//! The body holds, in order: the sequence number of the last WAL
//! record the snapshot covers, every relation (schema, slot array
//! *including holes*, free list — so recovered tuple-id allocation is
//! bit-identical), every rule (condition source text, event mask,
//! priority, fire count, action spec), and the engine counters and
//! log. Column statistics are derivable (`Catalog::analyze`) and not
//! stored.
//!
//! Unlike the WAL there is no tolerated torn tail: snapshots are
//! written to a temporary file, synced, and atomically renamed, so a
//! crash mid-write leaves the *previous* snapshot intact and a
//! checksum failure in an installed snapshot is real corruption — a
//! hard [`RecoverError::Corrupt`], never a silent partial state.

use crate::crc::crc32;
use crate::record::{decode_action, decode_mask, encode_action, encode_mask, ActionSpec};
use crate::recovery::RecoverError;
use relation::codec::{decode_relation, encode_relation, CodecError, Reader, Writer};
use relation::Relation;
use rules::{Action, EventMask, RuleEngine};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;

/// File magic for snapshot files.
pub const SNAP_MAGIC: &[u8; 8] = b"PMSNAP\0\0";
/// Current snapshot format version. Version 2 added join (multi-
/// premise) conditions and the join-memo fingerprint.
pub const SNAP_VERSION: u16 = 2;
/// Snapshot file name inside a durable directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Temporary name used during atomic replacement.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// One rule as persisted.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleSnap {
    /// The rule's id in the engine (preserved across recovery).
    pub id: u32,
    /// Rule name.
    pub name: String,
    /// Event mask.
    pub mask: EventMask,
    /// Agenda priority.
    pub priority: i32,
    /// Lifetime fire count.
    pub fired: u64,
    /// The durable action.
    pub action: ActionSpec,
    /// The rule's *current* conjunct conditions (drop_relation may
    /// have scrubbed some since registration).
    pub conds: Vec<CondSnap>,
}

/// One conjunct condition as persisted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CondSnap {
    /// Re-parseable source text (`Predicate::to_source`).
    Source(String),
    /// An unsatisfiable predicate on the named relation — it has no
    /// clause-level spelling, so it is stored as a marker and
    /// reconstructed with [`predicate::Predicate::unsatisfiable`].
    Unsatisfiable(String),
    /// A multi-premise join conjunct, stored as re-parseable source
    /// text (`JoinCondition::to_source`).
    Join(String),
}

/// Decoded snapshot contents.
#[derive(Debug, Default)]
pub struct SnapshotData {
    /// Sequence number of the last WAL record folded into this state;
    /// replay skips log records at or below it.
    pub last_seq: u64,
    /// Full relation states, sorted by name.
    pub relations: Vec<Relation>,
    /// Rules sorted by id.
    pub rules: Vec<RuleSnap>,
    /// The engine's next rule id.
    pub next_rule: u32,
    /// Lifetime firing counter.
    pub total_fired: u64,
    /// Per-mutation firing limit.
    pub firing_limit: u64,
    /// The engine log.
    pub log: Vec<String>,
    /// [`rules::RuleEngine::join_fingerprint`] at capture time.
    /// Recovery rebuilds every join memo by reseeding from the restored
    /// database and verifies the rebuilt state digests identically —
    /// a mismatch means the snapshot pair (tuples, rules) is not the
    /// state the memo was built over, i.e. corruption.
    pub join_fingerprint: u64,
}

/// Why a snapshot could not be taken.
#[derive(Debug)]
pub enum SnapshotError {
    /// Filesystem failure.
    Io(io::Error),
    /// A rule's state has no durable spelling — a callback action that
    /// was registered directly on the inner engine rather than through
    /// a named [`crate::ActionRegistry`] entry.
    Unrepresentable { rule: String, detail: String },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o: {e}"),
            SnapshotError::Unrepresentable { rule, detail } => {
                write!(f, "rule {rule:?} cannot be persisted: {detail}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Captures the engine's current state. `specs` maps rule id to the
/// durable action spec (maintained by [`crate::DurableRuleEngine`]);
/// rules absent from it fall back to their in-engine `Action::Log`.
pub fn capture(
    engine: &RuleEngine,
    specs: &HashMap<u32, ActionSpec>,
    last_seq: u64,
) -> Result<SnapshotData, SnapshotError> {
    let mut relations: Vec<Relation> = engine.db().catalog().relations().cloned().collect();
    relations.sort_by(|a, b| a.schema().name().cmp(b.schema().name()));

    let mut rules = Vec::new();
    for (id, rule, fired) in engine.rules_detail() {
        let action = match specs.get(&id.0) {
            Some(spec) => spec.clone(),
            None => match &rule.action {
                Action::Log(msg) => ActionSpec::Log(msg.clone()),
                Action::Callback(_) => {
                    return Err(SnapshotError::Unrepresentable {
                        rule: rule.name.clone(),
                        detail: "anonymous callback action (register it by name)".into(),
                    })
                }
            },
        };
        let mut conds = Vec::with_capacity(rule.conditions.len());
        for pred in &rule.conditions {
            if !pred.is_satisfiable() {
                conds.push(CondSnap::Unsatisfiable(pred.relation().to_string()));
                continue;
            }
            match pred.to_source() {
                Some(src) => conds.push(CondSnap::Source(src)),
                None => {
                    return Err(SnapshotError::Unrepresentable {
                        rule: rule.name.clone(),
                        detail: "condition has no source spelling".into(),
                    })
                }
            }
        }
        for join in &rule.joins {
            match join.to_source() {
                Some(src) => conds.push(CondSnap::Join(src)),
                None => {
                    return Err(SnapshotError::Unrepresentable {
                        rule: rule.name.clone(),
                        detail: "join condition has no source spelling".into(),
                    })
                }
            }
        }
        rules.push(RuleSnap {
            id: id.0,
            name: rule.name.clone(),
            mask: rule.mask,
            priority: rule.priority,
            fired,
            action,
            conds,
        });
    }
    rules.sort_by_key(|r| r.id);

    Ok(SnapshotData {
        last_seq,
        relations,
        rules,
        next_rule: engine.next_rule_id(),
        total_fired: engine.total_fired(),
        firing_limit: engine.firing_limit() as u64,
        log: engine.log().to_vec(),
        join_fingerprint: engine.join_fingerprint(),
    })
}

fn encode_body(s: &SnapshotData) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(s.last_seq);
    w.u32(s.relations.len() as u32);
    for rel in &s.relations {
        encode_relation(&mut w, rel);
    }
    w.u32(s.rules.len() as u32);
    for r in &s.rules {
        w.u32(r.id);
        w.str(&r.name);
        w.u8(encode_mask(r.mask));
        w.i32(r.priority);
        w.u64(r.fired);
        encode_action(&mut w, &r.action);
        w.u32(r.conds.len() as u32);
        for c in &r.conds {
            match c {
                CondSnap::Source(src) => {
                    w.u8(0);
                    w.str(src);
                }
                CondSnap::Unsatisfiable(rel) => {
                    w.u8(1);
                    w.str(rel);
                }
                CondSnap::Join(src) => {
                    w.u8(2);
                    w.str(src);
                }
            }
        }
    }
    w.u32(s.next_rule);
    w.u64(s.total_fired);
    w.u64(s.firing_limit);
    w.u32(s.log.len() as u32);
    for line in &s.log {
        w.str(line);
    }
    w.u64(s.join_fingerprint);
    w.into_bytes()
}

fn decode_body(bytes: &[u8]) -> Result<SnapshotData, CodecError> {
    let mut r = Reader::new(bytes);
    let last_seq = r.u64()?;
    let n_rel = r.u32()? as usize;
    if n_rel > r.remaining() {
        return Err(CodecError::Invalid(format!("relation count {n_rel}")));
    }
    let mut relations = Vec::with_capacity(n_rel);
    for _ in 0..n_rel {
        relations.push(decode_relation(&mut r)?);
    }
    let n_rules = r.u32()? as usize;
    if n_rules > r.remaining() {
        return Err(CodecError::Invalid(format!("rule count {n_rules}")));
    }
    let mut rules = Vec::with_capacity(n_rules);
    for _ in 0..n_rules {
        let id = r.u32()?;
        let name = r.str()?;
        let mask = decode_mask(r.u8()?)?;
        let priority = r.i32()?;
        let fired = r.u64()?;
        let action = decode_action(&mut r)?;
        let n_conds = r.u32()? as usize;
        if n_conds > r.remaining() {
            return Err(CodecError::Invalid(format!("condition count {n_conds}")));
        }
        let mut conds = Vec::with_capacity(n_conds);
        for _ in 0..n_conds {
            conds.push(match r.u8()? {
                0 => CondSnap::Source(r.str()?),
                1 => CondSnap::Unsatisfiable(r.str()?),
                2 => CondSnap::Join(r.str()?),
                tag => {
                    return Err(CodecError::BadTag {
                        what: "condition snapshot",
                        tag,
                    })
                }
            });
        }
        rules.push(RuleSnap {
            id,
            name,
            mask,
            priority,
            fired,
            action,
            conds,
        });
    }
    let next_rule = r.u32()?;
    let total_fired = r.u64()?;
    let firing_limit = r.u64()?;
    let n_log = r.u32()? as usize;
    if n_log > r.remaining() {
        return Err(CodecError::Invalid(format!("log count {n_log}")));
    }
    let mut log = Vec::with_capacity(n_log);
    for _ in 0..n_log {
        log.push(r.str()?);
    }
    let join_fingerprint = r.u64()?;
    if !r.is_empty() {
        return Err(CodecError::Invalid(format!(
            "{} trailing bytes after snapshot body",
            r.remaining()
        )));
    }
    Ok(SnapshotData {
        last_seq,
        relations,
        rules,
        next_rule,
        total_fired,
        firing_limit,
        log,
        join_fingerprint,
    })
}

/// Writes `data` as the directory's snapshot, atomically: encode,
/// write to a temp file, `fdatasync`, rename over the old snapshot,
/// then fsync the directory so the rename itself is durable.
pub fn write_snapshot(dir: &Path, data: &SnapshotData) -> io::Result<()> {
    let body = encode_body(data);
    let mut out = Vec::with_capacity(SNAP_MAGIC.len() + 10 + body.len());
    out.extend_from_slice(SNAP_MAGIC);
    out.extend_from_slice(&SNAP_VERSION.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);

    let tmp = dir.join(SNAPSHOT_TMP);
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)?;
    f.write_all(&out)?;
    f.sync_data()?;
    drop(f);
    std::fs::rename(&tmp, dir.join(SNAPSHOT_FILE))?;
    // Persist the rename (directory metadata). Failure here still
    // leaves a consistent file at one of the two names.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Reads the directory's snapshot. `Ok(None)` if none has ever been
/// installed; any malformed content is a hard error.
pub fn read_snapshot(dir: &Path) -> Result<Option<SnapshotData>, RecoverError> {
    let path = dir.join(SNAPSHOT_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(RecoverError::Io(e)),
    };
    let header_len = SNAP_MAGIC.len() + 10;
    if bytes.len() < header_len || &bytes[..8] != SNAP_MAGIC {
        return Err(RecoverError::Corrupt {
            what: "snapshot header",
            detail: "bad magic or short file".into(),
        });
    }
    // srclint:allow(no-panic-in-lib): constant-width header slice — try_into to a fixed array cannot fail
    let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
    if version != SNAP_VERSION {
        return Err(RecoverError::Corrupt {
            what: "snapshot version",
            detail: format!("found {version}, expected {SNAP_VERSION}"),
        });
    }
    // srclint:allow(no-panic-in-lib): constant-width header slice — try_into to a fixed array cannot fail
    let body_len = u32::from_le_bytes(bytes[10..14].try_into().unwrap()) as usize;
    // srclint:allow(no-panic-in-lib): constant-width header slice — try_into to a fixed array cannot fail
    let stored_crc = u32::from_le_bytes(bytes[14..18].try_into().unwrap());
    let body = &bytes[header_len..];
    if body.len() != body_len {
        return Err(RecoverError::Corrupt {
            what: "snapshot length",
            detail: format!("body is {} bytes, header says {body_len}", body.len()),
        });
    }
    if crc32(body) != stored_crc {
        return Err(RecoverError::Corrupt {
            what: "snapshot checksum",
            detail: "crc mismatch".into(),
        });
    }
    decode_body(body)
        .map(Some)
        .map_err(|e| RecoverError::Corrupt {
            what: "snapshot body",
            detail: e.to_string(),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("durable-snap-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> SnapshotData {
        SnapshotData {
            last_seq: 42,
            relations: Vec::new(),
            rules: vec![RuleSnap {
                id: 3,
                name: "r".into(),
                mask: EventMask::ALL,
                priority: 9,
                fired: 17,
                action: ActionSpec::Log("hi".into()),
                conds: vec![
                    CondSnap::Source("emp.a > 1".into()),
                    CondSnap::Unsatisfiable("emp".into()),
                    CondSnap::Join("dept.dno = emp.dno".into()),
                ],
            }],
            next_rule: 4,
            total_fired: 17,
            firing_limit: 10_000,
            log: vec!["one".into(), "two".into()],
            join_fingerprint: 0xdead_beef,
        }
    }

    #[test]
    fn round_trips_through_disk() {
        let dir = tmp("round");
        assert!(read_snapshot(&dir).unwrap().is_none());
        write_snapshot(&dir, &sample()).unwrap();
        let back = read_snapshot(&dir).unwrap().unwrap();
        assert_eq!(back.last_seq, 42);
        assert_eq!(back.rules, sample().rules);
        assert_eq!(back.log, sample().log);
        assert_eq!(back.firing_limit, 10_000);
    }

    #[test]
    fn any_corruption_is_a_hard_error() {
        let dir = tmp("corrupt");
        write_snapshot(&dir, &sample()).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let clean = std::fs::read(&path).unwrap();
        for i in 0..clean.len() {
            let mut bad = clean.clone();
            bad[i] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                read_snapshot(&dir).is_err(),
                "flip at byte {i} went unnoticed"
            );
        }
        // Truncations too.
        for cut in 0..clean.len() {
            std::fs::write(&path, &clean[..cut]).unwrap();
            assert!(read_snapshot(&dir).is_err(), "truncation at {cut}");
        }
    }
}
