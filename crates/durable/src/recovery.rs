//! Crash recovery: snapshot + WAL suffix → a rebuilt [`RuleEngine`].
//!
//! Recovery is `state = snapshot ∘ replay(log records with seq >
//! snapshot.last_seq)`. Replay re-executes each logged command through
//! the ordinary engine entry points, which are deterministic: rule ids
//! are handed out sequentially, the agenda is a total order, and every
//! cascaded operation is a pure function of engine state. Engine-level
//! *errors* during replay (duplicate relation, unknown tuple, firing
//! limit) are therefore deterministic re-occurrences of errors the
//! original already returned, and are ignored; only environmental
//! mismatches — a condition that no longer parses because a custom
//! predicate function was not re-registered, or a named action missing
//! from the [`ActionRegistry`] — abort recovery, because silently
//! dropping them would change rule semantics.

use crate::record::{ActionSpec, Record, RuleSpec};
use crate::snapshot::{read_snapshot, CondSnap};
use crate::wal::read_wal;
use predicate::{
    parse_condition, parse_conditions, parse_conjunct, FunctionRegistry, ParsedCondition, Predicate,
};
use relation::{Database, TupleId};
use rules::{Action, JoinCondition, Rule, RuleContext, RuleEngine, RuleId};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// WAL file name inside a durable directory.
pub const WAL_FILE: &str = "wal.bin";

/// A shareable rule action callback.
pub type ActionFn = Arc<dyn Fn(&mut RuleContext<'_>) + Send + Sync>;

/// Named callback actions, re-registered by the application before
/// recovery. Durable rules refer to callbacks by name because closures
/// cannot be serialized.
#[derive(Default, Clone)]
pub struct ActionRegistry {
    map: HashMap<String, ActionFn>,
}

impl ActionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ActionRegistry::default()
    }

    /// Registers (or replaces) a named action.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        f: impl Fn(&mut RuleContext<'_>) + Send + Sync + 'static,
    ) {
        self.map.insert(name.into(), Arc::new(f));
    }

    /// Looks up a named action.
    pub fn get(&self, name: &str) -> Option<ActionFn> {
        self.map.get(name).cloned()
    }
}

impl std::fmt::Debug for ActionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&str> = self.map.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        f.debug_struct("ActionRegistry")
            .field("names", &names)
            .finish()
    }
}

/// Why recovery failed.
#[derive(Debug)]
pub enum RecoverError {
    /// Filesystem failure.
    Io(io::Error),
    /// The snapshot is damaged (the WAL tolerates a torn tail; the
    /// snapshot, written atomically, tolerates nothing).
    Corrupt { what: &'static str, detail: String },
    /// A persisted rule condition no longer parses — almost always a
    /// custom predicate function missing from the registry.
    Parse { condition: String, error: String },
    /// A persisted rule names an action the registry lacks.
    MissingAction(String),
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "recovery i/o: {e}"),
            RecoverError::Corrupt { what, detail } => {
                write!(f, "corrupt {what}: {detail}")
            }
            RecoverError::Parse { condition, error } => {
                write!(
                    f,
                    "persisted condition {condition:?} no longer parses: {error}"
                )
            }
            RecoverError::MissingAction(name) => {
                write!(f, "rule action {name:?} is not registered")
            }
        }
    }
}

impl std::error::Error for RecoverError {}

impl From<io::Error> for RecoverError {
    fn from(e: io::Error) -> Self {
        RecoverError::Io(e)
    }
}

/// The result of a successful recovery.
pub struct Recovered {
    /// The rebuilt engine.
    pub engine: RuleEngine,
    /// Durable action spec per live rule id (what the next snapshot
    /// will persist).
    pub action_specs: HashMap<u32, ActionSpec>,
    /// Sequence number of the last record folded into `engine` (0 if
    /// the directory was empty).
    pub last_seq: u64,
    /// WAL frames actually replayed on top of the snapshot (stale
    /// frames an earlier snapshot already covered are not counted).
    pub frames_replayed: u64,
}

/// Resolves an [`ActionSpec`] against the registry.
pub(crate) fn resolve_action(
    spec: &ActionSpec,
    actions: &ActionRegistry,
) -> Result<Action, RecoverError> {
    match spec {
        ActionSpec::Log(msg) => Ok(Action::Log(msg.clone())),
        ActionSpec::Named(name) => actions
            .get(name)
            .map(Action::Callback)
            .ok_or_else(|| RecoverError::MissingAction(name.clone())),
    }
}

/// Builds a live [`Rule`] from a durable spec (parse the condition,
/// resolve the action).
pub(crate) fn build_rule(
    spec: &RuleSpec,
    funcs: &FunctionRegistry,
    actions: &ActionRegistry,
) -> Result<Rule, RecoverError> {
    let mut conditions = Vec::new();
    let mut joins = Vec::new();
    let parsed = parse_conditions(&spec.condition, funcs).map_err(|e| RecoverError::Parse {
        condition: spec.condition.clone(),
        error: e.to_string(),
    })?;
    for cond in parsed {
        match cond {
            ParsedCondition::Single(p) => conditions.push(p),
            ParsedCondition::Join(j) => joins.push(j),
        }
    }
    Ok(Rule {
        name: spec.name.clone(),
        conditions,
        joins,
        mask: spec.mask,
        action: resolve_action(&spec.action, actions)?,
        priority: spec.priority,
    })
}

/// Rebuilds an engine from `dir` (snapshot plus WAL suffix). An empty
/// or absent directory recovers to an empty engine at `last_seq` 0.
pub fn replay(
    dir: &Path,
    funcs: &FunctionRegistry,
    actions: &ActionRegistry,
) -> Result<Recovered, RecoverError> {
    replay_traced(dir, funcs, actions, &telemetry::Tracer::disabled())
}

/// [`replay`] with span tracing: the snapshot load and the WAL-suffix
/// replay each get a span in `tracer`'s ring, so a recovery that ends
/// in a `Corrupt` refusal leaves its last steps in the flight
/// recorder.
pub fn replay_traced(
    dir: &Path,
    funcs: &FunctionRegistry,
    actions: &ActionRegistry,
    tracer: &telemetry::Tracer,
) -> Result<Recovered, RecoverError> {
    let snapshot_span = tracer.span("recovery_snapshot_load");
    let (mut engine, mut action_specs, mut last_seq) = match read_snapshot(dir)? {
        Some(snap) => {
            let mut db = Database::new();
            for rel in snap.relations {
                db.catalog_mut()
                    .adopt_relation(rel)
                    .map_err(|e| RecoverError::Corrupt {
                        what: "snapshot relations",
                        detail: e.to_string(),
                    })?;
            }
            let mut rules: Vec<(RuleId, Rule, u64)> = Vec::with_capacity(snap.rules.len());
            let mut specs = HashMap::new();
            for r in snap.rules {
                let mut conditions: Vec<Predicate> = Vec::with_capacity(r.conds.len());
                let mut joins: Vec<JoinCondition> = Vec::new();
                for c in &r.conds {
                    match c {
                        CondSnap::Source(src) => {
                            conditions.push(parse_conjunct(src, funcs).map_err(|e| {
                                RecoverError::Parse {
                                    condition: src.clone(),
                                    error: e.to_string(),
                                }
                            })?)
                        }
                        CondSnap::Unsatisfiable(rel) => {
                            conditions.push(Predicate::unsatisfiable(rel.clone()))
                        }
                        CondSnap::Join(src) => {
                            match parse_condition(src, funcs).map_err(|e| RecoverError::Parse {
                                condition: src.clone(),
                                error: e.to_string(),
                            })? {
                                ParsedCondition::Single(p) => conditions.push(p),
                                ParsedCondition::Join(j) => joins.push(j),
                            }
                        }
                    }
                }
                let rule = Rule {
                    name: r.name,
                    conditions,
                    joins,
                    mask: r.mask,
                    action: resolve_action(&r.action, actions)?,
                    priority: r.priority,
                };
                specs.insert(r.id, r.action);
                rules.push((RuleId(r.id), rule, r.fired));
            }
            let mut engine =
                RuleEngine::restore(db, rules, snap.next_rule, snap.total_fired, snap.log)
                    .map_err(|e| RecoverError::Corrupt {
                        what: "snapshot rules",
                        detail: e.to_string(),
                    })?;
            engine.set_firing_limit(snap.firing_limit as usize);
            // Restoring reseeded every join memo from the restored
            // tuples; the memo invariant (tokens = all valid premise
            // prefixes) makes that reconstruction bit-identical to the
            // pre-crash incremental state, so a digest mismatch means
            // the snapshot pair (tuples, rules) is not the state the
            // fingerprint was taken over.
            let rebuilt = engine.join_fingerprint();
            if rebuilt != snap.join_fingerprint {
                return Err(RecoverError::Corrupt {
                    what: "join memo fingerprint",
                    detail: format!(
                        "rebuilt memo digests to {rebuilt:#018x}, snapshot recorded {:#018x}",
                        snap.join_fingerprint
                    ),
                });
            }
            (engine, specs, snap.last_seq)
        }
        None => (RuleEngine::new(Database::new()), HashMap::new(), 0),
    };
    drop(snapshot_span);

    let replay_span = tracer.span("recovery_wal_replay");
    let suffix = read_wal(&dir.join(WAL_FILE))?;
    let mut frames_replayed = 0;
    for (seq, record) in suffix.records {
        // A crash between snapshot rename and log truncation leaves a
        // stale log whose early records the snapshot already covers.
        if seq <= last_seq {
            continue;
        }
        apply_record(&mut engine, &mut action_specs, record, funcs, actions)?;
        last_seq = seq;
        frames_replayed += 1;
    }
    drop(replay_span);
    tracer.instant_with("recovery_done", || {
        vec![
            ("last_seq", last_seq.to_string()),
            ("frames_replayed", frames_replayed.to_string()),
        ]
    });

    Ok(Recovered {
        engine,
        action_specs,
        last_seq,
        frames_replayed,
    })
}

/// Re-executes one logged command. Engine-level errors are swallowed
/// (they deterministically mirror errors the original caller saw);
/// environment mismatches abort.
fn apply_record(
    engine: &mut RuleEngine,
    specs: &mut HashMap<u32, ActionSpec>,
    record: Record,
    funcs: &FunctionRegistry,
    actions: &ActionRegistry,
) -> Result<(), RecoverError> {
    match record {
        Record::CreateRelation { schema } => {
            let _ = engine.create_relation(schema);
        }
        Record::DropRelation { name } => {
            let _ = engine.drop_relation(&name);
        }
        Record::AddRule { spec } => {
            let rule = build_rule(&spec, funcs, actions)?;
            if let Ok(id) = engine.add_rule(rule) {
                specs.insert(id.0, spec.action);
            }
        }
        Record::RemoveRule { id } => {
            if engine.remove_rule(RuleId(id)).is_ok() {
                specs.remove(&id);
            }
        }
        Record::Insert { relation, values } => {
            let _ = engine.insert(&relation, values);
        }
        Record::Update {
            relation,
            id,
            values,
        } => {
            let _ = engine.update(&relation, TupleId(id), values);
        }
        Record::Delete { relation, id } => {
            let _ = engine.delete(&relation, TupleId(id));
        }
        Record::InsertBatch { relation, rows } => {
            let _ = engine.insert_batch(&relation, rows);
        }
    }
    Ok(())
}
