//! The write-ahead log: an append-only file of checksummed frames.
//!
//! ## On-disk format
//!
//! ```text
//! header:  magic "PMWAL\0\0\0" (8) | version u16 | start_seq u64 | crc u32
//! frame:   len u32 | crc u32 | seq u64 | payload (len - 8 bytes)
//! ```
//!
//! All integers little-endian. The frame checksum covers `seq` and the
//! payload; `len` counts the `seq` field plus the payload, so a frame
//! occupies `8 + len` bytes on disk. Sequence numbers are assigned
//! densely starting at the header's `start_seq`, which lets recovery
//! discard a stale log that survived a crash between snapshot rename
//! and log truncation.
//!
//! ## Torn-tail rule
//!
//! A crash can leave any byte-level prefix of the file. The reader
//! accepts the longest prefix of well-formed frames and **stops** at
//! the first anomaly — short header, short frame, oversized length,
//! checksum mismatch, undecodable payload, or sequence discontinuity —
//! without erroring: everything before the anomaly is intact (the
//! checksum vouches for it), everything after is unreachable anyway
//! because frames are not self-synchronizing. A missing file or an
//! unreadable header is an empty log.

use crate::crc::Crc32;
use crate::record::Record;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use telemetry::{Counter, Histogram, Registry, Tracer};

/// File magic for WAL files.
pub const WAL_MAGIC: &[u8; 8] = b"PMWAL\0\0\0";
/// Current format version.
pub const WAL_VERSION: u16 = 1;
/// Header size in bytes.
pub const WAL_HEADER_LEN: usize = 8 + 2 + 8 + 4;
/// Upper bound on a single frame's `len` field — anything larger is
/// corruption, not data (no logical record approaches 64 MiB).
pub const MAX_FRAME: u32 = 1 << 26;

/// When `append` pushes bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fdatasync` after every record — zero loss on power failure.
    Always,
    /// Group commit: `fdatasync` once per `n` appends. Crash loses at
    /// most the last `n - 1` records, each a complete logical command,
    /// so recovered state is always a clean prefix of history.
    EveryN(u32),
    /// Sync only on explicit [`Wal::sync`] calls (and checkpoints).
    Manual,
}

/// The log's metric handles. Default (and [`WalMetrics::disabled`]) is
/// the no-op bundle: one branch per append / sync. Cloning shares the
/// underlying cells, which is how the durable engine keeps counters
/// monotonic across the log truncations a snapshot performs.
#[derive(Debug, Clone, Default)]
pub struct WalMetrics {
    /// Frames appended (`wal_appends_total`).
    appends: Counter,
    /// Frame bytes written, headers included (`wal_append_bytes_total`).
    append_bytes: Counter,
    /// `fdatasync` latency; its count is the fsync total
    /// (`wal_fsync_nanos`).
    fsync_nanos: Histogram,
    /// Span tracer for `wal_append` / `wal_fsync` spans (disabled by
    /// default, like the counters).
    tracer: Tracer,
}

impl WalMetrics {
    /// The no-op bundle.
    pub fn disabled() -> WalMetrics {
        WalMetrics::default()
    }

    /// Resolves the bundle against a registry (no-op if disabled).
    pub fn from_registry(registry: &Arc<Registry>) -> WalMetrics {
        Self::from_parts(registry, Tracer::disabled())
    }

    /// [`from_registry`](Self::from_registry) plus a span tracer —
    /// appends and fsyncs then emit `wal_append` / `wal_fsync` spans.
    pub fn from_parts(registry: &Arc<Registry>, tracer: Tracer) -> WalMetrics {
        WalMetrics {
            appends: registry.counter("wal_appends_total"),
            append_bytes: registry.counter("wal_append_bytes_total"),
            fsync_nanos: registry.histogram("wal_fsync_nanos"),
            tracer,
        }
    }
}

/// An open, append-only log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    policy: SyncPolicy,
    unsynced: u32,
    metrics: WalMetrics,
}

impl Wal {
    /// Creates (or truncates) the log at `path`, with the first frame
    /// to be appended carrying sequence number `start_seq`. The header
    /// is synced before this returns.
    pub fn create(path: &Path, start_seq: u64, policy: SyncPolicy) -> io::Result<Wal> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(WAL_HEADER_LEN);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&WAL_VERSION.to_le_bytes());
        header.extend_from_slice(&start_seq.to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&header[8..]);
        header.extend_from_slice(&crc.finish().to_le_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            next_seq: start_seq,
            policy,
            unsynced: 0,
            metrics: WalMetrics::disabled(),
        })
    }

    /// Swaps in a metric bundle (the durable engine re-applies the same
    /// bundle to each fresh log a snapshot truncation creates, so the
    /// counters stay monotonic across truncations).
    pub fn set_metrics(&mut self, metrics: WalMetrics) {
        self.metrics = metrics;
    }

    /// The path this log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one record, returning its sequence number. The frame is
    /// written in full (buffered only by the OS); whether it is forced
    /// to stable storage is the [`SyncPolicy`]'s call.
    pub fn append(&mut self, record: &Record) -> io::Result<u64> {
        let seq = self.next_seq;
        let payload = record.encode();
        let frame = encode_frame(seq, &payload);
        // The handle is cloned so the span guard does not borrow
        // `self` across the mutable `sync` call below (the fsync span
        // still nests inside this one).
        let tracer = self.metrics.tracer.clone();
        let _span = tracer.span_with("wal_append", || {
            vec![("seq", seq.to_string()), ("bytes", frame.len().to_string())]
        });
        self.file.write_all(&frame)?;
        self.metrics.appends.inc();
        self.metrics.append_bytes.add(frame.len() as u64);
        self.next_seq += 1;
        match self.policy {
            SyncPolicy::Always => self.sync()?,
            SyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n.max(1) {
                    self.sync()?;
                }
            }
            SyncPolicy::Manual => self.unsynced += 1,
        }
        Ok(seq)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        let _span = self.metrics.tracer.span("wal_fsync");
        let timer = self.metrics.fsync_nanos.start_timer();
        self.file.sync_data()?;
        self.metrics.fsync_nanos.stop_timer(timer);
        self.unsynced = 0;
        Ok(())
    }
}

/// Encodes one frame: `[len][crc][seq][payload]`.
fn encode_frame(seq: u64, payload: &[u8]) -> Vec<u8> {
    let len = (8 + payload.len()) as u32;
    let seq_bytes = seq.to_le_bytes();
    let mut crc = Crc32::new();
    crc.update(&seq_bytes);
    crc.update(payload);
    let mut out = Vec::with_capacity(8 + payload.len() + 8);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(&seq_bytes);
    out.extend_from_slice(payload);
    out
}

/// What a tolerant read of a WAL file yields.
#[derive(Debug, Default)]
pub struct WalSuffix {
    /// The header's `start_seq` (0 for a missing/unreadable log).
    pub start_seq: u64,
    /// Accepted records in log order, with their sequence numbers.
    pub records: Vec<(u64, Record)>,
    /// Byte offset just past each accepted frame — `frame_ends[i]` is
    /// where frame `i` ends in the file. Lets fault-injection tests
    /// map a truncation point to the number of surviving records.
    pub frame_ends: Vec<u64>,
}

/// Reads a WAL file under the torn-tail rule. Only genuine I/O
/// failures (not corruption, not absence) surface as errors.
pub fn read_wal(path: &Path) -> io::Result<WalSuffix> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalSuffix::default()),
        Err(e) => return Err(e),
    };
    Ok(parse_wal(&bytes))
}

/// The pure parsing core of [`read_wal`].
pub fn parse_wal(bytes: &[u8]) -> WalSuffix {
    let mut out = WalSuffix::default();
    // Header: anything short or mismatched means we cannot trust a
    // single byte of the file — treat as empty.
    if bytes.len() < WAL_HEADER_LEN || &bytes[..8] != WAL_MAGIC {
        return out;
    }
    // srclint:allow(no-panic-in-lib): constant-width header slice — try_into to a fixed array cannot fail
    let version = u16::from_le_bytes(bytes[8..10].try_into().unwrap());
    // srclint:allow(no-panic-in-lib): constant-width header slice — try_into to a fixed array cannot fail
    let start_seq = u64::from_le_bytes(bytes[10..18].try_into().unwrap());
    // srclint:allow(no-panic-in-lib): constant-width header slice — try_into to a fixed array cannot fail
    let stored_crc = u32::from_le_bytes(bytes[18..22].try_into().unwrap());
    let mut crc = Crc32::new();
    crc.update(&bytes[8..18]);
    if version != WAL_VERSION || crc.finish() != stored_crc {
        return out;
    }
    out.start_seq = start_seq;

    let mut pos = WAL_HEADER_LEN;
    let mut expect_seq = start_seq;
    // Torn tail ends the read without error: anything after the first
    // anomaly is unreachable (frames are not self-synchronizing).
    while let Some(frame) = bytes.get(pos..pos + 8) {
        // srclint:allow(no-panic-in-lib): constant-width frame slice — try_into to a fixed array cannot fail
        let len = u32::from_le_bytes(frame[..4].try_into().unwrap());
        // srclint:allow(no-panic-in-lib): constant-width frame slice — try_into to a fixed array cannot fail
        let stored_crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
        if !(8..=MAX_FRAME).contains(&len) {
            break; // nonsense length
        }
        let Some(body) = bytes.get(pos + 8..pos + 8 + len as usize) else {
            break; // frame extends past EOF: torn tail
        };
        let mut crc = Crc32::new();
        crc.update(body);
        if crc.finish() != stored_crc {
            break; // checksum mismatch
        }
        // srclint:allow(no-panic-in-lib): body length was checked to be at least 8 above
        let seq = u64::from_le_bytes(body[..8].try_into().unwrap());
        if seq != expect_seq {
            break; // sequence discontinuity
        }
        let Ok(record) = Record::decode(&body[8..]) else {
            break; // checksummed but undecodable: foreign version data
        };
        pos += 8 + len as usize;
        out.records.push((seq, record));
        out.frame_ends.push(pos as u64);
        expect_seq += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    fn tmp(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("durable-wal-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("wal.bin")
    }

    fn sample(i: u32) -> Record {
        Record::RemoveRule { id: i }
    }

    #[test]
    fn append_then_read_round_trips() {
        let path = tmp("round");
        let mut wal = Wal::create(&path, 5, SyncPolicy::Always).unwrap();
        for i in 0..4 {
            assert_eq!(wal.append(&sample(i)).unwrap(), 5 + i as u64);
        }
        assert_eq!(wal.next_seq(), 9);
        let suffix = read_wal(&path).unwrap();
        assert_eq!(suffix.start_seq, 5);
        assert_eq!(
            suffix.records,
            (0..4)
                .map(|i| (5 + i as u64, sample(i)))
                .collect::<Vec<_>>()
        );
        assert_eq!(suffix.frame_ends.len(), 4);
    }

    #[test]
    fn missing_file_is_empty() {
        let path = tmp("missing");
        let suffix = read_wal(&path).unwrap();
        assert!(suffix.records.is_empty());
        assert_eq!(suffix.start_seq, 0);
    }

    #[test]
    fn every_truncation_yields_a_prefix() {
        let path = tmp("trunc");
        let mut wal = Wal::create(&path, 0, SyncPolicy::Manual).unwrap();
        for i in 0..6 {
            wal.append(&sample(i)).unwrap();
        }
        wal.sync().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let full = parse_wal(&bytes);
        assert_eq!(full.records.len(), 6);
        for cut in 0..=bytes.len() {
            let part = parse_wal(&bytes[..cut]);
            let k = full.frame_ends.iter().filter(|&&e| e <= cut as u64).count();
            assert_eq!(part.records.len(), k, "cut at {cut}");
            assert_eq!(part.records, full.records[..k]);
        }
    }

    #[test]
    fn stale_frames_from_earlier_epoch_stop_the_read() {
        // A header rewritten for start_seq 10 followed by an old frame
        // with seq 3 must yield nothing (sequence discontinuity).
        let path = tmp("stale");
        let mut wal = Wal::create(&path, 3, SyncPolicy::Always).unwrap();
        wal.append(&sample(0)).unwrap();
        let old = std::fs::read(&path).unwrap();
        let mut forged = Vec::new();
        {
            let p2 = tmp("stale2");
            Wal::create(&p2, 10, SyncPolicy::Always).unwrap();
            forged.extend_from_slice(&std::fs::read(&p2).unwrap());
        }
        forged.extend_from_slice(&old[WAL_HEADER_LEN..]);
        let suffix = parse_wal(&forged);
        assert_eq!(suffix.start_seq, 10);
        assert!(suffix.records.is_empty());
    }
}
