//! [`DurableRuleEngine`]: a [`RuleEngine`] whose every mutation is
//! write-ahead logged, with periodic snapshots and log truncation.
//!
//! The protocol for each mutating call is log-then-apply: the logical
//! record is appended (and synced, per [`SyncPolicy`]) *before* the
//! in-memory engine executes it. A crash after the append replays the
//! operation; a crash during the append leaves a torn frame the reader
//! drops — either way the recovered state is a clean prefix of the
//! operation history. Operations that fail inside the engine
//! (duplicate relation, unknown tuple, firing limit) stay in the log
//! and fail identically on replay, so the record stream never needs
//! compensation records.

use crate::record::{ActionSpec, Record, RuleSpec};
use crate::recovery::{build_rule, replay_traced, ActionRegistry, RecoverError, WAL_FILE};
use crate::snapshot::{capture, write_snapshot, SnapshotError, SNAPSHOT_FILE};
use crate::wal::{SyncPolicy, Wal, WalMetrics};
use predicate::FunctionRegistry;
use relation::{Relation, Schema, TupleId, Value};
use rules::{EngineError, FireReport, MatchTrace, Rule, RuleEngine, RuleId};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use telemetry::{Counter, FlightRecorder, Histogram, Profiler, Registry, Tracer, WorkloadStats};

/// Subdirectory of a durable home where flight dumps land.
pub const FLIGHT_DIR: &str = "flight";

/// Durability knobs.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// When appended records reach stable storage.
    pub sync: SyncPolicy,
    /// Take a snapshot (and truncate the log) every this many logged
    /// operations; `None` disables automatic snapshots (explicit
    /// [`DurableRuleEngine::snapshot`] calls only).
    pub snapshot_every: Option<u64>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            sync: SyncPolicy::Always,
            snapshot_every: Some(1024),
        }
    }
}

/// Errors from the durable engine.
#[derive(Debug)]
pub enum DurableError {
    /// Filesystem failure — the in-memory engine was *not* mutated.
    Io(io::Error),
    /// The operation was logged but the engine rejected it (the same
    /// rejection replay will reproduce).
    Engine(EngineError),
    /// A rule condition failed to parse (nothing was logged).
    Parse { condition: String, error: String },
    /// A rule names an action the registry lacks (nothing was logged).
    UnknownAction(String),
    /// Snapshot capture failed.
    Snapshot(SnapshotError),
    /// Recovery failed while opening.
    Recover(RecoverError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable i/o: {e}"),
            DurableError::Engine(e) => write!(f, "{e}"),
            DurableError::Parse { condition, error } => {
                write!(f, "condition {condition:?} failed to parse: {error}")
            }
            DurableError::UnknownAction(name) => {
                write!(f, "action {name:?} is not registered")
            }
            DurableError::Snapshot(e) => write!(f, "{e}"),
            DurableError::Recover(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<EngineError> for DurableError {
    fn from(e: EngineError) -> Self {
        DurableError::Engine(e)
    }
}

impl From<SnapshotError> for DurableError {
    fn from(e: SnapshotError) -> Self {
        DurableError::Snapshot(e)
    }
}

impl From<RecoverError> for DurableError {
    fn from(e: RecoverError) -> Self {
        match e {
            RecoverError::Parse { condition, error } => DurableError::Parse { condition, error },
            RecoverError::MissingAction(n) => DurableError::UnknownAction(n),
            other => DurableError::Recover(other),
        }
    }
}

/// The durability-layer metric handles (snapshot + recovery families;
/// the WAL has its own bundle in [`WalMetrics`]).
struct DurableMetrics {
    /// Snapshots taken (`durable_snapshots_total`).
    snapshots: Counter,
    /// Capture + atomic-install latency (`durable_snapshot_nanos`).
    snapshot_nanos: Histogram,
    /// Installed snapshot file sizes (`durable_snapshot_bytes`).
    snapshot_bytes: Histogram,
}

impl DurableMetrics {
    fn disabled() -> Self {
        DurableMetrics {
            snapshots: Counter::disabled(),
            snapshot_nanos: Histogram::disabled(),
            snapshot_bytes: Histogram::disabled(),
        }
    }

    fn from_registry(registry: &Arc<Registry>) -> Self {
        DurableMetrics {
            snapshots: registry.counter("durable_snapshots_total"),
            snapshot_nanos: registry.histogram("durable_snapshot_nanos"),
            snapshot_bytes: registry.histogram("durable_snapshot_bytes"),
        }
    }
}

/// A rule engine with a durable home directory.
pub struct DurableRuleEngine {
    dir: PathBuf,
    engine: RuleEngine,
    wal: Wal,
    specs: HashMap<u32, ActionSpec>,
    funcs: FunctionRegistry,
    actions: ActionRegistry,
    opts: Options,
    since_snapshot: u64,
    /// Re-applied to each fresh log a truncation creates.
    wal_metrics: WalMetrics,
    metrics: DurableMetrics,
    tracer: Tracer,
    /// Post-mortem dumps into `dir/flight/`.
    recorder: Arc<FlightRecorder>,
    /// Kept so recorder rebuilds (profiler/advisor attach) compose
    /// instead of clobbering each other.
    advisor_fn: Option<Arc<dyn Fn() -> String + Send + Sync>>,
}

impl DurableRuleEngine {
    /// Opens (creating or recovering) the durable engine at `dir`.
    ///
    /// Recovery replays snapshot + log; custom predicate functions and
    /// named actions used by persisted rules must already be in
    /// `funcs` / `actions` or this fails rather than silently altering
    /// rule semantics. A fresh snapshot is installed and the log
    /// truncated before this returns, so startup cost is paid once,
    /// not compounded across restarts.
    pub fn open(
        dir: impl Into<PathBuf>,
        funcs: FunctionRegistry,
        actions: ActionRegistry,
        opts: Options,
    ) -> Result<Self, DurableError> {
        Self::open_with_metrics(dir, funcs, actions, opts, Arc::new(Registry::disabled()))
    }

    /// [`open`](Self::open) with a metrics registry: the engine, its
    /// predicate index, the WAL, and the snapshot machinery all record
    /// into `registry` (see the crate docs for the metric families).
    /// Recovery work is recorded too — `durable_recovery_frames_total`
    /// counts the WAL frames this open replayed on top of the snapshot.
    pub fn open_with_metrics(
        dir: impl Into<PathBuf>,
        funcs: FunctionRegistry,
        actions: ActionRegistry,
        opts: Options,
        registry: Arc<Registry>,
    ) -> Result<Self, DurableError> {
        Self::open_with_telemetry(dir, funcs, actions, opts, registry, Tracer::disabled())
    }

    /// [`open_with_metrics`](Self::open_with_metrics) plus a span
    /// tracer, which makes the engine fully observable: cascade, match,
    /// WAL, snapshot, and recovery phases all emit spans into
    /// `tracer`'s ring, and the ring doubles as a flight recorder — if
    /// recovery refuses a corrupt snapshot, a post-mortem dump (the
    /// recovery spans plus the metric exposition) is written under
    /// `dir/flight/` before the error is returned.
    pub fn open_with_telemetry(
        dir: impl Into<PathBuf>,
        funcs: FunctionRegistry,
        actions: ActionRegistry,
        opts: Options,
        registry: Arc<Registry>,
        tracer: Tracer,
    ) -> Result<Self, DurableError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let recorder = Arc::new(FlightRecorder::new(
            tracer.clone(),
            registry.clone(),
            dir.join(FLIGHT_DIR),
        ));
        let recovered = match replay_traced(&dir, &funcs, &actions, &tracer) {
            Ok(r) => r,
            Err(e) => {
                // A torn-WAL tail is tolerated silently; a Corrupt
                // refusal means the snapshot itself is damaged — ship
                // the recovery spans as context for the post-mortem.
                if matches!(e, RecoverError::Corrupt { .. }) {
                    let _ = recorder.dump("recovery-corrupt");
                }
                return Err(e.into());
            }
        };
        if registry.is_enabled() {
            registry
                .counter("durable_recovery_frames_total")
                .add(recovered.frames_replayed);
        }
        let snap = capture(
            &recovered.engine,
            &recovered.action_specs,
            recovered.last_seq,
        )?;
        write_snapshot(&dir, &snap)?;
        let mut engine = recovered.engine;
        engine.attach_telemetry(registry.clone(), tracer.clone());
        // A disabled registry hands out disabled counters, so this is
        // safe either way and keeps the tracer live when only spans
        // are on.
        let wal_metrics = WalMetrics::from_parts(&registry, tracer.clone());
        let metrics = if registry.is_enabled() {
            DurableMetrics::from_registry(&registry)
        } else {
            DurableMetrics::disabled()
        };
        let mut wal = Wal::create(&dir.join(WAL_FILE), recovered.last_seq + 1, opts.sync)?;
        wal.set_metrics(wal_metrics.clone());
        Ok(DurableRuleEngine {
            dir,
            engine,
            wal,
            specs: recovered.action_specs,
            funcs,
            actions,
            opts,
            since_snapshot: 0,
            wal_metrics,
            metrics,
            tracer,
            recorder,
            advisor_fn: None,
        })
    }

    /// The metrics registry the engine records into — disabled (empty)
    /// unless opened through
    /// [`open_with_metrics`](Self::open_with_metrics).
    pub fn metrics(&self) -> &Arc<Registry> {
        self.engine.metrics()
    }

    /// Read access to the wrapped engine (database, rules, log,
    /// counters). There is deliberately no mutable access: every
    /// mutation must flow through a logged entry point.
    pub fn engine(&self) -> &RuleEngine {
        &self.engine
    }

    /// The durable directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The sequence number the next logged operation will carry.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Logs a record, applies the matching engine operation, and runs
    /// the snapshot cadence. The record is on the log (though not
    /// necessarily synced) before the engine sees the operation.
    fn log_and<T>(
        &mut self,
        record: Record,
        apply: impl FnOnce(&mut RuleEngine) -> Result<T, EngineError>,
    ) -> Result<T, DurableError> {
        self.wal.append(&record)?;
        let out = apply(&mut self.engine).map_err(DurableError::Engine);
        self.bump_snapshot_cadence()?;
        out
    }

    /// Counts one logged operation against the snapshot cadence. Must
    /// run only once all bookkeeping for the operation (notably
    /// [`Self::specs`]) is in place, since it may capture a snapshot.
    fn bump_snapshot_cadence(&mut self) -> Result<(), DurableError> {
        self.since_snapshot += 1;
        if let Some(every) = self.opts.snapshot_every {
            if self.since_snapshot >= every.max(1) {
                self.snapshot()?;
            }
        }
        Ok(())
    }

    /// Creates a relation (logged).
    pub fn create_relation(&mut self, schema: Schema) -> Result<(), DurableError> {
        self.log_and(
            Record::CreateRelation {
                schema: schema.clone(),
            },
            |e| e.create_relation(schema),
        )
    }

    /// Drops a relation and every rule condition on it (logged).
    pub fn drop_relation(&mut self, name: &str) -> Result<Relation, DurableError> {
        self.log_and(
            Record::DropRelation {
                name: name.to_string(),
            },
            |e| e.drop_relation(name),
        )
    }

    /// Registers a rule from its durable spec (logged). The condition
    /// is parsed and the action resolved *before* logging, so a spec
    /// that cannot be replayed is never admitted to the log.
    pub fn add_rule(&mut self, spec: RuleSpec) -> Result<RuleId, DurableError> {
        let rule = build_rule(&spec, &self.funcs, &self.actions).map_err(DurableError::from)?;
        let action_spec = spec.action.clone();
        // Not `log_and`: the spec must be registered before the
        // snapshot cadence runs, or capturing right after this very
        // operation would see a callback rule with no named spec.
        self.wal.append(&Record::AddRule { spec })?;
        let out = self.engine.add_rule(rule).map_err(DurableError::Engine);
        if let Ok(id) = &out {
            self.specs.insert(id.0, action_spec);
        }
        self.bump_snapshot_cadence()?;
        out
    }

    /// Unregisters a rule (logged).
    pub fn remove_rule(&mut self, id: RuleId) -> Result<Rule, DurableError> {
        let rule = self.log_and(Record::RemoveRule { id: id.0 }, |e| e.remove_rule(id))?;
        self.specs.remove(&id.0);
        Ok(rule)
    }

    /// Inserts a tuple and runs the rule chain (logged).
    pub fn insert(
        &mut self,
        relation: &str,
        values: Vec<Value>,
    ) -> Result<FireReport, DurableError> {
        self.log_and(
            Record::Insert {
                relation: relation.to_string(),
                values: values.clone(),
            },
            |e| e.insert(relation, values),
        )
    }

    /// Inserts a tuple like [`insert`](Self::insert) — logged
    /// identically — but also returns the EXPLAIN trace of the match
    /// the insertion triggered. Replay sees a plain insert.
    pub fn explain_insert(
        &mut self,
        relation: &str,
        values: Vec<Value>,
    ) -> Result<(MatchTrace, FireReport), DurableError> {
        self.log_and(
            Record::Insert {
                relation: relation.to_string(),
                values: values.clone(),
            },
            |e| e.explain_insert(relation, values),
        )
    }

    /// Updates a tuple and runs the rule chain (logged).
    pub fn update(
        &mut self,
        relation: &str,
        id: TupleId,
        values: Vec<Value>,
    ) -> Result<FireReport, DurableError> {
        self.log_and(
            Record::Update {
                relation: relation.to_string(),
                id: id.0,
                values: values.clone(),
            },
            |e| e.update(relation, id, values),
        )
    }

    /// Deletes a tuple and runs the rule chain (logged).
    pub fn delete(&mut self, relation: &str, id: TupleId) -> Result<FireReport, DurableError> {
        self.log_and(
            Record::Delete {
                relation: relation.to_string(),
                id: id.0,
            },
            |e| e.delete(relation, id),
        )
    }

    /// Inserts a batch and runs the rule chain once over it (logged as
    /// a single record).
    pub fn insert_batch(
        &mut self,
        relation: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<FireReport, DurableError> {
        self.log_and(
            Record::InsertBatch {
                relation: relation.to_string(),
                rows: rows.clone(),
            },
            |e| e.insert_batch(relation, rows),
        )
    }

    /// Changes the firing limit. Limit changes are not logged records;
    /// the new value is persisted by forcing a snapshot immediately,
    /// so replay of any later record runs under the right limit.
    pub fn set_firing_limit(&mut self, limit: usize) -> Result<(), DurableError> {
        self.engine.set_firing_limit(limit);
        self.snapshot()
    }

    /// Takes a snapshot now and truncates the log. On return the
    /// snapshot file covers every operation ever applied, and the WAL
    /// is empty.
    pub fn snapshot(&mut self) -> Result<(), DurableError> {
        let _span = self.tracer.span("durable_snapshot");
        let timer = self.metrics.snapshot_nanos.start_timer();
        let last = self.wal.next_seq() - 1;
        let snap = capture(&self.engine, &self.specs, last)?;
        write_snapshot(&self.dir, &snap)?;
        self.metrics.snapshot_nanos.stop_timer(timer);
        self.metrics.snapshots.inc();
        if self.metrics.snapshot_bytes.is_enabled() {
            if let Ok(meta) = std::fs::metadata(self.dir.join(SNAPSHOT_FILE)) {
                self.metrics.snapshot_bytes.record(meta.len());
            }
        }
        // Only truncate the log after the snapshot rename is durable;
        // a crash between the two leaves a stale log whose records
        // replay skips by sequence number.
        self.wal = Wal::create(&self.dir.join(WAL_FILE), last + 1, self.opts.sync)?;
        self.wal.set_metrics(self.wal_metrics.clone());
        self.since_snapshot = 0;
        Ok(())
    }

    /// Forces all appended log records to stable storage (group-commit
    /// flush point under [`SyncPolicy::EveryN`] / [`SyncPolicy::Manual`]).
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.wal.sync()?;
        Ok(())
    }

    /// The span tracer the engine emits into — disabled unless opened
    /// through [`open_with_telemetry`](Self::open_with_telemetry).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attaches a cost-attribution profiler: the wrapped engine starts
    /// billing per-rule accounts into it (recovered rules are named
    /// retroactively), and flight dumps gain the account and slow-op
    /// sections. Attribution is not replayed — accounts restart empty
    /// on reopen, like every other metric.
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        self.engine.attach_profiler(profiler);
        self.rebuild_recorder();
    }

    /// Attaches workload accounts to the wrapped engine's predicate
    /// index (per-attribute op mix, clause shapes, stab selectivity —
    /// the index advisor's input). Like profiling, accounts are not
    /// replayed: they restart empty on reopen.
    pub fn attach_workload(&mut self, workload: WorkloadStats) {
        self.engine.attach_workload(workload);
    }

    /// The workload accounts the wrapped engine records into —
    /// disabled unless [`attach_workload`](Self::attach_workload) was
    /// called.
    pub fn workload(&self) -> &WorkloadStats {
        self.engine.workload()
    }

    /// Attaches an index-advisor report producer to the flight
    /// recorder: every post-mortem dump gains an
    /// `== advisor (index recommendations) ==` section, so a crash
    /// leaves behind what the workload wanted the index to look like.
    pub fn attach_advisor(&mut self, advisor: impl Fn() -> String + Send + Sync + 'static) {
        self.advisor_fn = Some(Arc::new(advisor));
        self.rebuild_recorder();
    }

    /// Recreates the flight recorder with every currently attached
    /// section producer (profiler, advisor).
    fn rebuild_recorder(&mut self) {
        let mut recorder = FlightRecorder::new(
            self.tracer.clone(),
            self.engine.metrics().clone(),
            self.dir.join(FLIGHT_DIR),
        )
        .with_profiler(self.engine.profiler().clone());
        if let Some(advisor) = self.advisor_fn.clone() {
            recorder = recorder.with_advisor(move || advisor());
        }
        self.recorder = Arc::new(recorder);
    }

    /// The profiler the wrapped engine bills into — disabled unless
    /// [`attach_profiler`](Self::attach_profiler) was called.
    pub fn profiler(&self) -> &Profiler {
        self.engine.profiler()
    }

    /// The flight recorder bound to this engine's trace ring and
    /// registry. Dumps land under `dir/flight/`.
    pub fn flight_recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// Writes a post-mortem dump (recent spans + metric exposition) to
    /// `dir/flight/` and returns its path.
    pub fn dump_flight(&self, reason: &str) -> Result<PathBuf, DurableError> {
        Ok(self.recorder.dump(reason)?)
    }

    /// A small line-oriented liveness report, suitable as the `/health`
    /// body of a [`telemetry::serve`] exposition server:
    ///
    /// ```text
    /// up 1
    /// wal_next_seq 42
    /// rules 3
    /// shard_imbalance_max 1.25
    /// ```
    pub fn health_text(&self) -> String {
        let imbalance = self
            .engine
            .shard_stats()
            .iter()
            .map(|s| s.imbalance)
            .fold(0.0_f64, f64::max);
        format!(
            "up 1\nwal_next_seq {}\nrules {}\nshard_imbalance_max {:.2}\n",
            self.wal.next_seq(),
            self.engine.rules().count(),
            imbalance
        )
    }
}
