//! CRC-32 (IEEE 802.3, the polynomial used by zip/png/ethernet),
//! table-driven, built at compile time — the frame checksum for both
//! the WAL and snapshot files. Every single-bit error and every burst
//! up to 32 bits is detected, which is exactly the torn-tail and
//! bit-rot failure model the recovery path tolerates.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Incremental CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh digest.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ b as u32) & 0xFF) as usize;
            self.state = (self.state >> 8) ^ TABLE[idx];
        }
    }

    /// The finished checksum.
    pub fn finish(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot checksum of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut c = Crc32::new();
        c.update(b"1234");
        c.update(b"");
        c.update(b"56789");
        assert_eq!(c.finish(), 0xCBF4_3926);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = b"predicate matching".to_vec();
        let want = crc32(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut dup = base.clone();
                dup[i] ^= 1 << bit;
                assert_ne!(crc32(&dup), want, "flip at byte {i} bit {bit} undetected");
            }
        }
    }
}
