//! # Durability layer: WAL + snapshots + crash recovery
//!
//! The paper's rule system lives inside a DBMS, where rule definitions
//! and the relations they watch survive crashes. This crate supplies
//! that missing substrate for [`rules::RuleEngine`]:
//!
//! * a **write-ahead log** ([`Wal`]) of logical commands — every
//!   mutating engine operation, framed with a length, CRC-32 checksum,
//!   and dense sequence number, with explicit fsync points and
//!   group-commit batching ([`SyncPolicy`]);
//! * periodic **snapshots** ([`snapshot`]) serializing the catalog
//!   (every relation, holes and free lists included), the stored rules
//!   (condition source text, masks, priorities, fire counts, action
//!   specs), and the engine counters, followed by log truncation;
//! * **recovery** ([`replay`]) rebuilding an engine — and thereby its
//!   `ShardedPredicateIndex`, bulk-loaded through
//!   `insert_many` — as snapshot + log suffix, tolerating a torn or
//!   truncated log tail by stopping at the first bad frame.
//!
//! The user-facing wrapper is [`DurableRuleEngine`]; the purely
//! in-memory `RuleEngine` is untouched and remains the default for
//! callers that do not need persistence.
//!
//! ```no_run
//! use durable::{ActionRegistry, DurableRuleEngine, Options, RuleSpec, ActionSpec};
//! use predicate::FunctionRegistry;
//! use relation::{AttrType, Schema, Value};
//! use rules::EventMask;
//!
//! let mut engine = DurableRuleEngine::open(
//!     "/tmp/mydb",
//!     FunctionRegistry::default(),
//!     ActionRegistry::new(),
//!     Options::default(),
//! )
//! .unwrap();
//! engine
//!     .create_relation(
//!         Schema::builder("emp").attr("salary", AttrType::Int).build(),
//!     )
//!     .unwrap();
//! engine
//!     .add_rule(RuleSpec {
//!         name: "underpaid".into(),
//!         condition: "emp.salary < 15000".into(),
//!         mask: EventMask::INSERT_UPDATE,
//!         priority: 0,
//!         action: ActionSpec::Log("below minimum".into()),
//!     })
//!     .unwrap();
//! engine.insert("emp", vec![Value::Int(9_000)]).unwrap();
//! // Crash here: reopening replays the log and recovers everything —
//! // relations, rules, fire counts, even the engine log.
//! ```
//!
//! No third-party dependencies: records are hand-rolled length-prefixed
//! binary (via [`relation::codec`]) and the CRC-32 is computed from a
//! compile-time table ([`crc`]).

#![forbid(unsafe_code)]
#![deny(unreachable_pub)]

pub mod crc;
mod engine;
mod record;
pub mod recovery;
pub mod snapshot;
pub mod wal;

pub use engine::{DurableError, DurableRuleEngine, Options, FLIGHT_DIR};
pub use record::{ActionSpec, Record, RuleSpec};
pub use recovery::{replay, replay_traced, ActionRegistry, RecoverError, Recovered, WAL_FILE};
pub use snapshot::{read_snapshot, write_snapshot, SnapshotData, SnapshotError, SNAPSHOT_FILE};
pub use wal::{parse_wal, read_wal, SyncPolicy, Wal, WalMetrics, WalSuffix};
