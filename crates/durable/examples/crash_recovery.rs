//! End-to-end crash-recovery demo: build durable state, simulate a
//! crash that tears the WAL tail mid-frame, reopen, and assert the
//! recovered engine matches the synced prefix — rules, tuples, fire
//! counts, and live firing behavior included.
//!
//! Run with `cargo run -p durable --example crash_recovery`. Exits
//! nonzero (panics) if any recovery invariant fails, so CI can use it
//! as a smoke test.

use durable::{
    parse_wal, ActionRegistry, ActionSpec, DurableRuleEngine, Options, RuleSpec, SyncPolicy,
    WAL_FILE,
};
use predicate::FunctionRegistry;
use relation::{AttrType, Schema, Value};
use rules::EventMask;
use std::fs::OpenOptions;
use std::io::Write;

fn registries() -> (FunctionRegistry, ActionRegistry) {
    let mut actions = ActionRegistry::new();
    actions.register("audit-vip", |ctx| {
        ctx.queue(rules::DbOp::Insert {
            relation: "audit".into(),
            values: vec![Value::Int(1)],
        });
    });
    (FunctionRegistry::default(), actions)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Phase 1: build state and sync it. --------------------------
    let (funcs, actions) = registries();
    let opts = Options {
        sync: SyncPolicy::Manual,
        snapshot_every: None,
    };
    let mut engine = DurableRuleEngine::open(&dir, funcs, actions, opts).expect("open fresh");
    engine
        .create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .expect("create emp");
    engine
        .create_relation(Schema::builder("audit").attr("n", AttrType::Int).build())
        .expect("create audit");
    engine
        .add_rule(RuleSpec {
            name: "vip".into(),
            condition: "emp.salary > 100000".into(),
            mask: EventMask::ALL,
            priority: 1,
            action: ActionSpec::Named("audit-vip".into()),
        })
        .expect("add rule");
    engine
        .insert("emp", vec![Value::str("al"), Value::Int(50_000)])
        .expect("insert al");
    let report = engine
        .insert("emp", vec![Value::str("bo"), Value::Int(200_000)])
        .expect("insert bo");
    assert_eq!(report.fired.len(), 1, "vip rule fires for bo");
    engine.sync().expect("sync");
    let durable_fired = engine.engine().total_fired();
    let durable_rows: usize = engine
        .engine()
        .db()
        .catalog()
        .relation("emp")
        .unwrap()
        .len();

    // ---- Phase 2: crash. --------------------------------------------
    // Append an unsynced record, then "crash": drop the engine without
    // syncing and tear the log mid-frame the way a power cut can.
    engine
        .insert("emp", vec![Value::str("cy"), Value::Int(999_999)])
        .expect("insert cy (to be torn)");
    drop(engine);
    let wal_path = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal_path).expect("read wal");
    let frame_ends = parse_wal(&bytes).frame_ends;
    let last_end = *frame_ends.last().expect("frames") as usize;
    let prev_end = frame_ends[frame_ends.len() - 2] as usize;
    let torn_at = prev_end + (last_end - prev_end) / 2; // mid-frame
    std::fs::write(&wal_path, &bytes[..torn_at]).expect("tear wal");
    // ...and some power-cut garbage after the tear for good measure.
    let mut f = OpenOptions::new().append(true).open(&wal_path).unwrap();
    f.write_all(&[0xAB; 13]).unwrap();
    drop(f);
    println!(
        "crash simulated: wal torn at byte {torn_at} of {}",
        bytes.len()
    );

    // ---- Phase 3: recover and verify. -------------------------------
    let (funcs, actions) = registries();
    let mut engine = DurableRuleEngine::open(&dir, funcs, actions, opts).expect("recover");
    let emp = engine
        .engine()
        .db()
        .catalog()
        .relation("emp")
        .expect("emp survives");
    assert_eq!(
        emp.len(),
        durable_rows,
        "torn insert dropped, synced rows kept"
    );
    assert_eq!(
        engine.engine().total_fired(),
        durable_fired,
        "fire counts replayed exactly"
    );
    assert_eq!(engine.engine().rule_count(), 1, "rule survives");

    // The recovered rule must still *fire*: a new vip insert cascades
    // into audit via the re-resolved named action.
    let audit_before = engine
        .engine()
        .db()
        .catalog()
        .relation("audit")
        .unwrap()
        .len();
    let report = engine
        .insert("emp", vec![Value::str("dd"), Value::Int(300_000)])
        .expect("post-recovery insert");
    assert_eq!(report.fired.len(), 1, "recovered rule fires");
    let audit_after = engine
        .engine()
        .db()
        .catalog()
        .relation("audit")
        .unwrap()
        .len();
    assert_eq!(
        audit_after,
        audit_before + 1,
        "named action cascades after recovery"
    );

    let _ = std::fs::remove_dir_all(&dir);
    println!("recovery OK: {durable_rows} rows, {durable_fired} firings replayed; rules live");
}
