//! Ablation D: sequential vs sharded batch matching.
//!
//! Compares the paper's [`PredicateIndex`] driven one tuple at a time
//! against [`ShardedPredicateIndex::match_batch_threads`] at 1/2/4/8
//! workers, on two shapes:
//!
//! * the §5.2 scenario (one relation — every tuple lands on one shard,
//!   so any speedup comes purely from concurrent readers on that
//!   shard's `RwLock`), and
//! * the same shape spread over 8 relations (tuples fan out across
//!   shards, the intended deployment of the sharded front-end).
//!
//! The `sharded/batch@1` row isolates the front-end's fixed overhead
//! (lock acquisition, shard grouping) from the threading win.
//!
//! Reading the numbers: worker threads only buy wall-clock on a
//! multi-core host — on a single hardware thread the `batch@N` rows
//! can at best tie `sequential` (they time-slice one core, paying spawn
//! overhead). `batch@1` should always be within noise of `sequential`;
//! on the multi-relation shape it typically wins even single-core,
//! because grouping a batch by shard improves locality.

use bench::scheme::SchemeWorkload;
use bench::workload::BatchWorkload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use predindex::{Matcher, PredicateIndex, ShardedPredicateIndex};
use relation::Tuple;
use std::hint::black_box;

/// Tuples per batch: sized like a bulk load / queue drain, large enough
/// that per-batch thread-spawn cost amortizes.
const BATCH: usize = 4096;

fn bench_shape(c: &mut Criterion, label: &str, relations: usize) {
    let w = BatchWorkload {
        relations,
        scheme: SchemeWorkload::default(),
    };
    let db = w.database();
    let preds = w.predicates();

    let mut seq = PredicateIndex::new();
    let sharded = ShardedPredicateIndex::new();
    for p in &preds {
        seq.insert(p.clone(), db.catalog())
            .expect("valid predicate");
        sharded
            .insert_shared(p.clone(), db.catalog())
            .expect("valid predicate");
    }

    let batch = w.batch(BATCH);
    let refs: Vec<(&str, &Tuple)> = batch.iter().map(|(r, t)| (r.as_str(), t)).collect();

    let mut group = c.benchmark_group(label);
    group.throughput(Throughput::Elements(BATCH as u64));

    // The baseline retains every tuple's match set, exactly what
    // `match_batch` returns — a discard-and-reuse loop would be a
    // different (weaker) contract.
    group.bench_function(BenchmarkId::new("sequential", BATCH), |b| {
        b.iter(|| {
            let out: Vec<Vec<predindex::PredicateId>> = refs
                .iter()
                .map(|(rel, t)| seq.match_tuple(rel, t))
                .collect();
            black_box(out)
        })
    });

    for threads in [1usize, 2, 4, 8] {
        group.bench_function(BenchmarkId::new(format!("batch@{threads}"), BATCH), |b| {
            b.iter(|| black_box(sharded.match_batch_threads(&refs, threads)))
        });
    }
    group.finish();
}

fn bench_sharding(c: &mut Criterion) {
    // §5.2: one relation, 200 predicates, one shard takes all traffic.
    bench_shape(c, "sharding_1rel_scheme52", 1);
    // Spread: 8 relations x 200 predicates across the shards.
    bench_shape(c, "sharding_8rel", 8);
}

/// Short statistical config, matching the other ablations.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_sharding
}
criterion_main!(benches);
