//! Ablation C: the full Figure 1 scheme against every §2 baseline on
//! the §5.2 scenario shape, sweeping the predicate count.

use bench::scheme::SchemeWorkload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use predindex::{
    HashSequentialMatcher, Matcher, PhysicalLockingMatcher, PredicateIndex, RTreeMatcher,
    SequentialMatcher,
};
use std::hint::black_box;

fn build(m: &mut dyn Matcher, w: &SchemeWorkload) {
    let db = w.database();
    for p in w.predicates() {
        m.insert(p, db.catalog()).expect("valid scenario predicate");
    }
}

fn bench_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_matchers");
    for &n in &[50usize, 200, 1000, 5000] {
        let w = SchemeWorkload {
            predicates: n,
            ..SchemeWorkload::default()
        };
        let db = w.database();
        let tuples = w.tuples(256);
        group.throughput(Throughput::Elements(tuples.len() as u64));

        let mut matchers: Vec<Box<dyn Matcher>> = vec![
            Box::new(PredicateIndex::new()),
            Box::new(SequentialMatcher::new()),
            Box::new(HashSequentialMatcher::new()),
            Box::new(PhysicalLockingMatcher::with_indexed_attrs(
                db.catalog(),
                // Half the predicated attributes carry database indexes.
                [("r", "a0"), ("r", "a1"), ("r", "a2")],
            )),
            Box::new(PhysicalLockingMatcher::new()), // no indexes at all
            Box::new(RTreeMatcher::new()),
        ];
        let labels = [
            "ibs-index",
            "sequential",
            "hash+sequential",
            "locking(indexes)",
            "locking(none)",
            "rtree",
        ];
        for (m, label) in matchers.iter_mut().zip(labels) {
            build(m.as_mut(), &w);
            group.bench_with_input(BenchmarkId::new(label, n), &tuples, |b, tuples| {
                b.iter(|| {
                    let mut total = 0usize;
                    for t in tuples {
                        total += m.match_tuple(SchemeWorkload::RELATION, t).len();
                    }
                    black_box(total)
                })
            });
        }
    }
    group.finish();
}

/// Short statistical config: the full sweep has ~110 points; default
/// Criterion settings (100 samples x 5 s) would take hours for no extra
/// decision value at these effect sizes.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_matchers
}
criterion_main!(benches);
