//! Ablation B: the comparison the paper proposes as future work in §6 —
//! "implement several different techniques for dynamically indexing
//! intervals, including 1-dimensional R-trees, IBS-trees, and priority
//! search trees, and then compare their ... time and space
//! requirements". Search cost across every structure in the workspace on
//! the paper's Figure 8 workload.

use altindex::{
    BulkBuild, CenteredIntervalTree, IntervalSkipList, IntervalTreap, NaiveIntervalList,
    SegmentTree, StabIndex,
};
use bench::workload::FigureWorkload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ibs::IbsTree;
use interval::{Interval, IntervalId, Lower, Upper};
use rtree::{RTree, Rect, WORLD};
use std::hint::black_box;

/// 1-D R-tree adapter for the same workload.
fn rtree_1d(items: &[(IntervalId, Interval<i64>)]) -> RTree {
    let mut t = RTree::new(1);
    for (id, iv) in items {
        let lo = match iv.lo() {
            Lower::Unbounded => -WORLD,
            Lower::Inclusive(v) | Lower::Exclusive(v) => *v as f64,
        };
        let hi = match iv.hi() {
            Upper::Unbounded => WORLD,
            Upper::Inclusive(v) | Upper::Exclusive(v) => *v as f64,
        };
        t.insert(*id, Rect::new(vec![lo], vec![hi]));
    }
    t
}

fn bench_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_structures");
    for &n in &[100usize, 1000, 10_000] {
        let w = FigureWorkload {
            n,
            a: 0.5,
            seed: 11,
        };
        let items = w.intervals();
        let queries = w.queries(1024);
        group.throughput(Throughput::Elements(queries.len() as u64));

        let ibs: IbsTree<i64> = BulkBuild::build(items.clone());
        let seg = SegmentTree::build(items.clone());
        let cit = CenteredIntervalTree::build(items.clone());
        let treap = IntervalTreap::build(items.clone());
        let skip = IntervalSkipList::build(items.clone());
        let naive = NaiveIntervalList::build(items.clone());
        let r1d = rtree_1d(&items);

        macro_rules! bench_stab {
            ($name:literal, $index:expr) => {
                group.bench_with_input(BenchmarkId::new($name, n), &queries, |b, queries| {
                    let mut out = Vec::with_capacity(128);
                    b.iter(|| {
                        let mut total = 0usize;
                        for q in queries {
                            out.clear();
                            $index.stab_into(q, &mut out);
                            total += out.len();
                        }
                        black_box(total)
                    })
                });
            };
        }
        bench_stab!("ibs", ibs);
        bench_stab!("segment-tree", seg);
        bench_stab!("interval-tree", cit);
        bench_stab!("treap", treap);
        bench_stab!("skip-list", skip);
        if n <= 1000 {
            bench_stab!("naive", naive);
        }
        group.bench_with_input(BenchmarkId::new("rtree-1d", n), &queries, |b, queries| {
            let mut out = Vec::with_capacity(128);
            b.iter(|| {
                let mut total = 0usize;
                for q in queries {
                    out.clear();
                    r1d.stab_into(&[*q as f64], &mut out);
                    total += out.len();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

/// Short statistical config: the full sweep has ~110 points; default
/// Criterion settings (100 samples x 5 s) would take hours for no extra
/// decision value at these effect sizes.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_structures
}
criterion_main!(benches);
