//! Figure 8: average IBS-tree search time (find all predicates matching
//! a value) for a = 0, 0.5, 1 and increasing N, query values drawn from
//! the paper's U[1, 10000] key distribution.

use bench::workload::FigureWorkload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ibs::{BalanceMode, IbsTree};
use std::hint::black_box;

fn fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_search");
    for &n in &[100usize, 250, 500, 1000] {
        for &(label, a) in &[("a=0", 0.0), ("a=0.5", 0.5), ("a=1", 1.0)] {
            let w = FigureWorkload { n, a, seed: 8 };
            let mut tree = IbsTree::with_mode(BalanceMode::Avl);
            for (id, iv) in w.intervals() {
                tree.insert(id, iv).unwrap();
            }
            let queries = w.queries(1024);
            group.throughput(Throughput::Elements(queries.len() as u64));
            group.bench_with_input(
                BenchmarkId::new(label, n),
                &(tree, queries),
                |b, (tree, queries)| {
                    let mut out = Vec::with_capacity(64);
                    b.iter(|| {
                        let mut total = 0usize;
                        for q in queries {
                            out.clear();
                            tree.stab_into(q, &mut out);
                            total += out.len();
                        }
                        black_box(total)
                    })
                },
            );
        }
    }
    group.finish();
}

/// Short statistical config: the full sweep has ~110 points; default
/// Criterion settings (100 samples x 5 s) would take hours for no extra
/// decision value at these effect sizes.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = fig8
}
criterion_main!(benches);
