//! Ablation A: what the §4.3 balancing machinery buys.
//!
//! The paper implemented rotations on paper but benchmarked the
//! unbalanced tree, noting "as with ordinary binary search trees, the
//! tree is normally balanced if data is inserted in random order" and
//! that balanced insertion "will be higher than shown in Figure 7".
//! This bench quantifies both halves: random order (where AVL mostly
//! costs) and sorted order (where the unbalanced tree degenerates to a
//! chain and AVL rescues search).

use bench::workload::FigureWorkload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibs::{BalanceMode, IbsTree};
use interval::Interval;
use std::hint::black_box;

fn sorted_points(n: usize) -> Vec<(interval::IntervalId, Interval<i64>)> {
    (0..n as u32)
        .map(|i| {
            let k = i as i64 * 11;
            (interval::IntervalId(i), Interval::closed(k, k + 6))
        })
        .collect()
}

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_balance");
    let n = 1_000usize;
    let random = FigureWorkload { n, a: 0.5, seed: 4 }.intervals();
    let sorted = sorted_points(n);
    let queries = FigureWorkload { n, a: 0.5, seed: 4 }.queries(1024);

    for (order, items) in [("random", &random), ("sorted", &sorted)] {
        for (mode_name, mode) in [("unbalanced", BalanceMode::None), ("avl", BalanceMode::Avl)] {
            group.bench_with_input(
                BenchmarkId::new(format!("insert/{order}"), mode_name),
                items,
                |b, items| {
                    b.iter(|| {
                        let mut t = IbsTree::with_mode(mode);
                        for (id, iv) in items {
                            t.insert(*id, iv.clone()).unwrap();
                        }
                        black_box(t.height())
                    })
                },
            );
            let mut tree = IbsTree::with_mode(mode);
            for (id, iv) in items {
                tree.insert(*id, iv.clone()).unwrap();
            }
            group.bench_with_input(
                BenchmarkId::new(format!("search/{order}"), mode_name),
                &(tree, &queries),
                |b, (tree, queries)| {
                    let mut out = Vec::with_capacity(64);
                    b.iter(|| {
                        let mut total = 0usize;
                        for q in queries.iter() {
                            out.clear();
                            tree.stab_into(q, &mut out);
                            total += out.len();
                        }
                        black_box(total)
                    })
                },
            );
        }
    }
    group.finish();
}

/// Short statistical config: the full sweep has ~110 points; default
/// Criterion settings (100 samples x 5 s) would take hours for no extra
/// decision value at these effect sizes.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = ablation
}
criterion_main!(benches);
