//! The §5.2 scenario end to end: per-tuple match cost of the full
//! Figure 1 scheme at the paper's exact shape (15 attributes, 200
//! predicates, 90% indexable, selectivity 0.1). The paper's estimate on
//! a SPARCstation 1 was 2.1 ms/tuple; the shape of interest is how the
//! cost decomposes, not the absolute number.

use bench::costmodel;
use bench::scheme::SchemeWorkload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use predindex::{Matcher, PredicateIndex};
use std::hint::black_box;

fn scheme_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheme_cost");
    // The paper's shape, plus scaled variants of the same shape.
    for &preds in &[200usize, 1000, 5000] {
        let w = SchemeWorkload {
            predicates: preds,
            ..SchemeWorkload::default()
        };
        // The §5.2 terms, read from telemetry counters on a real run
        // rather than estimated: the timing below divides over exactly
        // this much work.
        let work = costmodel::measure_work(&w, 512);
        eprintln!(
            "scheme_cost/{preds}: per tuple: {:.1} IBS nodes, {:.1} marks, \
             {:.1} sequential tests, {:.1} residual tests ({:.1} pass)",
            work.ibs_nodes_per_tuple(),
            work.ibs_marks as f64 / work.tuples.max(1) as f64,
            work.seq_tests_per_tuple(),
            work.residual_tests_per_tuple(),
            work.residual_passes as f64 / work.tuples.max(1) as f64,
        );
        let db = w.database();
        let mut index = PredicateIndex::new();
        for p in w.predicates() {
            index
                .insert(p, db.catalog())
                .expect("valid scenario predicate");
        }
        let tuples = w.tuples(512);
        group.throughput(Throughput::Elements(tuples.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("match_tuple", preds),
            &tuples,
            |b, tuples| {
                let mut out = Vec::with_capacity(64);
                b.iter(|| {
                    let mut total = 0usize;
                    for t in tuples {
                        out.clear();
                        index.match_tuple_into(SchemeWorkload::RELATION, t, &mut out);
                        total += out.len();
                    }
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

/// Short statistical config: the full sweep has ~110 points; default
/// Criterion settings (100 samples x 5 s) would take hours for no extra
/// decision value at these effect sizes.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = scheme_cost
}
criterion_main!(benches);
