//! Overhead guard for the telemetry layer.
//!
//! Three comparisons, all over the §5.2 scenario shape:
//!
//! * `sequential_match`: the single-threaded scheme with a disabled
//!   recorder (the seed configuration — every hook is one branch)
//!   versus a live registry recording every counter and histogram;
//! * `sharded_match`: the same pair through the sharded front-end,
//!   which additionally times lock waits when enabled;
//! * `primitive`: the raw cost of one counter increment and one
//!   histogram record, disabled and enabled;
//! * `attribution`: the full rule-chain insert path with the cost
//!   profiler detached (every hook one branch) versus attached
//!   (per-rule accounts billed per event) — the ≤ +15% budget.
//!
//! The disabled rows are the regression guard: they must match the
//! pre-telemetry baseline, since a disabled handle never touches an
//! atomic.

use bench::scheme::SchemeWorkload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use predindex::{Matcher, PredicateIndex, ShardedPredicateIndex};
use relation::{AttrType, Database, Schema, Value};
use rules::{Action, Rule, RuleEngine};
use std::hint::black_box;
use std::sync::Arc;
use telemetry::{Counter, Histogram, Profiler, Registry, Tracer};

const MODES: [&str; 2] = ["disabled", "enabled"];

fn registry_for(mode: &str) -> Arc<Registry> {
    match mode {
        "disabled" => Arc::new(Registry::disabled()),
        _ => Arc::new(Registry::new()),
    }
}

fn match_overhead(c: &mut Criterion) {
    let w = SchemeWorkload::default();
    let db = w.database();
    let tuples = w.tuples(512);

    let mut group = c.benchmark_group("telemetry_overhead");
    group.throughput(Throughput::Elements(tuples.len() as u64));

    for mode in MODES {
        let mut index = PredicateIndex::new();
        index.attach_registry(&registry_for(mode));
        for p in w.predicates() {
            index
                .insert(p, db.catalog())
                .expect("valid scenario predicate");
        }
        group.bench_with_input(
            BenchmarkId::new("sequential_match", mode),
            &tuples,
            |b, tuples| {
                let mut out = Vec::with_capacity(64);
                b.iter(|| {
                    let mut total = 0usize;
                    for t in tuples {
                        out.clear();
                        index.match_tuple_into(SchemeWorkload::RELATION, t, &mut out);
                        total += out.len();
                    }
                    black_box(total)
                })
            },
        );
    }

    for mode in MODES {
        let mut index = ShardedPredicateIndex::new();
        index.attach_registry(&registry_for(mode));
        for p in w.predicates() {
            index
                .insert(p, db.catalog())
                .expect("valid scenario predicate");
        }
        group.bench_with_input(
            BenchmarkId::new("sharded_match", mode),
            &tuples,
            |b, tuples| {
                let mut out = Vec::with_capacity(64);
                b.iter(|| {
                    let mut total = 0usize;
                    for t in tuples {
                        out.clear();
                        index.match_tuple_into(SchemeWorkload::RELATION, t, &mut out);
                        total += out.len();
                    }
                    black_box(total)
                })
            },
        );
    }
    group.finish();
}

fn primitive_overhead(c: &mut Criterion) {
    let registry = Registry::new();
    let cases: [(&str, Counter, Histogram); 2] = [
        ("disabled", Counter::disabled(), Histogram::disabled()),
        (
            "enabled",
            registry.counter("bench_counter_total"),
            registry.histogram("bench_histogram"),
        ),
    ];
    let mut group = c.benchmark_group("telemetry_primitive");
    group.throughput(Throughput::Elements(1024));
    for (mode, counter, histogram) in cases {
        group.bench_function(BenchmarkId::new("counter_inc", mode), |b| {
            b.iter(|| {
                for _ in 0..1024 {
                    counter.inc();
                }
                black_box(counter.get())
            })
        });
        group.bench_function(BenchmarkId::new("histogram_record", mode), |b| {
            b.iter(|| {
                for v in 0..1024u64 {
                    histogram.record(black_box(v));
                }
                black_box(histogram.count())
            })
        });
    }
    group.finish();
}

fn attribution_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_attribution");
    group.throughput(Throughput::Elements(256));
    for (mode, profiled) in [("baseline", false), ("profiled", true)] {
        let registry = Arc::new(Registry::new());
        let mut engine = RuleEngine::new(Database::new());
        engine.attach_telemetry(Arc::clone(&registry), Tracer::disabled());
        if profiled {
            engine.attach_profiler(Profiler::new(&registry));
        }
        engine
            .create_relation(
                Schema::builder("emp")
                    .attr("name", AttrType::Str)
                    .attr("salary", AttrType::Int)
                    .build(),
            )
            .expect("create emp");
        for i in 0i64..16 {
            let rule = Rule::builder(format!("band{i}"))
                .when(&format!(
                    "emp.salary >= {} and emp.salary < {}",
                    i * 1000,
                    (i + 1) * 1000
                ))
                .expect("valid band condition")
                .then(Action::log("hit"))
                .build();
            engine.add_rule(rule).expect("add band rule");
        }
        let mut i = 0i64;
        group.bench_function(BenchmarkId::new("rule_chain_insert", mode), |b| {
            b.iter(|| {
                let mut fired = 0usize;
                for _ in 0..256 {
                    let report = engine
                        .insert("emp", vec![Value::str("e"), Value::Int((i * 37) % 16_000)])
                        .expect("band insert");
                    fired += report.firings.len();
                    i += 1;
                }
                black_box(fired)
            })
        });
    }
    group.finish();
}

fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = match_overhead, primitive_overhead, attribution_overhead
}
criterion_main!(benches);
