//! Figure 9: predicate test cost, IBS-tree vs sequential list, for
//! small predicate counts (N = 5..40). The paper's point: "the cost
//! curve for sequential search is always higher than for the IBS-tree,
//! showing that the IBS-tree has quite low overhead."

use altindex::{BulkBuild, NaiveIntervalList, StabIndex};
use bench::workload::FigureWorkload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ibs::IbsTree;
use std::hint::black_box;

fn fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_vs_sequential");
    for &n in &[5usize, 10, 20, 30, 40] {
        let w = FigureWorkload { n, a: 0.5, seed: 9 };
        let items = w.intervals();
        let queries = w.queries(1024);
        let ibs: IbsTree<i64> = BulkBuild::build(items.clone());
        let seq = NaiveIntervalList::build(items);
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(BenchmarkId::new("ibs", n), &queries, |b, queries| {
            let mut out = Vec::with_capacity(64);
            b.iter(|| {
                let mut total = 0usize;
                for q in queries {
                    out.clear();
                    StabIndex::stab_into(&ibs, q, &mut out);
                    total += out.len();
                }
                black_box(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("sequential", n), &queries, |b, queries| {
            let mut out = Vec::with_capacity(64);
            b.iter(|| {
                let mut total = 0usize;
                for q in queries {
                    out.clear();
                    seq.stab_into(q, &mut out);
                    total += out.len();
                }
                black_box(total)
            })
        });
    }
    group.finish();
}

/// Short statistical config: the full sweep has ~110 points; default
/// Criterion settings (100 samples x 5 s) would take hours for no extra
/// decision value at these effect sizes.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = fig9
}
criterion_main!(benches);
