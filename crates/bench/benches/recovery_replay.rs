//! Recovery cost: rebuilding a rule engine from its durable home.
//!
//! Two axes:
//!
//! * **WAL length** — `replay` over an empty snapshot plus N logged
//!   inserts. Replay re-executes every logical command (including rule
//!   matching), so this scales with both N and the rule population.
//! * **Snapshot load** — the same state checkpointed first, so
//!   recovery is a single decode plus a bulk predicate load
//!   ([`ShardedPredicateIndex::insert_many`]) and a WAL header read.
//!
//! The gap between the two rows for the same N is the checkpoint
//! dividend: what a snapshot saves the next restart.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use durable::{
    replay, ActionRegistry, ActionSpec, DurableRuleEngine, Options, RuleSpec, SyncPolicy,
};
use predicate::FunctionRegistry;
use relation::{AttrType, Schema, Value};
use rules::EventMask;
use std::hint::black_box;
use std::path::PathBuf;

const RULES: usize = 50;

fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("durable-bench-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Builds a durable dir holding `RULES` rules and `rows` inserts. With
/// `checkpoint`, everything is folded into the snapshot (empty WAL);
/// without, the snapshot is empty and the WAL carries every operation.
fn build_dir(label: &str, rows: usize, checkpoint: bool) -> PathBuf {
    let dir = scratch(label);
    let mut engine = DurableRuleEngine::open(
        &dir,
        FunctionRegistry::default(),
        ActionRegistry::new(),
        Options {
            sync: SyncPolicy::Manual,
            snapshot_every: None,
        },
    )
    .expect("open");
    engine
        .create_relation(
            Schema::builder("emp")
                .attr("a", AttrType::Int)
                .attr("s", AttrType::Str)
                .build(),
        )
        .expect("create");
    for i in 0..RULES {
        let lo = (i * 13) % 900;
        engine
            .add_rule(RuleSpec {
                name: format!("r{i}"),
                condition: format!("emp.a > {lo} and emp.a < {}", lo + 120),
                mask: EventMask::ALL,
                priority: (i % 7) as i32,
                action: ActionSpec::Log(format!("hit {i}")),
            })
            .expect("rule");
    }
    for i in 0..rows {
        engine
            .insert(
                "emp",
                vec![Value::Int((i * 37 % 1000) as i64), Value::str("x")],
            )
            .expect("insert");
    }
    if checkpoint {
        engine.snapshot().expect("snapshot");
    }
    engine.sync().expect("sync");
    dir
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_replay");
    for rows in [1_000usize, 10_000] {
        group.throughput(Throughput::Elements(rows as u64));
        let wal_dir = build_dir(&format!("wal-{rows}"), rows, false);
        group.bench_function(BenchmarkId::new("wal_replay", rows), |b| {
            b.iter(|| {
                let r = replay(
                    &wal_dir,
                    &FunctionRegistry::default(),
                    &ActionRegistry::new(),
                )
                .expect("replay");
                black_box(r.engine.total_fired())
            })
        });
        let snap_dir = build_dir(&format!("snap-{rows}"), rows, true);
        group.bench_function(BenchmarkId::new("snapshot_load", rows), |b| {
            b.iter(|| {
                let r = replay(
                    &snap_dir,
                    &FunctionRegistry::default(),
                    &ActionRegistry::new(),
                )
                .expect("load");
                black_box(r.engine.total_fired())
            })
        });
        let _ = std::fs::remove_dir_all(&wal_dir);
        let _ = std::fs::remove_dir_all(&snap_dir);
    }
    group.finish();
}

/// Short statistical config, matching the other ablations.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = bench_recovery
}
criterion_main!(benches);
