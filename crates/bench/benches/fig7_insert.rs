//! Figure 7: average IBS-tree insertion time for a = 0, 0.5, 1 and
//! increasing N. "The average insertion cost was measured as the time to
//! insert N predicates in an initially empty index, divided by N."
//!
//! The paper's measurement used an unbalanced tree with random insertion
//! order; both modes are swept here.

use bench::workload::FigureWorkload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ibs::{BalanceMode, IbsTree};
use std::hint::black_box;

fn fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_insert");
    for &n in &[100usize, 250, 500, 1000] {
        for &(label, a) in &[("a=0", 0.0), ("a=0.5", 0.5), ("a=1", 1.0)] {
            let w = FigureWorkload { n, a, seed: 7 };
            let items = w.intervals();
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("unbalanced/{label}"), n),
                &items,
                |b, items| {
                    b.iter(|| {
                        let mut t = IbsTree::with_mode(BalanceMode::None);
                        for (id, iv) in items {
                            t.insert(*id, iv.clone()).unwrap();
                        }
                        black_box(t.node_count())
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("avl/{label}"), n),
                &items,
                |b, items| {
                    b.iter(|| {
                        let mut t = IbsTree::with_mode(BalanceMode::Avl);
                        for (id, iv) in items {
                            t.insert(*id, iv.clone()).unwrap();
                        }
                        black_box(t.node_count())
                    })
                },
            );
        }
    }
    group.finish();
}

/// Short statistical config: the full sweep has ~110 points; default
/// Criterion settings (100 samples x 5 s) would take hours for no extra
/// decision value at these effect sizes.
fn fast() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast();
    targets = fig7
}
criterion_main!(benches);
