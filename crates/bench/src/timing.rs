//! Minimal manual timing for the `reproduce` binary.
//!
//! Criterion drives the statistical benchmarks; the reproduction tables
//! only need stable medians over full parameter sweeps, which a
//! median-of-runs loop delivers in seconds instead of minutes.

use std::hint::black_box;
use std::time::Instant;

/// Runs `f` (which performs `ops_per_run` operations) `runs` times and
/// returns the median per-operation time in nanoseconds.
pub fn median_ns_per_op(runs: usize, ops_per_run: usize, mut f: impl FnMut()) -> f64 {
    assert!(runs >= 1 && ops_per_run >= 1);
    let mut samples: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as f64 / ops_per_run as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    samples[samples.len() / 2]
}

/// Times a closure returning a value, preventing the value from being
/// optimized away.
pub fn consume<T>(value: T) -> T {
    black_box(value)
}

/// Formats nanoseconds adaptively (ns / µs / ms).
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else {
        format!("{:.3} ms", ns / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_is_positive_and_sane() {
        let ns = median_ns_per_op(5, 1000, || {
            let mut x = 0u64;
            for i in 0..1000u64 {
                x = x.wrapping_add(consume(i));
            }
            consume(x);
        });
        assert!(ns > 0.0 && ns < 1_000_000.0, "ns = {ns}");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_ns(500.0), "500 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 us");
        assert_eq!(fmt_ns(2_500_000.0), "2.500 ms");
    }
}
