//! Advisor validation harness: projected vs measured backend cost.
//!
//! For each of three canonical workload shapes (stab-heavy,
//! churn-heavy, non-indexable-heavy) this drives a real
//! `PredicateIndex` with workload accounts attached, asks the index
//! advisor for its §5.2-ranked projection, then replays the same op
//! log against every raw backend and times it. The committed
//! `BENCH_advisor.json` asserts the advisor's top pick matches the
//! measured-cheapest backend on every shape:
//!
//! ```text
//! cargo run --release -p bench --bin advisor_report -- [--quick] [--out PATH]
//! ```
//!
//! The run also measures workload-account overhead on the match path
//! (disabled vs enabled; the acceptance bound — enabled ≤ +10% — is
//! enforced by CI with slack against the committed ratio) and unit
//! constants are calibrated in-process so projection and measurement
//! share one machine and one build.

use bench::scheme::SchemeWorkload;
use bench::timing::median_ns_per_op;
use predindex::advisor::{
    bench_shapes, calibrate_constants, quick_shapes, run_shape, ShapeOutcome,
};
use predindex::{Backend, Matcher, PredicateIndex};
use std::sync::Arc;
use telemetry::{Registry, Tracer, WorkloadStats};

struct Config {
    quick: bool,
    out: String,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        quick: false,
        out: "BENCH_advisor.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--out" => {
                cfg.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other:?}; usage: advisor_report [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    cfg
}

/// Match-path cost with workload accounts off vs on — the "disabled is
/// one branch" guard for the new recording sites.
fn workload_overhead(cfg: &Config) -> (f64, f64) {
    let runs = if cfg.quick { 5 } else { 9 };
    let w = SchemeWorkload::default();
    let tuples = w.tuples(if cfg.quick { 128 } else { 512 });
    let mut costs = [0.0f64; 2];
    for (slot, enabled) in [(0, false), (1, true)] {
        let db = w.database();
        let mut index = PredicateIndex::new();
        if enabled {
            index.attach_workload(WorkloadStats::new(&Arc::new(Registry::new())));
        }
        // Telemetry stays off in both modes so the delta is the
        // workload hooks alone.
        index.attach_telemetry(&Arc::new(Registry::disabled()), Tracer::disabled());
        for p in w.predicates() {
            index
                .insert(p, db.catalog())
                .expect("valid scenario predicate");
        }
        let mut out = Vec::with_capacity(64);
        costs[slot] = median_ns_per_op(runs, tuples.len(), || {
            for t in &tuples {
                out.clear();
                index.match_tuple_into(SchemeWorkload::RELATION, t, &mut out);
            }
        });
    }
    (costs[0], costs[1])
}

fn backend_map(pairs: impl Iterator<Item = (Backend, f64)>) -> String {
    let mut out = String::from("{");
    for (i, (b, ns)) in pairs.enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {:.1}", b.name(), ns));
    }
    out.push('}');
    out
}

fn shape_json(o: &ShapeOutcome) -> String {
    let rec = &o.recommendation;
    let projected = backend_map(rec.ranked.iter().map(|p| (p.backend, p.projected_nanos)));
    let measured = backend_map(o.measured.iter().copied());
    let winner = rec.best();
    let projected_winner = rec
        .ranked
        .iter()
        .find(|p| p.backend == winner)
        .map_or(0.0, |p| p.projected_nanos);
    let measured_winner = o
        .measured
        .iter()
        .find(|(b, _)| *b == winner)
        .map_or(0.0, |(_, ns)| *ns);
    // Symmetric ratio >= 1: how far off the winner's projection was.
    let err = if projected_winner > 0.0 && measured_winner > 0.0 {
        (projected_winner / measured_winner).max(measured_winner / projected_winner)
    } else {
        1.0
    };
    format!(
        "    {{\"name\": \"{}\", \"advisor_pick\": \"{}\", \"measured_cheapest\": \"{}\", \
         \"agree\": {}, \"margin\": {:.2}, \"live\": {}, \"stabs\": {}, \"inserts\": {}, \
         \"deletes\": {}, \"winner_projection_error\": {:.2},\n     \"projected\": {},\n     \
         \"measured\": {}}}",
        o.name,
        rec.best().name(),
        o.measured_cheapest().name(),
        o.agree(),
        rec.margin,
        rec.live,
        rec.stabs,
        rec.inserts,
        rec.deletes,
        err,
        projected,
        measured,
    )
}

fn main() {
    let cfg = parse_args();
    eprintln!("calibrating backend unit constants...");
    let constants = calibrate_constants();
    eprintln!(
        "  stab ns/unit: ibs {:.1}, skiplist {:.1}, interval_tree {:.1}, naive {:.2}",
        constants.ibs.unit_stab_ns,
        constants.skiplist.unit_stab_ns,
        constants.interval_tree.unit_stab_ns,
        constants.naive.unit_stab_ns,
    );

    let shapes = if cfg.quick {
        quick_shapes()
    } else {
        bench_shapes()
    };
    let mut rows = Vec::new();
    for spec in &shapes {
        let outcome = run_shape(spec, &constants);
        eprintln!(
            "{}: advisor {} / measured {} ({}), margin {:.2}x",
            outcome.name,
            outcome.recommendation.best().name(),
            outcome.measured_cheapest().name(),
            if outcome.agree() { "agree" } else { "DISAGREE" },
            outcome.recommendation.margin,
        );
        rows.push(shape_json(&outcome));
    }

    let (disabled_ns, enabled_ns) = workload_overhead(&cfg);
    let ratio = enabled_ns / disabled_ns;
    eprintln!(
        "workload_overhead: disabled {disabled_ns:.1} ns/op, enabled {enabled_ns:.1} ns/op ({ratio:.3}x)"
    );

    let json = format!(
        "{{\n  \"schema\": \"bench/advisor-v1\",\n  \"quick\": {},\n  \"shapes\": [\n{}\n  ],\n  \
         \"overhead\": {{\"disabled_ns_per_op\": {:.1}, \"enabled_ns_per_op\": {:.1}, \
         \"ratio\": {:.3}}}\n}}\n",
        cfg.quick,
        rows.join(",\n"),
        disabled_ns,
        enabled_ns,
        ratio,
    );
    std::fs::write(&cfg.out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", cfg.out);
        std::process::exit(1);
    });
    eprintln!("wrote {} ({} shapes)", cfg.out, shapes.len());
}
