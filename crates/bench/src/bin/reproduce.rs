//! Regenerates every table/figure of the paper's evaluation as printed
//! series, paper-vs-measured where the paper reports numbers.
//!
//! ```text
//! cargo run --release -p bench --bin reproduce            # everything
//! cargo run --release -p bench --bin reproduce fig7 fig8  # selected
//! ```
//!
//! Experiments: fig7, fig8, fig9, costmodel, space, scaling, balance,
//! structures, matchers, skew.

use altindex::{
    BulkBuild, CenteredIntervalTree, IntervalSkipList, IntervalTreap, NaiveIntervalList,
    SegmentTree, StabIndex,
};
use bench::costmodel::{self, PAPER_CONSTANTS};
use bench::scheme::SchemeWorkload;
use bench::timing::{consume, fmt_ns, median_ns_per_op};
use bench::workload::{disjoint_intervals, nested_intervals, ClusteredWorkload, FigureWorkload};
use ibs::{BalanceMode, IbsTree};
use interval::{Interval, IntervalId};
use predindex::{
    HashSequentialMatcher, Matcher, PhysicalLockingMatcher, PredicateIndex, RTreeMatcher,
    SequentialMatcher,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    println!("# Reproduction of Hanson et al., SIGMOD 1990 — evaluation artifacts");
    println!("# (times are medians on this machine; the paper used C++ on a SPARCstation 1,");
    println!("#  so shapes and orderings are the comparison target, not absolute values)\n");

    if want("fig7") {
        fig7();
    }
    if want("fig8") {
        fig8();
    }
    if want("fig9") {
        fig9();
    }
    if want("costmodel") {
        cost_model();
    }
    if want("space") {
        space();
    }
    if want("scaling") {
        scaling();
    }
    if want("balance") {
        balance();
    }
    if want("structures") {
        structures();
    }
    if want("matchers") {
        matchers();
    }
    if want("skew") {
        skew();
    }
}

const FIG_NS: [usize; 6] = [100, 200, 400, 600, 800, 1000];
const AS: [(f64, &str); 3] = [(0.0, "a=0"), (0.5, "a=0.5"), (1.0, "a=1")];

/// Figure 7: average insertion time vs N for a ∈ {0, .5, 1}.
/// Paper (unbalanced, SPARC-1): ~1–3 ms at N=1000, logarithmic growth,
/// a-curves close together with a=1 (all points) cheapest.
fn fig7() {
    println!("## Figure 7 — average IBS-tree insertion time (unbalanced, as in the paper)");
    println!("{:>6} {:>12} {:>12} {:>12}", "N", "a=0", "a=0.5", "a=1");
    for n in FIG_NS {
        let mut row = format!("{n:>6}");
        for (a, _) in AS {
            let items = FigureWorkload { n, a, seed: 7 }.intervals();
            let ns = median_ns_per_op(7, n, || {
                let mut t = IbsTree::with_mode(BalanceMode::None);
                for (id, iv) in &items {
                    t.insert(*id, iv.clone()).unwrap();
                }
                consume(t.node_count());
            });
            row += &format!(" {:>12}", fmt_ns(ns));
        }
        println!("{row}");
    }
    println!();
}

/// Figure 8: average search time vs N for a ∈ {0, .5, 1}.
/// Paper: ~0.05–0.35 ms, logarithmic growth, a-curves nearly coincide.
fn fig8() {
    println!("## Figure 8 — average IBS-tree search time");
    println!("{:>6} {:>12} {:>12} {:>12}", "N", "a=0", "a=0.5", "a=1");
    for n in FIG_NS {
        let mut row = format!("{n:>6}");
        for (a, _) in AS {
            let w = FigureWorkload { n, a, seed: 8 };
            let mut tree = IbsTree::with_mode(BalanceMode::None);
            for (id, iv) in w.intervals() {
                tree.insert(id, iv).unwrap();
            }
            let queries = w.queries(4096);
            let mut out = Vec::with_capacity(128);
            let ns = median_ns_per_op(7, queries.len(), || {
                for q in &queries {
                    out.clear();
                    tree.stab_into(q, &mut out);
                    consume(out.len());
                }
            });
            row += &format!(" {:>12}", fmt_ns(ns));
        }
        println!("{row}");
    }
    println!();
}

/// Figure 9: IBS-tree vs sequential search for small N.
/// Paper: sequential is linear and lies above the IBS curve at every N
/// shown (5..40).
fn fig9() {
    println!("## Figure 9 — predicate test cost, IBS-tree vs sequential search");
    println!(
        "{:>6} {:>12} {:>12} {:>8}",
        "N", "ibs", "sequential", "ratio"
    );
    for n in [5usize, 10, 15, 20, 25, 30, 35, 40] {
        let w = FigureWorkload { n, a: 0.5, seed: 9 };
        let items = w.intervals();
        let queries = w.queries(8192);
        let ibs: IbsTree<i64> = BulkBuild::build(items.clone());
        let seq = NaiveIntervalList::build(items);
        let mut out = Vec::with_capacity(64);
        let t_ibs = median_ns_per_op(9, queries.len(), || {
            for q in &queries {
                out.clear();
                StabIndex::stab_into(&ibs, q, &mut out);
                consume(out.len());
            }
        });
        let t_seq = median_ns_per_op(9, queries.len(), || {
            for q in &queries {
                out.clear();
                seq.stab_into(q, &mut out);
                consume(out.len());
            }
        });
        println!(
            "{n:>6} {:>12} {:>12} {:>8.2}",
            fmt_ns(t_ibs),
            fmt_ns(t_seq),
            t_seq / t_ibs
        );
    }
    println!();
}

/// §5.2 worked cost model: paper constants vs measured constants vs
/// end-to-end measurement.
fn cost_model() {
    println!("## §5.2 cost model — full scheme, paper shape (15 attrs, 200 preds, 90% idx)");
    let w = SchemeWorkload::default();
    let paper = costmodel::evaluate(&w, &PAPER_CONSTANTS);
    println!(
        "paper constants (SPARC-1):  search {:.2} ms + residual {:.2} ms = {:.2} ms/tuple (paper reports ~2.1)",
        paper.search_ms,
        paper.residual_ms,
        paper.total_ms()
    );
    let ours = costmodel::measure_constants(&w);
    let predicted = costmodel::evaluate(&w, &ours);
    println!(
        "measured constants (here): hash {:.5} ms, ibs-search {:.5} ms, test {:.5} ms",
        ours.hash_ms, ours.ibs_search_ms, ours.full_test_ms
    );
    println!(
        "model with measured consts: search {:.4} ms + residual {:.4} ms = {:.4} ms/tuple",
        predicted.search_ms,
        predicted.residual_ms,
        predicted.total_ms()
    );
    let e2e = costmodel::measure_end_to_end(&w);
    println!("measured end-to-end:        {e2e:.4} ms/tuple");
    println!(
        "speedup vs paper estimate:  {:.0}x (hardware generations, as §5.2 predicts)\n",
        paper.total_ms() / e2e
    );
}

/// §5.1 space claim: markers O(N) for disjoint intervals, O(N log N)
/// possible under heavy overlap.
fn space() {
    println!("## §5.1 space — marker count vs N (disjoint = O(N), nested = up to O(N log N))");
    println!(
        "{:>7} {:>10} {:>12} {:>10} {:>12}",
        "N", "disjoint", "markers/N", "nested", "markers/N"
    );
    for n in [100usize, 400, 1600, 6400, 25_600] {
        let mut row = format!("{n:>7}");
        for gen in [disjoint_intervals as fn(usize) -> _, nested_intervals] {
            let mut t = IbsTree::new();
            for (id, iv) in gen(n) {
                t.insert(id, iv).unwrap();
            }
            let m = t.marker_count();
            row += &format!(" {:>10} {:>12.2}", m, m as f64 / n as f64);
        }
        println!("{row}");
    }
    println!();
}

/// §5.1 complexity claims: search O(log N + L), insertion O(log² N) —
/// growth factors across doublings should be far below 2 (the linear
/// alternative).
fn scaling() {
    println!("## §5.1 scaling — per-op time across N doublings (sub-linear growth expected)");
    println!(
        "{:>7} {:>12} {:>12} {:>12}",
        "N", "search", "insert", "delete"
    );
    for n in [1_000usize, 2_000, 4_000, 8_000, 16_000, 32_000] {
        let w = FigureWorkload {
            n,
            a: 0.5,
            seed: 13,
        };
        let items = w.intervals();
        let queries = w.queries(4096);

        let mut tree: IbsTree<i64> = IbsTree::new();
        for (id, iv) in &items {
            tree.insert(*id, iv.clone()).unwrap();
        }
        let mut out = Vec::with_capacity(256);
        let t_search = median_ns_per_op(5, queries.len(), || {
            for q in &queries {
                out.clear();
                tree.stab_into(q, &mut out);
                consume(out.len());
            }
        });
        let t_insert = median_ns_per_op(3, n, || {
            let mut t = IbsTree::new();
            for (id, iv) in &items {
                t.insert(*id, iv.clone()).unwrap();
            }
            consume(t.node_count());
        });
        let t_delete = {
            let built = tree.clone();
            median_ns_per_op(3, n, || {
                let mut t = built.clone();
                for (id, _) in &items {
                    t.remove(*id).unwrap();
                }
                consume(t.node_count());
            })
        };
        println!(
            "{n:>7} {:>12} {:>12} {:>12}",
            fmt_ns(t_search),
            fmt_ns(t_insert),
            fmt_ns(t_delete)
        );
    }
    println!();
}

/// Ablation D (extension): skewed workloads. The paper only evaluates
/// uniform keys; clustered rule bases ("many rules watch the same
/// thresholds") raise the per-query output L at hot spots, which must be
/// the only source of slowdown for an O(log N + L) structure.
fn skew() {
    println!("## Ablation D — uniform vs clustered (80/20) workloads, N = 2000");
    println!(
        "{:>22} {:>12} {:>12} {:>10} {:>10}",
        "workload", "search", "markers/N", "height", "avg hits"
    );
    let n = 2_000usize;
    let uniform = FigureWorkload {
        n,
        a: 0.0,
        seed: 21,
    };
    let clustered = ClusteredWorkload {
        n,
        hot_frac: 0.8,
        seed: 21,
    };
    for (name, items, queries) in [
        ("uniform", uniform.intervals(), uniform.queries(4096)),
        (
            "clustered 80/20",
            clustered.intervals(),
            clustered.queries(4096),
        ),
    ] {
        let mut t: IbsTree<i64> = IbsTree::new();
        for (id, iv) in &items {
            t.insert(*id, iv.clone()).unwrap();
        }
        let mut out = Vec::with_capacity(2048);
        let mut hits = 0usize;
        for q in &queries {
            out.clear();
            t.stab_into(q, &mut out);
            hits += out.len();
        }
        let ns = median_ns_per_op(5, queries.len(), || {
            for q in &queries {
                out.clear();
                t.stab_into(q, &mut out);
                consume(out.len());
            }
        });
        println!(
            "{:>22} {:>12} {:>12.2} {:>10} {:>10.1}",
            name,
            fmt_ns(ns),
            t.marker_count() as f64 / n as f64,
            t.height(),
            hits as f64 / queries.len() as f64
        );
    }
    println!();
}

/// Ablation A: balancing.
fn balance() {
    println!("## Ablation A — AVL balancing vs the paper's unbalanced tree (N = 1000)");
    let n = 1_000usize;
    let random = FigureWorkload { n, a: 0.5, seed: 4 }.intervals();
    let sorted: Vec<(IntervalId, Interval<i64>)> = (0..n as u32)
        .map(|i| {
            (
                IntervalId(i),
                Interval::closed(i as i64 * 11, i as i64 * 11 + 6),
            )
        })
        .collect();
    let queries = FigureWorkload { n, a: 0.5, seed: 4 }.queries(4096);
    println!(
        "{:>22} {:>12} {:>12} {:>8}",
        "workload/mode", "insert", "search", "height"
    );
    for (order, items) in [("random", &random), ("sorted", &sorted)] {
        for (mode_name, mode) in [("unbalanced", BalanceMode::None), ("avl", BalanceMode::Avl)] {
            let t_ins = median_ns_per_op(5, n, || {
                let mut t = IbsTree::with_mode(mode);
                for (id, iv) in items {
                    t.insert(*id, iv.clone()).unwrap();
                }
                consume(t.height());
            });
            let mut tree = IbsTree::with_mode(mode);
            for (id, iv) in items {
                tree.insert(*id, iv.clone()).unwrap();
            }
            let mut out = Vec::with_capacity(128);
            let t_q = median_ns_per_op(5, queries.len(), || {
                for q in &queries {
                    out.clear();
                    tree.stab_into(q, &mut out);
                    consume(out.len());
                }
            });
            println!(
                "{:>22} {:>12} {:>12} {:>8}",
                format!("{order}/{mode_name}"),
                fmt_ns(t_ins),
                fmt_ns(t_q),
                tree.height()
            );
        }
    }
    println!();
}

/// Ablation B: every interval structure on the Figure 8 workload.
fn structures() {
    println!("## Ablation B — stab cost across interval structures (§6's proposed comparison)");
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "N", "ibs", "segment", "int-tree", "treap", "skiplist", "naive"
    );
    for n in [100usize, 1_000, 10_000] {
        let w = FigureWorkload {
            n,
            a: 0.5,
            seed: 11,
        };
        let items = w.intervals();
        let queries = w.queries(4096);
        let ibs: IbsTree<i64> = BulkBuild::build(items.clone());
        let seg = SegmentTree::build(items.clone());
        let cit = CenteredIntervalTree::build(items.clone());
        let treap = IntervalTreap::build(items.clone());
        let skip = IntervalSkipList::build(items.clone());
        let naive = NaiveIntervalList::build(items);

        let mut row = format!("{n:>7}");
        let mut out = Vec::with_capacity(256);
        macro_rules! m {
            ($idx:expr) => {{
                let ns = median_ns_per_op(5, queries.len(), || {
                    for q in &queries {
                        out.clear();
                        $idx.stab_into(q, &mut out);
                        consume(out.len());
                    }
                });
                row += &format!(" {:>10}", fmt_ns(ns));
            }};
        }
        m!(ibs);
        m!(seg);
        m!(cit);
        m!(treap);
        m!(skip);
        m!(naive);
        println!("{row}");
    }
    println!();

    // The dynamic half of the comparison: update throughput. The static
    // structures are out by construction — their "update" is a rebuild.
    println!("   update cost per op (insert N then remove N), dynamic structures only:");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12}",
        "N", "ibs", "treap", "skiplist", "seg(rebuild)"
    );
    for n in [100usize, 1_000, 10_000] {
        let w = FigureWorkload {
            n,
            a: 0.5,
            seed: 12,
        };
        let items = w.intervals();
        let t_ibs = median_ns_per_op(5, 2 * n, || {
            let mut t: IbsTree<i64> = IbsTree::new();
            for (id, iv) in &items {
                t.insert(*id, iv.clone()).unwrap();
            }
            for (id, _) in &items {
                t.remove(*id).unwrap();
            }
            consume(t.len());
        });
        let t_treap = median_ns_per_op(5, 2 * n, || {
            use altindex::DynamicStabIndex;
            let mut t: IntervalTreap<i64> = IntervalTreap::new();
            for (id, iv) in &items {
                t.insert(*id, iv.clone());
            }
            for (id, _) in &items {
                t.remove(*id).unwrap();
            }
            consume(StabIndex::len(&t));
        });
        let t_skip = median_ns_per_op(5, 2 * n, || {
            use altindex::DynamicStabIndex;
            let mut t: IntervalSkipList<i64> = IntervalSkipList::new();
            for (id, iv) in &items {
                t.insert(*id, iv.clone());
            }
            for (id, _) in &items {
                t.remove(*id).unwrap();
            }
            consume(StabIndex::len(&t));
        });
        // The static structure's only "update" path: rebuild from
        // scratch — charged per logical update for comparability.
        let t_seg = median_ns_per_op(5, 2 * n, || {
            let t = SegmentTree::build(items.clone());
            consume(t.len());
        });
        println!(
            "{n:>7} {:>12} {:>12} {:>12} {:>12}",
            fmt_ns(t_ibs),
            fmt_ns(t_treap),
            fmt_ns(t_skip),
            fmt_ns(t_seg)
        );
    }
    println!();
}

/// Ablation C: the full scheme vs every §2 baseline.
fn matchers() {
    println!("## Ablation C — full scheme vs §2 baselines, per-tuple match cost");
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "preds", "ibs-index", "sequential", "hash+seq", "lock(idx)", "lock(none)", "rtree"
    );
    for preds in [50usize, 200, 1_000, 5_000] {
        let w = SchemeWorkload {
            predicates: preds,
            ..SchemeWorkload::default()
        };
        let db = w.database();
        let tuples = w.tuples(512);
        let mut row = format!("{preds:>7}");
        let mut matchers: Vec<Box<dyn Matcher>> = vec![
            Box::new(PredicateIndex::new()),
            Box::new(SequentialMatcher::new()),
            Box::new(HashSequentialMatcher::new()),
            Box::new(PhysicalLockingMatcher::with_indexed_attrs(
                db.catalog(),
                [("r", "a0"), ("r", "a1"), ("r", "a2")],
            )),
            Box::new(PhysicalLockingMatcher::new()),
            Box::new(RTreeMatcher::new()),
        ];
        for m in matchers.iter_mut() {
            for p in w.predicates() {
                m.insert(p, db.catalog()).expect("valid scenario predicate");
            }
            let ns = median_ns_per_op(5, tuples.len(), || {
                let mut total = 0usize;
                for t in &tuples {
                    total += m.match_tuple(SchemeWorkload::RELATION, t).len();
                }
                consume(total);
            });
            row += &format!(" {:>12}", fmt_ns(ns));
        }
        println!("{row}");
    }
    println!();
}
