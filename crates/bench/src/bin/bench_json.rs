//! Machine-readable benchmark harness.
//!
//! Runs the §5.2 scheme-cost sweep, the telemetry-overhead comparison,
//! and the profiler attribution-overhead comparison, and writes one
//! JSON document (see EXPERIMENTS.md for the format) so CI and
//! regression scripts can diff numbers without scraping Criterion's
//! human output:
//!
//! ```text
//! cargo run --release -p bench --bin bench_json -- [--quick] [--out PATH]
//! ```
//!
//! `--quick` trims the sweep and the run counts for smoke tests;
//! `--out` overrides the default `BENCH_observability.json`.
//!
//! The JSON is hand-rolled (no serde in this workspace); every result
//! row carries the median ns/op and, for runs with live counters, the
//! final counter totals so shape regressions (more residual tests, more
//! nodes visited) are visible even when wall-clock noise hides them.

use bench::scheme::SchemeWorkload;
use bench::timing::median_ns_per_op;
use predindex::{Matcher, PredicateIndex};
use relation::{AttrType, Database, Schema, Value};
use rules::{Action, Rule, RuleEngine};
use std::sync::Arc;
use telemetry::{Profiler, Registry, Tracer};

/// One benchmark row.
struct BenchResult {
    name: String,
    ns_per_op: f64,
    /// Counter name → final total (empty when telemetry was disabled).
    counters: Vec<(String, u64)>,
}

struct Config {
    quick: bool,
    out: String,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        quick: false,
        out: "BENCH_observability.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--out" => {
                cfg.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other:?}; usage: bench_json [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    cfg
}

/// Builds a loaded index for `workload`, recording into `registry` and
/// `tracer` (either may be disabled).
fn loaded_index(w: &SchemeWorkload, registry: &Arc<Registry>, tracer: Tracer) -> PredicateIndex {
    let db = w.database();
    let mut index = PredicateIndex::new();
    index.attach_telemetry(registry, tracer);
    for p in w.predicates() {
        index
            .insert(p, db.catalog())
            .expect("valid scenario predicate");
    }
    index
}

/// Times matching `tuples` through `index`, returning median ns/tuple.
fn time_matches(index: &PredicateIndex, tuples: &[relation::Tuple], runs: usize) -> f64 {
    let mut out = Vec::with_capacity(64);
    median_ns_per_op(runs, tuples.len(), || {
        for t in tuples {
            out.clear();
            index.match_tuple_into(SchemeWorkload::RELATION, t, &mut out);
        }
    })
}

/// Snapshots every counter in `registry` (sorted by name).
fn counter_totals(registry: &Registry) -> Vec<(String, u64)> {
    registry
        .names()
        .into_iter()
        .filter_map(|n| registry.counter_value(&n).map(|v| (n, v)))
        .collect()
}

fn scheme_cost(cfg: &Config, results: &mut Vec<BenchResult>) {
    let sweep: &[usize] = if cfg.quick {
        &[200, 1000]
    } else {
        &[200, 1000, 5000]
    };
    let runs = if cfg.quick { 5 } else { 9 };
    for &preds in sweep {
        let w = SchemeWorkload {
            predicates: preds,
            ..SchemeWorkload::default()
        };
        let registry = Arc::new(Registry::disabled());
        let index = loaded_index(&w, &registry, Tracer::disabled());
        let tuples = w.tuples(if cfg.quick { 128 } else { 512 });
        let ns = time_matches(&index, &tuples, runs);
        eprintln!("scheme_cost/preds{preds}: {ns:.1} ns/op");
        results.push(BenchResult {
            name: format!("scheme_cost/preds{preds}"),
            ns_per_op: ns,
            counters: Vec::new(),
        });
    }
}

fn telemetry_overhead(cfg: &Config, results: &mut Vec<BenchResult>) {
    let runs = if cfg.quick { 5 } else { 9 };
    let w = SchemeWorkload::default();
    let tuples = w.tuples(if cfg.quick { 128 } else { 512 });
    // disabled: the regression guard — every hook is one branch.
    // counters: live registry, tracing off.
    // tracing: live registry plus a span ring (wraps freely).
    let modes: [(&str, bool, bool); 3] = [
        ("disabled", false, false),
        ("counters", true, false),
        ("tracing", true, true),
    ];
    for (mode, counters_on, tracing_on) in modes {
        let registry = if counters_on {
            Arc::new(Registry::new())
        } else {
            Arc::new(Registry::disabled())
        };
        let tracer = if tracing_on {
            Tracer::new(telemetry::DEFAULT_TRACE_CAPACITY)
        } else {
            Tracer::disabled()
        };
        let index = loaded_index(&w, &registry, tracer);
        let ns = time_matches(&index, &tuples, runs);
        eprintln!("telemetry_overhead/{mode}: {ns:.1} ns/op");
        results.push(BenchResult {
            name: format!("telemetry_overhead/{mode}"),
            ns_per_op: ns,
            counters: counter_totals(&registry),
        });
    }
}

/// A rule engine loaded with salary-band rules: the attribution
/// workload. `profiled` attaches live per-rule cost accounts.
fn band_engine(profiled: bool, registry: &Arc<Registry>) -> RuleEngine {
    let mut engine = RuleEngine::new(Database::new());
    engine.attach_telemetry(Arc::clone(registry), Tracer::disabled());
    if profiled {
        engine.attach_profiler(Profiler::new(registry));
    }
    engine
        .create_relation(
            Schema::builder("emp")
                .attr("name", AttrType::Str)
                .attr("age", AttrType::Int)
                .attr("salary", AttrType::Int)
                .build(),
        )
        .expect("create emp");
    for i in 0i64..16 {
        let rule = Rule::builder(format!("band{i}"))
            .when(&format!(
                "emp.salary >= {} and emp.salary < {}",
                i * 1000,
                (i + 1) * 1000
            ))
            .expect("valid band condition")
            .then(Action::log("hit"))
            .build();
        engine.add_rule(rule).expect("add band rule");
    }
    engine
}

/// The cost-attribution guard: the full rule-chain insert path with the
/// profiler detached (`baseline` — every profiler hook is one branch)
/// versus attached (`profiled` — per-rule accounts billed per event).
/// The acceptance bound lives in CI: profiled/baseline ≤ +15% with
/// slack against the committed BENCH_observability.json ratio.
fn attribution_overhead(cfg: &Config, results: &mut Vec<BenchResult>) {
    let runs = if cfg.quick { 5 } else { 9 };
    let inserts = if cfg.quick { 128 } else { 512 };
    for (mode, profiled) in [("baseline", false), ("profiled", true)] {
        let registry = Arc::new(Registry::new());
        let mut engine = band_engine(profiled, &registry);
        let mut i = 0i64;
        let ns = median_ns_per_op(runs, inserts, || {
            for _ in 0..inserts {
                engine
                    .insert(
                        "emp",
                        vec![
                            Value::str("e"),
                            Value::Int(20 + (i % 50)),
                            Value::Int((i * 37) % 16_000),
                        ],
                    )
                    .expect("band insert");
                i += 1;
            }
        });
        eprintln!("attribution_overhead/{mode}: {ns:.1} ns/op");
        results.push(BenchResult {
            name: format!("attribution_overhead/{mode}"),
            ns_per_op: ns,
            counters: counter_totals(&registry),
        });
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(cfg: &Config, results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench/observability-v1\",\n");
    out.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.1}, \"counters\": {{",
            json_escape(&r.name),
            r.ns_per_op
        ));
        for (j, (name, value)) in r.counters.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{}\": {}", json_escape(name), value));
        }
        out.push_str("}}");
        if i + 1 < results.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let cfg = parse_args();
    let mut results = Vec::new();
    scheme_cost(&cfg, &mut results);
    telemetry_overhead(&cfg, &mut results);
    attribution_overhead(&cfg, &mut results);
    let json = render_json(&cfg, &results);
    std::fs::write(&cfg.out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", cfg.out);
        std::process::exit(1);
    });
    eprintln!("wrote {} ({} results)", cfg.out, results.len());
}
