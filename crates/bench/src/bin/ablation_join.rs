//! Join-memo ablation: incremental beta maintenance vs naive
//! re-evaluation.
//!
//! For 2- and 3-premise equality-join rules over databases of 1k and
//! 10k tuples, measures the steady-state cost of one more insert:
//!
//! - **memoized** — the insert flows through a [`RuleEngine`] whose
//!   join memo extends partial matches incrementally (the §15 design);
//! - **naive** — the insert lands in a rule-less engine and the full
//!   match set is recomputed from scratch with
//!   [`joinmemo::naive::full_matches`] (hash join over the whole
//!   database, the cost a system without memoization pays per event).
//!
//! Writes one JSON document (`bench/join-v1`) with per-config medians
//! and naive/memoized speedups so CI can assert the memo actually
//! amortizes (≥5× at 10k tuples):
//!
//! ```text
//! cargo run --release -p bench --bin ablation_join -- [--quick] [--out PATH]
//! ```

use bench::timing::{consume, median_ns_per_op};
use joinmemo::naive::full_matches;
use joinmemo::CompiledJoin;
use relation::{AttrType, Database, Schema, Value};
use rules::{Action, Rule, RuleEngine};

struct Config {
    quick: bool,
    out: String,
}

fn parse_args() -> Config {
    let mut cfg = Config {
        quick: false,
        out: "BENCH_join.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg.quick = true,
            "--out" => {
                cfg.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other:?}; usage: ablation_join [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    cfg
}

/// One benchmark configuration: a join condition and the relations it
/// spans (preload round-robins over them).
struct JoinCase {
    premises: usize,
    condition: &'static str,
    relations: &'static [&'static str],
}

const CASES: [JoinCase; 2] = [
    JoinCase {
        premises: 2,
        condition: "emp.dno = dept.dno",
        relations: &["emp", "dept"],
    },
    JoinCase {
        premises: 3,
        condition: "emp.dno = dept.dno and dept.dno = proj.dno",
        relations: &["emp", "dept", "proj"],
    },
];

fn fresh_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        Schema::builder("emp")
            .attr("dno", AttrType::Int)
            .attr("salary", AttrType::Int)
            .build(),
    )
    .expect("fresh database");
    db.create_relation(
        Schema::builder("dept")
            .attr("dno", AttrType::Int)
            .attr("floor", AttrType::Int)
            .build(),
    )
    .expect("fresh database");
    db.create_relation(
        Schema::builder("proj")
            .attr("dno", AttrType::Int)
            .attr("badge", AttrType::Int)
            .build(),
    )
    .expect("fresh database");
    db
}

/// Deterministic well-spread join key for tuple number `i`: the key
/// domain scales with n so each key collides with a handful of tuples
/// per relation regardless of database size.
fn key_for(i: u64, keys: i64) -> i64 {
    ((i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % keys as u64) as i64
}

/// emp(dno, salary) / dept(dno, floor) / proj(dno, badge) all lead
/// with the join key, so one row shape serves every relation.
fn row_for(i: u64, keys: i64) -> Vec<Value> {
    let key = key_for(i, keys);
    let other = (i % 97) as i64;
    vec![Value::Int(key), Value::Int(other)]
}

/// Inserts `n` tuples round-robin across `relations`.
fn preload(engine: &mut RuleEngine, relations: &[&str], n: usize, keys: i64) {
    for i in 0..n as u64 {
        let rel = relations[(i % relations.len() as u64) as usize];
        engine.insert(rel, row_for(i, keys)).expect("preload");
    }
}

fn join_rule(condition: &str) -> Rule {
    Rule::builder("join-bench")
        .when(condition)
        .expect("bench condition parses")
        .then(Action::log("joined"))
        .build()
}

/// Steady-state per-insert cost with the memo maintained
/// incrementally. Returns (ns/insert, complete matches after timing).
fn bench_memoized(
    case: &JoinCase,
    n: usize,
    keys: i64,
    probes: usize,
    runs: usize,
) -> (f64, usize) {
    let mut engine = RuleEngine::new(fresh_db());
    let id = engine
        .add_rule(join_rule(case.condition))
        .expect("rule adds");
    preload(&mut engine, case.relations, n, keys);
    let mut next = n as u64;
    let ns = median_ns_per_op(runs, probes, || {
        for _ in 0..probes {
            engine
                .insert("emp", row_for(next, keys))
                .expect("probe insert");
            next += 1;
        }
    });
    let matches = engine
        .join_matches(id)
        .map(|per_cond| per_cond.iter().map(Vec::len).sum())
        .unwrap_or(0);
    (ns, matches)
}

/// Steady-state per-insert cost when every insert triggers a
/// from-scratch hash-join re-evaluation (no memo).
fn bench_naive(case: &JoinCase, n: usize, keys: i64, probes: usize, runs: usize) -> (f64, usize) {
    let mut engine = RuleEngine::new(fresh_db());
    preload(&mut engine, case.relations, n, keys);
    let join = join_rule(case.condition).joins[0].clone();
    let compiled =
        CompiledJoin::compile(&join, engine.db().catalog()).expect("bench condition compiles");
    let mut next = n as u64;
    let mut matches = 0usize;
    let ns = median_ns_per_op(runs, probes, || {
        for _ in 0..probes {
            engine
                .insert("emp", row_for(next, keys))
                .expect("probe insert");
            next += 1;
            matches = consume(full_matches(&compiled, engine.db().catalog()).len());
        }
    });
    (ns, matches)
}

struct Row {
    name: String,
    ns_per_op: f64,
    complete_matches: usize,
}

struct Speedup {
    name: String,
    n: usize,
    premises: usize,
    speedup: f64,
}

fn json_out(cfg: &Config, rows: &[Row], speedups: &[Speedup]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"bench/join-v1\",\n");
    out.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.1}, \"complete_matches\": {}}}{}\n",
            r.name,
            r.ns_per_op,
            r.complete_matches,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"speedups\": [\n");
    for (i, s) in speedups.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"n\": {}, \"premises\": {}, \"speedup\": {:.2}}}{}\n",
            s.name,
            s.n,
            s.premises,
            s.speedup,
            if i + 1 < speedups.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let cfg = parse_args();
    let sizes: &[usize] = if cfg.quick {
        &[1_000]
    } else {
        &[1_000, 10_000]
    };
    let probes = if cfg.quick { 32 } else { 64 };
    let runs = if cfg.quick { 3 } else { 7 };
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for case in &CASES {
        for &n in sizes {
            // Key domain scales with n: ~8 tuples per key per relation,
            // so per-insert match fan-out stays flat while the naive
            // evaluator's full-scan cost grows with n.
            let keys = (n as i64 / 8).max(4);
            let (memo_ns, memo_matches) = bench_memoized(case, n, keys, probes, runs);
            let (naive_ns, naive_matches) = bench_naive(case, n, keys, probes, runs);
            let base = format!("join/{}premise/n{}", case.premises, n);
            eprintln!(
                "{base}: memoized {memo_ns:.0} ns/insert, naive {naive_ns:.0} ns/insert \
                 ({:.1}x, {memo_matches} matches)",
                naive_ns / memo_ns
            );
            rows.push(Row {
                name: format!("{base}/memoized"),
                ns_per_op: memo_ns,
                complete_matches: memo_matches,
            });
            rows.push(Row {
                name: format!("{base}/naive"),
                ns_per_op: naive_ns,
                complete_matches: naive_matches,
            });
            speedups.push(Speedup {
                name: base,
                n,
                premises: case.premises,
                speedup: naive_ns / memo_ns,
            });
        }
    }
    let json = json_out(&cfg, &rows, &speedups);
    std::fs::write(&cfg.out, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", cfg.out);
        std::process::exit(1);
    });
    eprintln!("wrote {} ({} results)", cfg.out, rows.len());
}
