//! The §5.2 full-scheme scenario generator.
//!
//! The paper's worked example assumes: 15 attributes per relation, 200
//! predicates per relation, 90% of predicates indexable, predicate
//! clauses on 1/3 of the attributes (≈40 predicates per indexed
//! attribute), 2 clauses per predicate, clause selectivity 0.1. This
//! module manufactures a database and predicate set with exactly those
//! shape parameters so the cost model can be measured, not just
//! recomputed.

use interval::Interval;
use predicate::{Clause, FunctionRegistry, Predicate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relation::{AttrType, Database, Schema, Tuple, Value};

/// Shape parameters for the scheme scenario (§5.2 defaults).
#[derive(Debug, Clone, Copy)]
pub struct SchemeWorkload {
    /// Attributes per relation (paper: 15).
    pub attrs: usize,
    /// Attributes that carry predicate clauses (paper: 1/3 of 15 = 5).
    pub predicated_attrs: usize,
    /// Predicates on the relation (paper: 200).
    pub predicates: usize,
    /// Fraction of indexable predicates (paper: 0.9).
    pub indexable_frac: f64,
    /// Average selectivity of each clause (paper: 0.1).
    pub clause_selectivity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SchemeWorkload {
    fn default() -> Self {
        SchemeWorkload {
            attrs: 15,
            predicated_attrs: 5,
            predicates: 200,
            indexable_frac: 0.9,
            clause_selectivity: 0.1,
            seed: 42,
        }
    }
}

/// Attribute value domain (matches the figure workloads).
pub const DOMAIN: i64 = 10_000;

impl SchemeWorkload {
    /// Relation name used by the scenario.
    pub const RELATION: &'static str = "r";

    /// Builds the database with the scenario schema.
    pub fn database(&self) -> Database {
        let mut db = Database::new();
        let mut b = Schema::builder(Self::RELATION);
        for i in 0..self.attrs {
            b = b.attr(format!("a{i}"), AttrType::Int);
        }
        db.create_relation(b.build()).expect("fresh relation");
        db
    }

    /// Generates the predicate set with the paper's shape.
    pub fn predicates(&self) -> Vec<Predicate> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let reg = FunctionRegistry::default();
        let width = ((DOMAIN as f64) * self.clause_selectivity) as i64;
        (0..self.predicates)
            .map(|_| {
                if rng.gen_bool(self.indexable_frac) {
                    // Two range clauses on distinct predicated attributes.
                    let first = rng.gen_range(0..self.predicated_attrs);
                    let mut second = rng.gen_range(0..self.predicated_attrs);
                    while second == first && self.predicated_attrs > 1 {
                        second = rng.gen_range(0..self.predicated_attrs);
                    }
                    let clause = |rng: &mut StdRng, attr: usize| {
                        let lo = rng.gen_range(1..=DOMAIN - width);
                        Clause::Range {
                            attr: format!("a{attr}"),
                            interval: Interval::closed(Value::Int(lo), Value::Int(lo + width)),
                        }
                    };
                    let c1 = clause(&mut rng, first);
                    let c2 = clause(&mut rng, second);
                    Predicate::new(Self::RELATION, vec![c1, c2])
                } else {
                    // Non-indexable: a single opaque function clause.
                    let attr = rng.gen_range(0..self.attrs);
                    Predicate::new(
                        Self::RELATION,
                        vec![Clause::Func {
                            name: "isodd".into(),
                            attr: format!("a{attr}"),
                            func: reg.get("isodd").expect("builtin"),
                        }],
                    )
                }
            })
            .collect()
    }

    /// Generates `count` random tuples from the scenario domain.
    pub fn tuples(&self, count: usize) -> Vec<Tuple> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xfeed);
        (0..count)
            .map(|_| {
                Tuple::new(
                    (0..self.attrs)
                        .map(|_| Value::Int(rng.gen_range(1..=DOMAIN)))
                        .collect(),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use predindex::{Matcher, PredicateIndex};

    #[test]
    fn shape_matches_paper() {
        let w = SchemeWorkload::default();
        let db = w.database();
        let preds = w.predicates();
        assert_eq!(preds.len(), 200);
        let indexable = preds
            .iter()
            .filter(|p| p.clauses().iter().any(|c| c.is_indexable()))
            .count();
        assert!((160..=198).contains(&indexable), "indexable = {indexable}");

        let mut index = PredicateIndex::new();
        for p in preds {
            index.insert(p, db.catalog()).unwrap();
        }
        // One IBS-tree per predicated attribute.
        assert_eq!(index.attribute_tree_count(), w.predicated_attrs);
    }

    #[test]
    fn match_counts_are_plausible() {
        // Each predicate has 2 clauses of selectivity ~0.1, so a random
        // tuple should fully match ~200 * 0.01 = 2 indexable predicates
        // plus about half of the ~20 isodd predicates.
        let w = SchemeWorkload::default();
        let db = w.database();
        let mut index = PredicateIndex::new();
        for p in w.predicates() {
            index.insert(p, db.catalog()).unwrap();
        }
        let tuples = w.tuples(200);
        let total: usize = tuples
            .iter()
            .map(|t| index.match_tuple(SchemeWorkload::RELATION, t).len())
            .sum();
        let avg = total as f64 / 200.0;
        assert!((2.0..=25.0).contains(&avg), "avg matches = {avg}");
    }
}
