//! Workload generators reproducing the paper's evaluation setup.
//!
//! §5.2: "A series of IBS trees were created which contained N
//! predicates for N between 0 and 1,000. A fraction a of predicates were
//! simple points of the form attribute = constant, and the remaining
//! fraction 1 − a were closed intervals. The points and interval
//! boundaries were drawn randomly from a uniform distribution of
//! integers between 1 and 10,000. The length of the intervals was drawn
//! randomly from a uniform distribution of integers between 1 and
//! 1,000."

use interval::{Interval, IntervalId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Key domain bounds from the paper.
pub const DOMAIN_LO: i64 = 1;
/// Upper bound of the paper's uniform endpoint distribution.
pub const DOMAIN_HI: i64 = 10_000;
/// Upper bound of the paper's uniform interval-length distribution.
pub const MAX_LEN: i64 = 1_000;

/// The Figure 7/8 workload: `n` predicates, fraction `a` of which are
/// points, the rest closed intervals.
#[derive(Debug, Clone, Copy)]
pub struct FigureWorkload {
    /// Number of predicates.
    pub n: usize,
    /// Fraction of point (equality) predicates: the paper sweeps
    /// a ∈ {0, 0.5, 1}.
    pub a: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl FigureWorkload {
    /// Generates the interval set.
    pub fn intervals(&self) -> Vec<(IntervalId, Interval<i64>)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.n as u32)
            .map(|i| {
                let iv = if rng.gen_bool(self.a) {
                    Interval::point(rng.gen_range(DOMAIN_LO..=DOMAIN_HI))
                } else {
                    let lo = rng.gen_range(DOMAIN_LO..=DOMAIN_HI);
                    let len = rng.gen_range(1..=MAX_LEN);
                    Interval::closed(lo, lo + len)
                };
                (IntervalId(i), iv)
            })
            .collect()
    }

    /// A stream of query points from the paper's key distribution.
    pub fn queries(&self, count: usize) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xdead_beef);
        (0..count)
            .map(|_| rng.gen_range(DOMAIN_LO..=DOMAIN_HI))
            .collect()
    }
}

/// A clustered ("80/20") interval workload: `hot_frac` of the intervals
/// crowd into a region occupying 5% of the key domain, the rest spread
/// uniformly. The paper evaluates uniform keys only; rule bases in
/// practice cluster (many rules watch the same thresholds), so the skew
/// experiment checks that nothing degrades super-logarithmically.
#[derive(Debug, Clone, Copy)]
pub struct ClusteredWorkload {
    /// Number of intervals.
    pub n: usize,
    /// Fraction of intervals landing in the hot region.
    pub hot_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ClusteredWorkload {
    /// The hot region: 5% of the domain, centered.
    const HOT_LO: i64 = 4_750;
    const HOT_HI: i64 = 5_250;

    /// Generates the interval set.
    pub fn intervals(&self) -> Vec<(IntervalId, Interval<i64>)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.n as u32)
            .map(|i| {
                let (lo_range, max_len) = if rng.gen_bool(self.hot_frac) {
                    (Self::HOT_LO..=Self::HOT_HI, 100)
                } else {
                    (DOMAIN_LO..=DOMAIN_HI, MAX_LEN)
                };
                let lo = rng.gen_range(lo_range);
                let len = rng.gen_range(1..=max_len);
                (IntervalId(i), Interval::closed(lo, lo + len))
            })
            .collect()
    }

    /// Queries skewed the same way: most probes hit the hot region.
    pub fn queries(&self, count: usize) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xabcd);
        (0..count)
            .map(|_| {
                if rng.gen_bool(self.hot_frac) {
                    rng.gen_range(Self::HOT_LO..=Self::HOT_HI)
                } else {
                    rng.gen_range(DOMAIN_LO..=DOMAIN_HI)
                }
            })
            .collect()
    }
}

/// A non-overlapping interval set of size `n` (the §5.1 O(N)-marker best
/// case: disjoint intervals).
pub fn disjoint_intervals(n: usize) -> Vec<(IntervalId, Interval<i64>)> {
    (0..n as u32)
        .map(|i| {
            let base = i as i64 * 10;
            (IntervalId(i), Interval::closed(base, base + 6))
        })
        .collect()
}

/// A heavily nested interval set of size `n` (a worst case for marker
/// count: every interval overlaps every other).
pub fn nested_intervals(n: usize) -> Vec<(IntervalId, Interval<i64>)> {
    (0..n as u32)
        .map(|i| {
            let k = i as i64;
            (IntervalId(i), Interval::closed(-k, k))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_respected() {
        for (a, lo, hi) in [(0.0, 0, 0), (0.5, 350, 650), (1.0, 1000, 1000)] {
            let w = FigureWorkload { n: 1000, a, seed: 1 };
            let points = w
                .intervals()
                .iter()
                .filter(|(_, iv)| iv.is_point())
                .count();
            assert!(
                (lo..=hi).contains(&points),
                "a={a}: {points} points outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let w = FigureWorkload { n: 50, a: 0.5, seed: 9 };
        assert_eq!(w.intervals(), w.intervals());
        assert_eq!(w.queries(10), w.queries(10));
        let other = FigureWorkload { n: 50, a: 0.5, seed: 10 };
        assert_ne!(w.intervals(), other.intervals());
    }

    #[test]
    fn endpoints_in_domain() {
        let w = FigureWorkload { n: 500, a: 0.3, seed: 2 };
        for (_, iv) in w.intervals() {
            let lo = iv.lo().value().copied().unwrap();
            let hi = iv.hi().value().copied().unwrap();
            assert!((DOMAIN_LO..=DOMAIN_HI).contains(&lo));
            assert!(hi <= DOMAIN_HI + MAX_LEN);
            assert!(hi - lo <= MAX_LEN);
        }
    }

    #[test]
    fn clustered_respects_hot_fraction() {
        let w = ClusteredWorkload { n: 2000, hot_frac: 0.8, seed: 3 };
        let hot = w
            .intervals()
            .iter()
            .filter(|(_, iv)| {
                let lo = iv.lo().value().copied().unwrap();
                (4_750..=5_250).contains(&lo)
            })
            .count();
        assert!((1_400..=1_800).contains(&hot), "hot = {hot}");
        assert_eq!(w.intervals(), w.intervals(), "deterministic");
    }

    #[test]
    fn disjoint_really_disjoint() {
        let ivs = disjoint_intervals(100);
        for w in ivs.windows(2) {
            assert!(!w[0].1.overlaps(&w[1].1));
        }
    }
}
