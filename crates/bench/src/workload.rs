//! Workload generators reproducing the paper's evaluation setup.
//!
//! §5.2: "A series of IBS trees were created which contained N
//! predicates for N between 0 and 1,000. A fraction a of predicates were
//! simple points of the form attribute = constant, and the remaining
//! fraction 1 − a were closed intervals. The points and interval
//! boundaries were drawn randomly from a uniform distribution of
//! integers between 1 and 10,000. The length of the intervals was drawn
//! randomly from a uniform distribution of integers between 1 and
//! 1,000."

use crate::scheme::SchemeWorkload;
use interval::{Interval, IntervalId};
use predicate::Predicate;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use relation::{AttrType, Database, Schema, Tuple, Value};

/// Key domain bounds from the paper.
pub const DOMAIN_LO: i64 = 1;
/// Upper bound of the paper's uniform endpoint distribution.
pub const DOMAIN_HI: i64 = 10_000;
/// Upper bound of the paper's uniform interval-length distribution.
pub const MAX_LEN: i64 = 1_000;

/// The Figure 7/8 workload: `n` predicates, fraction `a` of which are
/// points, the rest closed intervals.
#[derive(Debug, Clone, Copy)]
pub struct FigureWorkload {
    /// Number of predicates.
    pub n: usize,
    /// Fraction of point (equality) predicates: the paper sweeps
    /// a ∈ {0, 0.5, 1}.
    pub a: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl FigureWorkload {
    /// Generates the interval set.
    pub fn intervals(&self) -> Vec<(IntervalId, Interval<i64>)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.n as u32)
            .map(|i| {
                let iv = if rng.gen_bool(self.a) {
                    Interval::point(rng.gen_range(DOMAIN_LO..=DOMAIN_HI))
                } else {
                    let lo = rng.gen_range(DOMAIN_LO..=DOMAIN_HI);
                    let len = rng.gen_range(1..=MAX_LEN);
                    Interval::closed(lo, lo + len)
                };
                (IntervalId(i), iv)
            })
            .collect()
    }

    /// A stream of query points from the paper's key distribution.
    pub fn queries(&self, count: usize) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xdead_beef);
        (0..count)
            .map(|_| rng.gen_range(DOMAIN_LO..=DOMAIN_HI))
            .collect()
    }
}

/// A clustered ("80/20") interval workload: `hot_frac` of the intervals
/// crowd into a region occupying 5% of the key domain, the rest spread
/// uniformly. The paper evaluates uniform keys only; rule bases in
/// practice cluster (many rules watch the same thresholds), so the skew
/// experiment checks that nothing degrades super-logarithmically.
#[derive(Debug, Clone, Copy)]
pub struct ClusteredWorkload {
    /// Number of intervals.
    pub n: usize,
    /// Fraction of intervals landing in the hot region.
    pub hot_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ClusteredWorkload {
    /// The hot region: 5% of the domain, centered.
    const HOT_LO: i64 = 4_750;
    const HOT_HI: i64 = 5_250;

    /// Generates the interval set.
    pub fn intervals(&self) -> Vec<(IntervalId, Interval<i64>)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.n as u32)
            .map(|i| {
                let (lo_range, max_len) = if rng.gen_bool(self.hot_frac) {
                    (Self::HOT_LO..=Self::HOT_HI, 100)
                } else {
                    (DOMAIN_LO..=DOMAIN_HI, MAX_LEN)
                };
                let lo = rng.gen_range(lo_range);
                let len = rng.gen_range(1..=max_len);
                (IntervalId(i), Interval::closed(lo, lo + len))
            })
            .collect()
    }

    /// Queries skewed the same way: most probes hit the hot region.
    pub fn queries(&self, count: usize) -> Vec<i64> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xabcd);
        (0..count)
            .map(|_| {
                if rng.gen_bool(self.hot_frac) {
                    rng.gen_range(Self::HOT_LO..=Self::HOT_HI)
                } else {
                    rng.gen_range(DOMAIN_LO..=DOMAIN_HI)
                }
            })
            .collect()
    }
}

/// Batch-matching workload for the sharded-index ablation: `relations`
/// relations (named `r0..`), each carrying a §5.2-shaped predicate set,
/// and batches of `(relation, tuple)` pairs interleaved across them in
/// random order — the shape of an event queue drained between rule
/// firings. With `relations = 1` this degenerates to the paper's
/// single-relation §5.2 scenario (every tuple hits one shard, so any
/// speedup comes purely from concurrent readers on that shard's lock).
#[derive(Debug, Clone, Copy)]
pub struct BatchWorkload {
    /// Number of relations the batch spreads across.
    pub relations: usize,
    /// Per-relation predicate-set shape (§5.2 defaults).
    pub scheme: SchemeWorkload,
}

impl BatchWorkload {
    /// The §5.2 scenario spread over `relations` relations.
    pub fn new(relations: usize) -> Self {
        BatchWorkload {
            relations: relations.max(1),
            scheme: SchemeWorkload::default(),
        }
    }

    /// Name of relation `i`.
    pub fn relation_name(i: usize) -> String {
        format!("r{i}")
    }

    /// Builds the database: `relations` copies of the scenario schema.
    pub fn database(&self) -> Database {
        let mut db = Database::new();
        for i in 0..self.relations {
            let mut b = Schema::builder(Self::relation_name(i));
            for a in 0..self.scheme.attrs {
                b = b.attr(format!("a{a}"), AttrType::Int);
            }
            db.create_relation(b.build()).expect("fresh relation");
        }
        db
    }

    /// The full predicate set: one §5.2-shaped set per relation, each
    /// drawn from its own seed so the sets differ.
    pub fn predicates(&self) -> Vec<Predicate> {
        (0..self.relations)
            .flat_map(|i| {
                let scheme = SchemeWorkload {
                    seed: self.scheme.seed.wrapping_add(i as u64),
                    ..self.scheme
                };
                let name = Self::relation_name(i);
                scheme
                    .predicates()
                    .into_iter()
                    .map(move |p| Predicate::new(&name, p.clauses().to_vec()))
            })
            .collect()
    }

    /// A batch of `count` `(relation name, tuple)` pairs: tuples from
    /// the scenario domain, spread evenly over the relations, shuffled
    /// so shard access is interleaved rather than run-length sorted.
    pub fn batch(&self, count: usize) -> Vec<(String, Tuple)> {
        let mut rng = StdRng::seed_from_u64(self.scheme.seed ^ 0xba7c);
        let mut out: Vec<(String, Tuple)> = (0..count)
            .map(|i| {
                let tuple = Tuple::new(
                    (0..self.scheme.attrs)
                        .map(|_| Value::Int(rng.gen_range(1..=crate::scheme::DOMAIN)))
                        .collect(),
                );
                (Self::relation_name(i % self.relations), tuple)
            })
            .collect();
        out.shuffle(&mut rng);
        out
    }
}

/// A non-overlapping interval set of size `n` (the §5.1 O(N)-marker best
/// case: disjoint intervals).
pub fn disjoint_intervals(n: usize) -> Vec<(IntervalId, Interval<i64>)> {
    (0..n as u32)
        .map(|i| {
            let base = i as i64 * 10;
            (IntervalId(i), Interval::closed(base, base + 6))
        })
        .collect()
}

/// A heavily nested interval set of size `n` (a worst case for marker
/// count: every interval overlaps every other).
pub fn nested_intervals(n: usize) -> Vec<(IntervalId, Interval<i64>)> {
    (0..n as u32)
        .map(|i| {
            let k = i as i64;
            (IntervalId(i), Interval::closed(-k, k))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_respected() {
        for (a, lo, hi) in [(0.0, 0, 0), (0.5, 350, 650), (1.0, 1000, 1000)] {
            let w = FigureWorkload {
                n: 1000,
                a,
                seed: 1,
            };
            let points = w.intervals().iter().filter(|(_, iv)| iv.is_point()).count();
            assert!(
                (lo..=hi).contains(&points),
                "a={a}: {points} points outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let w = FigureWorkload {
            n: 50,
            a: 0.5,
            seed: 9,
        };
        assert_eq!(w.intervals(), w.intervals());
        assert_eq!(w.queries(10), w.queries(10));
        let other = FigureWorkload {
            n: 50,
            a: 0.5,
            seed: 10,
        };
        assert_ne!(w.intervals(), other.intervals());
    }

    #[test]
    fn endpoints_in_domain() {
        let w = FigureWorkload {
            n: 500,
            a: 0.3,
            seed: 2,
        };
        for (_, iv) in w.intervals() {
            let lo = iv.lo().value().copied().unwrap();
            let hi = iv.hi().value().copied().unwrap();
            assert!((DOMAIN_LO..=DOMAIN_HI).contains(&lo));
            assert!(hi <= DOMAIN_HI + MAX_LEN);
            assert!(hi - lo <= MAX_LEN);
        }
    }

    #[test]
    fn clustered_respects_hot_fraction() {
        let w = ClusteredWorkload {
            n: 2000,
            hot_frac: 0.8,
            seed: 3,
        };
        let hot = w
            .intervals()
            .iter()
            .filter(|(_, iv)| {
                let lo = iv.lo().value().copied().unwrap();
                (4_750..=5_250).contains(&lo)
            })
            .count();
        assert!((1_400..=1_800).contains(&hot), "hot = {hot}");
        assert_eq!(w.intervals(), w.intervals(), "deterministic");
    }

    #[test]
    fn batch_workload_shape() {
        use predindex::{Matcher, PredicateIndex, ShardedPredicateIndex};

        let w = BatchWorkload::new(4);
        let db = w.database();
        let preds = w.predicates();
        assert_eq!(preds.len(), 4 * w.scheme.predicates);

        let mut seq = PredicateIndex::new();
        let sharded = ShardedPredicateIndex::new();
        for p in preds {
            seq.insert(p.clone(), db.catalog()).unwrap();
            sharded.insert_shared(p, db.catalog()).unwrap();
        }

        let batch = w.batch(200);
        assert_eq!(batch.len(), 200);
        // Evenly spread across the four relations.
        for i in 0..4 {
            let name = BatchWorkload::relation_name(i);
            assert_eq!(batch.iter().filter(|(r, _)| *r == name).count(), 50);
        }
        assert_eq!(w.batch(200), batch, "deterministic per seed");

        // The sharded batch path agrees with sequential matching.
        let refs: Vec<(&str, &Tuple)> = batch.iter().map(|(r, t)| (r.as_str(), t)).collect();
        let expect: Vec<_> = refs.iter().map(|(r, t)| seq.match_tuple(r, t)).collect();
        assert_eq!(sharded.match_batch_threads(&refs, 4), expect);
    }

    #[test]
    fn disjoint_really_disjoint() {
        let ivs = disjoint_intervals(100);
        for w in ivs.windows(2) {
            assert!(!w[0].1.overlaps(&w[1].1));
        }
    }
}
