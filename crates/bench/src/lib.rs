//! # Benchmark harness
//!
//! Reproduces every evaluation artifact of the paper:
//!
//! * **Figure 7** — average IBS-tree insertion time vs N for point
//!   fractions a ∈ {0, .5, 1} (`benches/fig7_insert.rs`),
//! * **Figure 8** — average IBS-tree search time, same sweep
//!   (`benches/fig8_search.rs`),
//! * **Figure 9** — IBS-tree vs sequential list matching cost for small
//!   N (`benches/fig9_sequential.rs`),
//! * **§5.2 cost model** — the 2.1 ms/tuple worked example, recomputed
//!   with the paper's constants and re-measured end to end
//!   ([`costmodel`]),
//! * ablations the paper motivates: balanced vs unbalanced trees,
//!   IBS-tree vs every comparator structure (§6's proposed comparison),
//!   and the full scheme vs the §2 baselines.
//!
//! `cargo run --release -p bench --bin reproduce` prints the full
//! paper-style tables; the Criterion benches provide statistical rigor
//! on individual points.

#![deny(unreachable_pub)]

pub mod costmodel;
pub mod scheme;
pub mod timing;
pub mod workload;
