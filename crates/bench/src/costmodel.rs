//! The §5.2 cost model, recomputed with the paper's constants and
//! re-measured with this machine's.
//!
//! Paper formula (per modified tuple):
//!
//! ```text
//! search cost = hash cost
//!             + (#attributes searched) × (IBS-tree search cost)
//!             + (1 − indexable fraction) × (sequential test cost) × N
//! total cost  = search cost
//!             + (N × clause selectivity) × (full predicate test cost)
//! ```
//!
//! With the paper's SPARCstation-1 constants — hash 0.1 ms, IBS search
//! 0.13 ms at 40 predicates/attribute, sequential clause test 0.02 ms,
//! full test 0.05 ms, 15 attributes with 1/3 predicated, N = 200, 90%
//! indexable, selectivity 0.1 — this gives ≈1.1 ms search + 1.0 ms
//! residual ≈ **2.1 ms per tuple**, the paper's headline estimate.

use crate::scheme::SchemeWorkload;
use crate::timing::{consume, median_ns_per_op};
use predindex::{Matcher, PredicateIndex};

/// The constants of the §5.2 worked example (milliseconds, SPARC-1).
#[derive(Debug, Clone, Copy)]
pub struct CostConstants {
    /// One relation-name hash lookup.
    pub hash_ms: f64,
    /// One IBS-tree search over ~40 predicates.
    pub ibs_search_ms: f64,
    /// Testing one predicate clause in a sequential scan.
    pub seq_test_ms: f64,
    /// The residual full-predicate test after a partial match.
    pub full_test_ms: f64,
}

/// The paper's constants.
pub const PAPER_CONSTANTS: CostConstants = CostConstants {
    hash_ms: 0.1,
    ibs_search_ms: 0.13,
    seq_test_ms: 0.02,
    full_test_ms: 0.05,
};

/// Model output.
#[derive(Debug, Clone, Copy)]
pub struct CostBreakdown {
    pub search_ms: f64,
    pub residual_ms: f64,
}

impl CostBreakdown {
    /// Search + residual.
    pub fn total_ms(&self) -> f64 {
        self.search_ms + self.residual_ms
    }
}

/// Evaluates the §5.2 formula for a scenario shape and a constant set.
pub fn evaluate(w: &SchemeWorkload, c: &CostConstants) -> CostBreakdown {
    let n = w.predicates as f64;
    let attrs_searched = w.predicated_attrs as f64;
    let search_ms =
        c.hash_ms + attrs_searched * c.ibs_search_ms + (1.0 - w.indexable_frac) * c.seq_test_ms * n;
    let partial_matches = n * w.clause_selectivity;
    let residual_ms = partial_matches * c.full_test_ms;
    CostBreakdown {
        search_ms,
        residual_ms,
    }
}

/// Measures this machine's constants on the actual implementation.
pub fn measure_constants(w: &SchemeWorkload) -> CostConstants {
    use relation::fx::FnvHashMap;

    // Hash lookup cost: FNV map keyed by relation names.
    let mut map: FnvHashMap<String, usize> = FnvHashMap::default();
    for i in 0..32 {
        map.insert(format!("relation_{i}"), i);
    }
    let hash_ns = median_ns_per_op(9, 10_000, || {
        let mut acc = 0usize;
        for _ in 0..10_000 {
            acc += consume(map.get("relation_7").copied().unwrap_or(0));
        }
        consume(acc);
    });

    // IBS search over ~N/predicated_attrs predicates on one attribute.
    let per_tree = (w.predicates as f64 * w.indexable_frac / w.predicated_attrs as f64) as usize;
    let fig = crate::workload::FigureWorkload {
        n: per_tree.max(1),
        a: 0.0,
        seed: w.seed,
    };
    let mut tree = ibs::IbsTree::new();
    for (id, iv) in fig.intervals() {
        tree.insert(id, iv).expect("fresh ids");
    }
    let queries = fig.queries(4_096);
    let mut out = Vec::with_capacity(64);
    let ibs_ns = median_ns_per_op(9, queries.len(), || {
        for q in &queries {
            out.clear();
            tree.stab_into(q, &mut out);
            consume(out.len());
        }
    });

    // Sequential clause test / full predicate test: evaluate bound
    // predicates directly.
    let db = w.database();
    let preds = w.predicates();
    let schema = db
        .catalog()
        .relation(SchemeWorkload::RELATION)
        .expect("scenario relation")
        .schema()
        .clone();
    let bound: Vec<_> = preds.iter().map(|p| p.bind(&schema).unwrap()).collect();
    let tuples = w.tuples(256);
    let full_ns = median_ns_per_op(9, bound.len() * tuples.len(), || {
        let mut hits = 0usize;
        for t in &tuples {
            for b in &bound {
                hits += consume(b.matches(t)) as usize;
            }
        }
        consume(hits);
    });

    CostConstants {
        hash_ms: hash_ns / 1e6,
        ibs_search_ms: ibs_ns / 1e6,
        seq_test_ms: full_ns / 1e6,
        full_test_ms: full_ns / 1e6,
    }
}

/// The §5.2 cost terms *observed* on a real run: telemetry counters
/// from matching a tuple stream through the full scheme, rather than
/// per-operation micro-benchmarks. These are exact operation counts —
/// nodes actually visited, residual tests actually run — so they
/// validate the model's arithmetic independently of machine speed.
#[derive(Debug, Clone, Copy)]
pub struct WorkCounts {
    /// Tuples matched.
    pub tuples: u64,
    /// IBS-tree nodes visited across all attribute stabs.
    pub ibs_nodes: u64,
    /// Mark-set entries scanned during those stabs.
    pub ibs_marks: u64,
    /// Non-indexable predicates swept sequentially.
    pub seq_tests: u64,
    /// Residual (full-predicate) tests — one per partial match.
    pub residual_tests: u64,
    /// Residual tests that passed — the full matches.
    pub residual_passes: u64,
}

impl WorkCounts {
    /// Average residual tests per tuple — the model's `N × selectivity`
    /// term, measured.
    pub fn residual_tests_per_tuple(&self) -> f64 {
        self.residual_tests as f64 / self.tuples.max(1) as f64
    }

    /// Average IBS nodes visited per tuple.
    pub fn ibs_nodes_per_tuple(&self) -> f64 {
        self.ibs_nodes as f64 / self.tuples.max(1) as f64
    }

    /// Average sequential (non-indexable) tests per tuple — the model's
    /// `(1 − indexable) × N` term, measured.
    pub fn seq_tests_per_tuple(&self) -> f64 {
        self.seq_tests as f64 / self.tuples.max(1) as f64
    }
}

/// Runs `tuples` scenario tuples through the full scheme with a live
/// metrics registry and reads the §5.2 terms back out of the counters.
pub fn measure_work(w: &SchemeWorkload, tuples: usize) -> WorkCounts {
    use std::sync::Arc;

    let db = w.database();
    let registry = Arc::new(telemetry::Registry::new());
    let mut index = PredicateIndex::new();
    index.attach_registry(&registry);
    for p in w.predicates() {
        index
            .insert(p, db.catalog())
            .expect("valid scenario predicate");
    }
    let mut out = Vec::with_capacity(64);
    for t in &w.tuples(tuples) {
        out.clear();
        index.match_tuple_into(SchemeWorkload::RELATION, t, &mut out);
        consume(out.len());
    }
    let count = |name: &str| registry.counter_value(name).unwrap_or(0);
    WorkCounts {
        tuples: count("predindex_match_tuples_total"),
        ibs_nodes: count("predindex_ibs_nodes_visited_total"),
        ibs_marks: count("predindex_ibs_marks_scanned_total"),
        seq_tests: count("predindex_non_indexable_scanned_total"),
        residual_tests: count("predindex_residual_tests_total"),
        residual_passes: count("predindex_residual_passes_total"),
    }
}

/// End-to-end measurement of the full scheme on this machine (ms per
/// tuple).
pub fn measure_end_to_end(w: &SchemeWorkload) -> f64 {
    let db = w.database();
    let mut index = PredicateIndex::new();
    for p in w.predicates() {
        index
            .insert(p, db.catalog())
            .expect("valid scenario predicate");
    }
    let tuples = w.tuples(2_048);
    let mut out = Vec::with_capacity(64);
    let ns = median_ns_per_op(9, tuples.len(), || {
        for t in &tuples {
            out.clear();
            index.match_tuple_into(SchemeWorkload::RELATION, t, &mut out);
            consume(out.len());
        }
    });
    ns / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arithmetic_reproduces_2_1_ms() {
        let w = SchemeWorkload::default();
        let c = evaluate(&w, &PAPER_CONSTANTS);
        // Search: 0.1 + 5×0.13 + 0.1×0.02×200 = 0.1 + 0.65 + 0.4 = 1.15.
        assert!(
            (c.search_ms - 1.15).abs() < 1e-9,
            "search = {}",
            c.search_ms
        );
        // Residual: 200×0.1×0.05 = 1.0.
        assert!((c.residual_ms - 1.0).abs() < 1e-9);
        // Total ≈ 2.1 ms (the paper rounds 1.15 down to 1.1).
        assert!((c.total_ms() - 2.15).abs() < 1e-9);
    }

    #[test]
    fn measured_work_matches_the_scenario_shape() {
        let w = SchemeWorkload::default();
        let work = measure_work(&w, 256);
        assert_eq!(work.tuples, 256);
        // Every match sweeps the whole non-indexable list, so the sweep
        // count is an exact per-tuple constant near (1 − 0.9) × 200.
        assert_eq!(work.seq_tests % work.tuples, 0);
        let per_tuple = work.seq_tests_per_tuple();
        assert!(
            (10.0..=30.0).contains(&per_tuple),
            "seq tests/tuple = {per_tuple}"
        );
        // Every swept candidate is residual-tested, plus the stab hits.
        assert!(work.residual_tests >= work.seq_tests);
        assert!(work.residual_passes <= work.residual_tests);
        // Stabs walked real tree paths and scanned real mark sets.
        assert!(work.ibs_nodes_per_tuple() >= 1.0);
        assert!(work.ibs_marks > 0);
    }

    #[test]
    fn end_to_end_is_far_below_paper_total() {
        // A modern machine must beat a 1989 SPARCstation 1 by orders of
        // magnitude; this guards against pathological regressions.
        let ms = measure_end_to_end(&SchemeWorkload::default());
        assert!(ms < 2.1, "end-to-end {ms} ms is not even SPARC-1 speed");
    }
}
