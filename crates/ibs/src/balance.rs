//! Mark-preserving rotations (paper §4.3, Figures 5 and 6).
//!
//! A single rotation changes which subtrees hang under the two nodes
//! involved, so the `<`, `=`, `>` assertions must be migrated to stay
//! true. With `z` the old subtree root and `y` its child that rotates up,
//! Figure 6 prescribes (right rotation shown; left is the mirror image):
//!
//! | slot | on `y`                                    | on `z`                                   |
//! |------|-------------------------------------------|------------------------------------------|
//! | `<`  | copy marks from `<` of `z`                | gain marks moved out of `>` of `y`       |
//! | `=`  | copy marks from `<` of `z`                | delete marks in both `>y` and `>z`       |
//! | `>`  | move to `<` of `z` unless also in `>` of `z` | delete marks in both `>y` and `>z`    |
//!
//! Why this is right, slot by slot (right rotation, `y = z.left`):
//!
//! * a mark in `z.<` covered the open range `(fence, z)` — everything in
//!   `y`'s old position *and* `y` itself; after the rotation `y` sits
//!   above `z`, so the mark is copied to `y.<` (covers `y`'s left
//!   subtree) and `y.=` (covers `y`), while the original in `z.<` keeps
//!   covering `z`'s new, smaller left subtree;
//! * a mark only in `y.>` covered `(y, z)` — exactly `z`'s new left
//!   subtree, so it moves to `z.<`;
//! * a mark in both `y.>` and `z.>` covered `(y, z)`, `z` itself, and
//!   `(z, fence)`; after the rotation `y.>` alone covers that whole
//!   union, so the now-redundant copies in `z.=` and `z.>` are removed.
//!
//! All moves go through [`IbsTree::add_mark`]/[`IbsTree::remove_mark`] so
//! the placement registry stays exact.

use crate::arena::NodeId;
use crate::marks::Slot;
use crate::tree::IbsTree;
use interval::IntervalId;

impl<K: Ord + Clone> IbsTree<K> {
    /// Rotates the subtree rooted at `z` to the right (its left child
    /// comes up), returning the new subtree root.
    pub(crate) fn rotate_right(&mut self, z: NodeId) -> NodeId {
        let y = self.arena[z].left;
        debug_assert!(!y.is_null(), "rotate_right requires a left child");

        // Snapshot the mark sets that drive the migration *before* any
        // mutation, because the rules are defined on pre-rotation state.
        let z_less: Vec<IntervalId> = self.arena[z].less.iter().collect();
        let y_greater: Vec<IntervalId> = self.arena[y].greater.iter().collect();

        for &m in &z_less {
            self.add_mark(y, Slot::Less, m);
            self.add_mark(y, Slot::Eq, m);
        }
        for &m in &y_greater {
            if self.arena[z].greater.contains(m) {
                // In both `>` slots: y.> alone now covers B ∪ {z} ∪ C.
                self.remove_mark(z, Slot::Eq, m);
                self.remove_mark(z, Slot::Greater, m);
            } else {
                // Only in y.>: it covered exactly z's new left subtree.
                self.remove_mark(y, Slot::Greater, m);
                self.add_mark(z, Slot::Less, m);
            }
        }

        // Structural rotation.
        let b = self.arena[y].right;
        self.arena[z].left = b;
        self.arena[y].right = z;
        self.update_height(z);
        self.update_height(y);
        y
    }

    /// Rotates the subtree rooted at `z` to the left (its right child
    /// comes up), returning the new subtree root. Mirror image of
    /// [`IbsTree::rotate_right`].
    pub(crate) fn rotate_left(&mut self, z: NodeId) -> NodeId {
        let y = self.arena[z].right;
        debug_assert!(!y.is_null(), "rotate_left requires a right child");

        let z_greater: Vec<IntervalId> = self.arena[z].greater.iter().collect();
        let y_less: Vec<IntervalId> = self.arena[y].less.iter().collect();

        for &m in &z_greater {
            self.add_mark(y, Slot::Greater, m);
            self.add_mark(y, Slot::Eq, m);
        }
        for &m in &y_less {
            if self.arena[z].less.contains(m) {
                self.remove_mark(z, Slot::Eq, m);
                self.remove_mark(z, Slot::Less, m);
            } else {
                self.remove_mark(y, Slot::Less, m);
                self.add_mark(z, Slot::Greater, m);
            }
        }

        let b = self.arena[y].left;
        self.arena[z].right = b;
        self.arena[y].left = z;
        self.update_height(z);
        self.update_height(y);
        y
    }
}

#[cfg(test)]
mod tests {
    //! White-box validation of the Figure 5/6 rotation rules: build an
    //! unbalanced tree with a rich mark population, rotate manually, and
    //! verify (a) every stabbing answer is unchanged and (b) the full
    //! invariant (soundness + completeness + registry) still holds —
    //! i.e. the mark migrations of Figure 6 are exactly right.

    use crate::tree::{BalanceMode, IbsTree};
    use interval::{Interval, IntervalId};

    /// A deliberately unbalanced tree (mode `None`) whose root has a
    /// left child, with intervals chosen to populate `<`, `=`, and `>`
    /// slots on both nodes involved in a right rotation.
    fn rich_tree() -> IbsTree<i32> {
        let mut t = IbsTree::with_mode(BalanceMode::None);
        // Insertion order fixes the shape: 20 root, 10 left, 30 right,
        // 5 / 15 under 10.
        let data: &[(u32, Interval<i32>)] = &[
            (0, Interval::closed(20, 30)), // creates 20, 30
            (1, Interval::closed(5, 15)),  // creates 5 under... (descends)
            (2, Interval::closed(10, 15)), // creates 10, 15
            (3, Interval::closed(5, 30)),  // spans nearly everything
            (4, Interval::point(10)),
            (5, Interval::at_most(15)),  // open-ended below
            (6, Interval::at_least(10)), // open-ended above
            (7, Interval::closed(15, 20)),
        ];
        for (i, iv) in data {
            t.insert(IntervalId(*i), iv.clone()).unwrap();
        }
        t.assert_invariants();
        t
    }

    fn all_stabs(t: &IbsTree<i32>) -> Vec<Vec<IntervalId>> {
        (-5..40)
            .map(|x| {
                let mut v = t.stab(&x);
                v.sort_unstable();
                v
            })
            .collect()
    }

    #[test]
    fn manual_rotate_right_preserves_semantics() {
        let mut t = rich_tree();
        let before = all_stabs(&t);
        let root = t.root_id();
        assert!(!t.node(root).left.is_null(), "shape precondition");
        let new_root = t.rotate_right(root);
        t.root = new_root;
        t.assert_invariants();
        assert_eq!(all_stabs(&t), before, "rotation changed query results");
    }

    #[test]
    fn manual_rotate_left_preserves_semantics() {
        let mut t = rich_tree();
        let before = all_stabs(&t);
        let root = t.root_id();
        assert!(!t.node(root).right.is_null(), "shape precondition");
        let new_root = t.rotate_left(root);
        t.root = new_root;
        t.assert_invariants();
        assert_eq!(all_stabs(&t), before, "rotation changed query results");
    }

    #[test]
    fn rotations_compose_and_invert() {
        // rotate_right then rotate_left at the same position restores an
        // equivalent (query-identical, invariant-clean) tree; repeated
        // alternation must not accumulate mark garbage.
        let mut t = rich_tree();
        let before = all_stabs(&t);
        let markers_before = t.marker_count();
        for _ in 0..6 {
            let r = t.rotate_right(t.root_id());
            t.root = r;
            t.assert_invariants();
            let r = t.rotate_left(t.root_id());
            t.root = r;
            t.assert_invariants();
        }
        assert_eq!(all_stabs(&t), before);
        // Marks may land in different slots but the count must not blow
        // up (rule 3 removes the redundant copies rule 1 would create).
        assert!(
            t.marker_count() <= markers_before + 4,
            "marker count grew from {} to {} across rotations",
            markers_before,
            t.marker_count()
        );
    }

    #[test]
    fn deep_rotation_below_root() {
        // Rotate a non-root subtree: the fence context (leftUp/rightUp)
        // differs from the root case and must still be respected.
        let mut t = rich_tree();
        let before = all_stabs(&t);
        // Shape from the fixed insertion order: 20(5(·,15(10,·)),30) —
        // node 15 sits two levels down and has a left child.
        let root = t.root_id();
        let five = t.node(root).left;
        let fifteen = t.node(five).right;
        assert_eq!(t.node(fifteen).value, 15, "shape precondition");
        assert!(!t.node(fifteen).left.is_null(), "shape precondition");
        let new_sub = t.rotate_right(fifteen);
        t.arena[five].right = new_sub;
        t.update_height(five);
        t.update_height(root);
        t.assert_invariants();
        assert_eq!(all_stabs(&t), before);
    }
}
