//! Arena storage for IBS-tree nodes.
//!
//! Nodes live in a `Vec` and refer to each other by `u32` index with a
//! `NULL` sentinel; a free list recycles slots so ids stay stable across
//! deletions (the mark registry depends on that stability).

use crate::marks::MarkSet;

/// Index of a node in the arena. `NodeId::NULL` is the absent child.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct NodeId(pub(crate) u32);

impl NodeId {
    /// Sentinel for "no node".
    pub(crate) const NULL: NodeId = NodeId(u32::MAX);

    /// Is this the null sentinel?
    #[inline]
    pub(crate) fn is_null(self) -> bool {
        self.0 == u32::MAX
    }

    #[inline]
    pub(crate) fn index(self) -> usize {
        self.0 as usize
    }
}

/// One IBS-tree node: the paper's upside-down-"T" diagram — a value plus
/// the `<`, `=`, `>` mark slots — extended with AVL height and endpoint
/// ownership bookkeeping for dynamic deletion.
#[derive(Debug, Clone)]
pub(crate) struct Node<K> {
    /// The end point of an interval or the constant in an equality
    /// predicate (paper's `Value` field).
    pub(crate) value: K,
    pub(crate) left: NodeId,
    pub(crate) right: NodeId,
    /// Height of the subtree rooted here (leaf = 1).
    pub(crate) height: u32,
    /// `<` slot.
    pub(crate) less: MarkSet,
    /// `=` slot.
    pub(crate) eq: MarkSet,
    /// `>` slot.
    pub(crate) greater: MarkSet,
    /// Intervals whose (finite) lower endpoint value equals `value`.
    pub(crate) lo_owners: MarkSet,
    /// Intervals whose (finite) upper endpoint value equals `value`.
    pub(crate) hi_owners: MarkSet,
}

impl<K> Node<K> {
    fn new(value: K) -> Self {
        Node {
            value,
            left: NodeId::NULL,
            right: NodeId::NULL,
            height: 1,
            less: MarkSet::new(),
            eq: MarkSet::new(),
            greater: MarkSet::new(),
            lo_owners: MarkSet::new(),
            hi_owners: MarkSet::new(),
        }
    }

    /// Is any interval's endpoint anchored at this node?
    pub(crate) fn has_owners(&self) -> bool {
        !self.lo_owners.is_empty() || !self.hi_owners.is_empty()
    }
}

/// Slab of nodes with a free list.
#[derive(Debug, Clone, Default)]
pub(crate) struct Arena<K> {
    nodes: Vec<Option<Node<K>>>,
    free: Vec<NodeId>,
    live: usize,
}

impl<K> Arena<K> {
    pub(crate) fn new() -> Self {
        Arena {
            nodes: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// Allocates a node holding `value`, reusing a free slot if possible.
    pub(crate) fn alloc(&mut self, value: K) -> NodeId {
        self.live += 1;
        if let Some(id) = self.free.pop() {
            self.nodes[id.index()] = Some(Node::new(value));
            id
        } else {
            // srclint:allow(no-panic-in-lib): u32 id-space exhaustion (4B nodes) is unrecoverable resource exhaustion
            let id = NodeId(u32::try_from(self.nodes.len()).expect("arena overflow"));
            self.nodes.push(Some(Node::new(value)));
            id
        }
    }

    /// Releases a node's slot back to the free list.
    pub(crate) fn dealloc(&mut self, id: NodeId) -> Node<K> {
        // srclint:allow(no-panic-in-lib): documented, tested panic — a double free is tree-corruption and must not be papered over
        let node = self.nodes[id.index()].take().expect("double free");
        self.free.push(id);
        self.live -= 1;
        node
    }

    /// Number of live nodes.
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Are there no live nodes?
    #[allow(dead_code)] // part of the container API surface
    pub(crate) fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates `(id, node)` over live nodes.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (NodeId, &Node<K>)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.as_ref().map(|n| (NodeId(i as u32), n)))
    }
}

impl<K> Arena<K> {
    /// A live node by id, skipping the bounds and liveness checks.
    ///
    /// The stab descent (§5) resolves one `NodeId` per key comparison,
    /// so the bounds check and `Option` discriminant test sit on the
    /// hottest loop in the matcher. `debug_assert!` keeps the checked
    /// behaviour in test builds.
    #[inline]
    pub(crate) fn get_live_unchecked(&self, id: NodeId) -> &Node<K> {
        debug_assert!(
            self.nodes.get(id.index()).is_some_and(Option::is_some),
            "dangling node id"
        );
        // SAFETY: tree links (`root`, `left`, `right`) only ever hold
        // ids of live nodes — `alloc` returns in-bounds indices, slots
        // are never shrunk away, and every dealloc site unlinks the
        // node from its parent first. Callers pass only ids read from
        // such links, so the slot exists and holds `Some`.
        unsafe {
            self.nodes
                .get_unchecked(id.index())
                .as_ref()
                .unwrap_unchecked()
        }
    }
}

impl<K> std::ops::Index<NodeId> for Arena<K> {
    type Output = Node<K>;
    #[inline]
    fn index(&self, id: NodeId) -> &Node<K> {
        // srclint:allow(no-panic-in-lib): Index contract — a dangling NodeId is a broken tree link, not a recoverable state
        self.nodes[id.index()].as_ref().expect("dangling node id")
    }
}

impl<K> std::ops::IndexMut<NodeId> for Arena<K> {
    #[inline]
    fn index_mut(&mut self, id: NodeId) -> &mut Node<K> {
        // srclint:allow(no-panic-in-lib): Index contract — a dangling NodeId is a broken tree link, not a recoverable state
        self.nodes[id.index()].as_mut().expect("dangling node id")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_dealloc_recycles() {
        let mut a: Arena<i32> = Arena::new();
        let n1 = a.alloc(10);
        let n2 = a.alloc(20);
        assert_eq!(a.len(), 2);
        assert_eq!(a[n1].value, 10);
        a.dealloc(n1);
        assert_eq!(a.len(), 1);
        let n3 = a.alloc(30);
        assert_eq!(n3, n1, "free slot is reused");
        assert_eq!(a[n3].value, 30);
        assert_eq!(a[n2].value, 20);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a: Arena<i32> = Arena::new();
        let n = a.alloc(1);
        a.dealloc(n);
        a.dealloc(n);
    }

    #[test]
    fn iter_skips_freed() {
        let mut a: Arena<i32> = Arena::new();
        let n1 = a.alloc(1);
        let _n2 = a.alloc(2);
        a.dealloc(n1);
        let vals: Vec<i32> = a.iter().map(|(_, n)| n.value).collect();
        assert_eq!(vals, vec![2]);
    }
}
