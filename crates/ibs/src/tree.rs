//! The interval binary search tree (IBS-tree), §4.2–4.3 of the paper.
//!
//! Overview of the encoding:
//!
//! * Every finite interval endpoint is a node in a plain binary search
//!   tree over the key domain.
//! * Each node carries three *mark slots*. A mark for interval `I` in a
//!   node's `=` slot asserts `I` contains the node's value; a mark in the
//!   `<` (`>`) slot asserts `I` covers every key that could ever be
//!   inserted into the node's left (right) subtree.
//! * A stabbing query for `X` walks the ordinary search path for `X`,
//!   collecting the `<` slot when it goes left, the `>` slot when it goes
//!   right, and the `=` slot when it hits `X` exactly. The collected union
//!   is exactly the set of intervals containing `X`.
//!
//! Where the paper finds the `leftUp`/`rightUp` ancestors by walking
//! parent pointers, we thread the *descent fences* — the open range
//! `(lo_fence, hi_fence)` of keys insertable under the current node —
//! down every descent; `rightUp(R).value` is precisely the current
//! `hi_fence`, so "everything in the right subtree of R lies within P"
//! becomes [`Interval::covers_open_range`].
//!
//! Deletion follows §4.2's endpoint-ownership rule (an endpoint node is
//! removed only when no remaining interval is anchored at it) with the
//! predecessor-swap splice. Instead of re-deriving mark positions by
//! reversing insertion — fragile once rotations have migrated marks — we
//! keep a registry from interval id to its mark placements, so clearing
//! an interval is exact by construction (see DESIGN.md §5).

use crate::arena::{Arena, Node, NodeId};
use crate::marks::{MarkSet, Slot};
use interval::{Interval, IntervalId};
use std::collections::HashMap;

/// Whether the tree rebalances itself.
///
/// The paper's empirical section (§5.2) measured the *unbalanced* variant
/// ("the balancing scheme using rotations was not implemented, but as with
/// ordinary binary search trees, the tree is normally balanced if data is
/// inserted in random order"); §4.3 defines AVL balancing with
/// mark-preserving rotations. Both are provided so the balancing ablation
/// can quantify the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BalanceMode {
    /// Plain BST shape, exactly as benchmarked in the paper's §5.2.
    None,
    /// AVL balancing with the Figure 5/6 mark-preserving rotations.
    #[default]
    Avl,
}

/// Error returned by [`IbsTree::insert`] when the id is already present.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DuplicateId(pub IntervalId);

impl std::fmt::Display for DuplicateId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "interval id {} is already in the tree", self.0)
    }
}

impl std::error::Error for DuplicateId {}

/// A dynamically updatable index over intervals and points supporting
/// stabbing queries in `O(log N + L)`.
///
/// ```
/// use ibs::IbsTree;
/// use interval::{Interval, IntervalId};
///
/// let mut t = IbsTree::new();
/// t.insert(IntervalId(0), Interval::closed(9, 19)).unwrap();   // paper Fig. 2: A
/// t.insert(IntervalId(1), Interval::closed(2, 7)).unwrap();    // B
/// t.insert(IntervalId(4), Interval::closed(8, 12)).unwrap();   // E
/// t.insert(IntervalId(6), Interval::at_most(17)).unwrap();     // G = (-inf, 17]
///
/// let mut hits = t.stab(&10);
/// hits.sort();
/// assert_eq!(hits, vec![IntervalId(0), IntervalId(4), IntervalId(6)]);
/// ```
#[derive(Debug, Clone)]
pub struct IbsTree<K> {
    pub(crate) arena: Arena<K>,
    pub(crate) root: NodeId,
    /// id → the interval itself (the paper's `PREDICATES` side table,
    /// scoped to this tree).
    pub(crate) intervals: HashMap<u32, Interval<K>>,
    /// id → every `(node, slot)` currently holding a mark for it.
    pub(crate) placements: HashMap<u32, Vec<(NodeId, Slot)>>,
    /// Intervals with no finite endpoint at all: `(-inf, +inf)` matches
    /// every key, so it is reported unconditionally rather than marked.
    pub(crate) universal: Vec<IntervalId>,
    mode: BalanceMode,
}

impl<K: Ord + Clone> Default for IbsTree<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone> IbsTree<K> {
    /// An empty AVL-balanced tree.
    pub fn new() -> Self {
        Self::with_mode(BalanceMode::Avl)
    }

    /// An empty tree with an explicit balancing mode.
    pub fn with_mode(mode: BalanceMode) -> Self {
        IbsTree {
            arena: Arena::new(),
            root: NodeId::NULL,
            intervals: HashMap::new(),
            placements: HashMap::new(),
            universal: Vec::new(),
            mode,
        }
    }

    /// The balancing mode this tree was created with.
    pub fn mode(&self) -> BalanceMode {
        self.mode
    }

    /// Number of intervals currently indexed.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// Is the tree empty of intervals?
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// Number of live endpoint nodes.
    pub fn node_count(&self) -> usize {
        self.arena.len()
    }

    /// Total number of marks across all slots — the paper's space metric
    /// (§5.1: `O(N log N)` worst case, `O(N)` when intervals are
    /// disjoint).
    pub fn marker_count(&self) -> usize {
        self.arena
            .iter()
            .map(|(_, n)| n.less.len() + n.eq.len() + n.greater.len())
            .sum()
    }

    /// Height of the endpoint tree (empty = 0).
    pub fn height(&self) -> u32 {
        self.height_of(self.root)
    }

    /// The interval stored under `id`, if any.
    pub fn get(&self, id: IntervalId) -> Option<&Interval<K>> {
        self.intervals.get(&id.0)
    }

    /// Does the tree contain an interval under `id`?
    pub fn contains_id(&self, id: IntervalId) -> bool {
        self.intervals.contains_key(&id.0)
    }

    /// Iterates all `(id, interval)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (IntervalId, &Interval<K>)> {
        self.intervals.iter().map(|(&id, iv)| (IntervalId(id), iv))
    }

    // ------------------------------------------------------------------
    // Stabbing queries (paper Figure 4, `findIntervals`)
    // ------------------------------------------------------------------

    /// Returns the ids of every interval containing `x`, in unspecified
    /// order (each id exactly once).
    pub fn stab(&self, x: &K) -> Vec<IntervalId> {
        let mut out = Vec::new();
        self.stab_into(x, &mut out);
        out
    }

    /// As [`IbsTree::stab`], appending into a caller-owned buffer so hot
    /// loops can reuse the allocation.
    pub fn stab_into(&self, x: &K, out: &mut Vec<IntervalId>) {
        self.stab_into_observed(x, out, &mut ());
    }

    /// As [`IbsTree::stab_into`], reporting each unit of §5 work — node
    /// visits and mark collections — to `obs`. With the `()` observer
    /// this monomorphizes to exactly the uninstrumented loop.
    pub fn stab_into_observed<O: crate::StabObserver>(
        &self,
        x: &K,
        out: &mut Vec<IntervalId>,
        obs: &mut O,
    ) {
        out.extend_from_slice(&self.universal);
        obs.universal(self.universal.len());
        let mut cur = self.root;
        while !cur.is_null() {
            let node = self.arena.get_live_unchecked(cur);
            obs.visit_node();
            match x.cmp(&node.value) {
                std::cmp::Ordering::Equal => {
                    node.eq.extend_into(out);
                    obs.collect(Slot::Eq, node.eq.len());
                    break;
                }
                std::cmp::Ordering::Less => {
                    node.less.extend_into(out);
                    obs.collect(Slot::Less, node.less.len());
                    cur = node.left;
                }
                std::cmp::Ordering::Greater => {
                    node.greater.extend_into(out);
                    obs.collect(Slot::Greater, node.greater.len());
                    cur = node.right;
                }
            }
        }
        debug_assert!(
            {
                let mut v = out.clone();
                v.sort_unstable();
                v.windows(2).all(|w| w[0] != w[1])
            },
            "a stab path collected the same interval twice"
        );
    }

    /// Counts the intervals containing `x` without materializing ids.
    pub fn stab_count(&self, x: &K) -> usize {
        let mut count = self.universal.len();
        let mut cur = self.root;
        while !cur.is_null() {
            let node = self.arena.get_live_unchecked(cur);
            match x.cmp(&node.value) {
                std::cmp::Ordering::Equal => {
                    count += node.eq.len();
                    break;
                }
                std::cmp::Ordering::Less => {
                    count += node.less.len();
                    cur = node.left;
                }
                std::cmp::Ordering::Greater => {
                    count += node.greater.len();
                    cur = node.right;
                }
            }
        }
        count
    }

    // ------------------------------------------------------------------
    // Insertion (paper Figure 3, `addLeft` / `addRight`)
    // ------------------------------------------------------------------

    /// Indexes `iv` under `id`.
    ///
    /// Structure first, marks second: both endpoint nodes are inserted
    /// (and the tree rebalanced) before any mark is placed, so marks are
    /// always placed canonically with respect to the final shape. This is
    /// an equivalent refactoring of the paper's interleaved
    /// `insertPredicate`.
    pub fn insert(&mut self, id: IntervalId, iv: Interval<K>) -> Result<(), DuplicateId> {
        if self.intervals.contains_key(&id.0) {
            return Err(DuplicateId(id));
        }
        self.intervals.insert(id.0, iv.clone());

        let lo_val = iv.lo().value().cloned();
        let hi_val = iv.hi().value().cloned();
        if lo_val.is_none() && hi_val.is_none() {
            self.universal.push(id);
            return Ok(());
        }
        if let Some(v) = &lo_val {
            let n = self.ensure_node(v.clone());
            self.arena[n].lo_owners.insert(id);
        }
        if let Some(v) = &hi_val {
            let n = self.ensure_node(v.clone());
            self.arena[n].hi_owners.insert(id);
        }
        self.place_marks(id, &iv);
        Ok(())
    }

    /// Places the marks for `iv` canonically. The endpoint nodes must
    /// already exist.
    ///
    /// This is the paper's `addLeft`/`addRight` pair fused into one
    /// fragment decomposition: starting at the root, each visited node
    /// whose value the interval contains gets an `=` mark; a child
    /// subtree whose entire open key range the interval covers gets a
    /// `<`/`>` mark on the parent (and the descent stops there); a child
    /// subtree the interval only partially overlaps is descended into.
    /// Because the interval's endpoints are tree values, at most two
    /// root-to-endpoint paths are walked — the same paths `addLeft` and
    /// `addRight` take — but no redundant mark is ever placed beyond a
    /// subtree already covered by an ancestor's mark, which the paper's
    /// formulation only guarantees up to set semantics of its result.
    pub(crate) fn place_marks(&mut self, id: IntervalId, iv: &Interval<K>) {
        // (node, lo_fence, hi_fence) positions partially overlapping iv.
        let mut stack: Vec<(NodeId, Option<K>, Option<K>)> = Vec::new();
        if !self.root.is_null() {
            stack.push((self.root, None, None));
        }
        while let Some((n, lo_f, hi_f)) = stack.pop() {
            let v = self.arena[n].value.clone();
            if iv.contains(&v) {
                self.add_mark(n, Slot::Eq, id);
            }
            let left = self.arena[n].left;
            if iv.covers_open_range(lo_f.as_ref(), Some(&v)) {
                self.add_mark(n, Slot::Less, id);
            } else if !left.is_null() && iv.overlaps_open_range(lo_f.as_ref(), Some(&v)) {
                stack.push((left, lo_f.clone(), Some(v.clone())));
            }
            let right = self.arena[n].right;
            if iv.covers_open_range(Some(&v), hi_f.as_ref()) {
                self.add_mark(n, Slot::Greater, id);
            } else if !right.is_null() && iv.overlaps_open_range(Some(&v), hi_f.as_ref()) {
                stack.push((right, Some(v), hi_f));
            }
        }
    }

    // ------------------------------------------------------------------
    // Removal (paper §4.2 deletion procedure)
    // ------------------------------------------------------------------

    /// Removes the interval stored under `id`, returning it. Endpoint
    /// nodes are deleted when no remaining interval is anchored at them.
    pub fn remove(&mut self, id: IntervalId) -> Option<Interval<K>> {
        let iv = self.intervals.remove(&id.0)?;

        let lo_val = iv.lo().value().cloned();
        let hi_val = iv.hi().value().cloned();
        if lo_val.is_none() && hi_val.is_none() {
            self.universal.retain(|&u| u != id);
            return Some(iv);
        }

        // 1. Every mark for the interval comes out, registry-exact.
        self.clear_marks(id);

        // 2. Release both endpoint ownerships first (a point interval
        //    owns the same node twice), then collect values whose nodes
        //    are now unowned and must be deleted.
        if let Some(v) = &lo_val {
            // srclint:allow(no-panic-in-lib): endpoint-ownership invariant — every stored interval's finite endpoint has a node; absence is tree corruption
            let n = self.find_node(v).expect("lo endpoint node missing");
            self.arena[n].lo_owners.remove(id);
        }
        if let Some(v) = &hi_val {
            // srclint:allow(no-panic-in-lib): endpoint-ownership invariant — every stored interval's finite endpoint has a node; absence is tree corruption
            let n = self.find_node(v).expect("hi endpoint node missing");
            self.arena[n].hi_owners.remove(id);
        }
        let mut doomed: Vec<K> = Vec::new();
        for v in [&lo_val, &hi_val].into_iter().flatten() {
            if doomed.last() == Some(v) {
                continue; // point interval: both endpoints share a node
            }
            // srclint:allow(no-panic-in-lib): endpoint-ownership invariant — both endpoints were just verified above
            let n = self.find_node(v).expect("endpoint node missing");
            if !self.arena[n].has_owners() {
                doomed.push(v.clone());
            }
        }

        // 3. Delete unowned endpoint nodes (each fixes up the marks of
        //    intervals the restructuring disturbed).
        for v in doomed {
            self.delete_value(&v);
        }
        Some(iv)
    }

    /// Deletes the node holding `v` from the endpoint tree, repairing the
    /// marks of every interval the restructuring could disturb (the
    /// paper's temporary set `T`, here taken as: all intervals with marks
    /// on the spliced or value-swapped nodes, plus all intervals anchored
    /// at the predecessor's value).
    fn delete_value(&mut self, v: &K) {
        // Descend to the target, recording (node, went_left) for retrace.
        let mut path: Vec<(NodeId, bool)> = Vec::new();
        let mut cur = self.root;
        loop {
            assert!(!cur.is_null(), "delete_value: value not in tree");
            match v.cmp(&self.arena[cur].value) {
                std::cmp::Ordering::Equal => break,
                std::cmp::Ordering::Less => {
                    path.push((cur, true));
                    cur = self.arena[cur].left;
                }
                std::cmp::Ordering::Greater => {
                    path.push((cur, false));
                    cur = self.arena[cur].right;
                }
            }
        }
        let x = cur;

        let two_children = !self.arena[x].left.is_null() && !self.arena[x].right.is_null();

        // Collect the repair set T and strip its marks.
        let mut repair: Vec<IntervalId> = Vec::new();
        let note = |set: &MarkSet, repair: &mut Vec<IntervalId>| {
            for m in set.iter() {
                if !repair.contains(&m) {
                    repair.push(m);
                }
            }
        };
        {
            let xn = &self.arena[x];
            note(&xn.less, &mut repair);
            note(&xn.eq, &mut repair);
            note(&xn.greater, &mut repair);
        }

        let spliced; // the node physically removed from the tree
        if two_children {
            // Find the predecessor y = max(left(x)), extending the path.
            path.push((x, true));
            let mut y = self.arena[x].left;
            while !self.arena[y].right.is_null() {
                path.push((y, false));
                y = self.arena[y].right;
            }
            {
                let yn = &self.arena[y];
                note(&yn.less, &mut repair);
                note(&yn.eq, &mut repair);
                note(&yn.greater, &mut repair);
                note(&yn.lo_owners, &mut repair);
                note(&yn.hi_owners, &mut repair);
            }
            for &m in &repair {
                self.clear_marks(m);
            }
            // Swap the values (and the endpoint ownership that travels
            // with a value) of x and y; marks were already stripped from
            // both nodes, so only the payload moves.
            self.swap_node_values(x, y);
            spliced = y;
        } else {
            for &m in &repair {
                self.clear_marks(m);
            }
            spliced = x;
        }

        // Splice: the spliced node has at most one child.
        let child = if self.arena[spliced].left.is_null() {
            self.arena[spliced].right
        } else {
            self.arena[spliced].left
        };
        debug_assert!(self.arena[spliced].left.is_null() || self.arena[spliced].right.is_null());
        match path.last().copied() {
            None => self.root = child,
            Some((parent, went_left)) => {
                if went_left {
                    self.arena[parent].left = child;
                } else {
                    self.arena[parent].right = child;
                }
            }
        }
        let dead = self.arena.dealloc(spliced);
        debug_assert!(
            dead.less.is_empty() && dead.eq.is_empty() && dead.greater.is_empty(),
            "spliced node still carried marks"
        );
        debug_assert!(!dead.has_owners(), "spliced node still owned endpoints");

        // Rebalance up the (pre-splice) path.
        self.retrace(&path);

        // Re-place marks for every disturbed interval, canonically for
        // the new shape. (The interval being removed is already gone from
        // the side table, so it can never appear in `repair`.)
        for m in repair {
            // srclint:allow(no-panic-in-lib): repair set is drawn from the side table under the same borrow; a missing id is registry corruption
            let iv = self.intervals.get(&m.0).expect("repair id unknown").clone();
            self.place_marks(m, &iv);
        }
    }

    /// Swaps `value`, `lo_owners`, `hi_owners` between two nodes, leaving
    /// links, heights, and mark slots in place (the paper: "swap the
    /// values of x and y, leaving the markers in their former
    /// locations").
    fn swap_node_values(&mut self, a: NodeId, b: NodeId) {
        debug_assert_ne!(a, b);
        // Take both payloads out, swap, put back — avoids unsafe split
        // borrows on the arena.
        let mut an = std::mem::replace(&mut self.arena[a].lo_owners, MarkSet::new());
        std::mem::swap(&mut an, &mut self.arena[b].lo_owners);
        self.arena[a].lo_owners = an;
        let mut an = std::mem::replace(&mut self.arena[a].hi_owners, MarkSet::new());
        std::mem::swap(&mut an, &mut self.arena[b].hi_owners);
        self.arena[a].hi_owners = an;
        let av = self.arena[a].value.clone();
        let bv = std::mem::replace(&mut self.arena[b].value, av);
        self.arena[a].value = bv;
    }

    // ------------------------------------------------------------------
    // Mark bookkeeping
    // ------------------------------------------------------------------

    /// Adds a mark and records the placement. Idempotent.
    pub(crate) fn add_mark(&mut self, node: NodeId, slot: Slot, id: IntervalId) {
        let set = match slot {
            Slot::Less => &mut self.arena[node].less,
            Slot::Eq => &mut self.arena[node].eq,
            Slot::Greater => &mut self.arena[node].greater,
        };
        if set.insert(id) {
            self.placements.entry(id.0).or_default().push((node, slot));
        }
    }

    /// Removes a mark (if present) and its placement record.
    pub(crate) fn remove_mark(&mut self, node: NodeId, slot: Slot, id: IntervalId) {
        let set = match slot {
            Slot::Less => &mut self.arena[node].less,
            Slot::Eq => &mut self.arena[node].eq,
            Slot::Greater => &mut self.arena[node].greater,
        };
        if set.remove(id) {
            let places = self
                .placements
                .get_mut(&id.0)
                // srclint:allow(no-panic-in-lib): mark/placement registry is updated atomically by add_mark; divergence is the Figure 5/6 rotation bug this code prevents
                .expect("mark without placement record");
            let pos = places
                .iter()
                .position(|&(n, s)| n == node && s == slot)
                // srclint:allow(no-panic-in-lib): same registry invariant as above, checked from the other side
                .expect("placement record out of sync");
            places.swap_remove(pos);
        }
    }

    /// Removes every mark belonging to `id`, registry-exact.
    pub(crate) fn clear_marks(&mut self, id: IntervalId) {
        let Some(places) = self.placements.remove(&id.0) else {
            return;
        };
        for (node, slot) in places {
            let set = match slot {
                Slot::Less => &mut self.arena[node].less,
                Slot::Eq => &mut self.arena[node].eq,
                Slot::Greater => &mut self.arena[node].greater,
            };
            let removed = set.remove(id);
            debug_assert!(removed, "registry pointed at a missing mark");
        }
    }

    // ------------------------------------------------------------------
    // Structural BST/AVL machinery
    // ------------------------------------------------------------------

    /// Finds the node holding exactly `v`.
    pub(crate) fn find_node(&self, v: &K) -> Option<NodeId> {
        let mut cur = self.root;
        while !cur.is_null() {
            match v.cmp(&self.arena[cur].value) {
                std::cmp::Ordering::Equal => return Some(cur),
                std::cmp::Ordering::Less => cur = self.arena[cur].left,
                std::cmp::Ordering::Greater => cur = self.arena[cur].right,
            }
        }
        None
    }

    /// Finds or inserts the node for `v`, rebalancing after an insert.
    fn ensure_node(&mut self, v: K) -> NodeId {
        if self.root.is_null() {
            let n = self.arena.alloc(v);
            self.root = n;
            return n;
        }
        let mut path: Vec<(NodeId, bool)> = Vec::new();
        let mut cur = self.root;
        loop {
            match v.cmp(&self.arena[cur].value) {
                std::cmp::Ordering::Equal => return cur,
                std::cmp::Ordering::Less => {
                    path.push((cur, true));
                    let next = self.arena[cur].left;
                    if next.is_null() {
                        let n = self.arena.alloc(v);
                        self.arena[cur].left = n;
                        self.retrace(&path);
                        return n;
                    }
                    cur = next;
                }
                std::cmp::Ordering::Greater => {
                    path.push((cur, false));
                    let next = self.arena[cur].right;
                    if next.is_null() {
                        let n = self.arena.alloc(v);
                        self.arena[cur].right = n;
                        self.retrace(&path);
                        return n;
                    }
                    cur = next;
                }
            }
        }
    }

    pub(crate) fn height_of(&self, n: NodeId) -> u32 {
        if n.is_null() {
            0
        } else {
            self.arena[n].height
        }
    }

    pub(crate) fn update_height(&mut self, n: NodeId) {
        let h = 1 + self
            .height_of(self.arena[n].left)
            .max(self.height_of(self.arena[n].right));
        self.arena[n].height = h;
    }

    /// Walks a recorded root-to-parent path bottom-up, refreshing heights
    /// and (in AVL mode) rotating where the balance factor exceeds ±1.
    fn retrace(&mut self, path: &[(NodeId, bool)]) {
        for i in (0..path.len()).rev() {
            let (n, _) = path[i];
            self.update_height(n);
            if self.mode == BalanceMode::Avl {
                let new_sub = self.rebalance(n);
                if new_sub != n {
                    match i.checked_sub(1) {
                        None => self.root = new_sub,
                        Some(pi) => {
                            let (parent, went_left) = path[pi];
                            if went_left {
                                self.arena[parent].left = new_sub;
                            } else {
                                self.arena[parent].right = new_sub;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Restores the AVL property at `n`, returning the (possibly new)
    /// subtree root.
    fn rebalance(&mut self, n: NodeId) -> NodeId {
        let bf = self.balance_factor(n);
        if bf > 1 {
            // Left-heavy.
            let l = self.arena[n].left;
            if self.balance_factor(l) < 0 {
                let new_l = self.rotate_left(l);
                self.arena[n].left = new_l;
            }
            self.rotate_right(n)
        } else if bf < -1 {
            let r = self.arena[n].right;
            if self.balance_factor(r) > 0 {
                let new_r = self.rotate_right(r);
                self.arena[n].right = new_r;
            }
            self.rotate_left(n)
        } else {
            n
        }
    }

    pub(crate) fn balance_factor(&self, n: NodeId) -> i32 {
        let node = &self.arena[n];
        self.height_of(node.left) as i32 - self.height_of(node.right) as i32
    }
}

/// Borrow-friendly access used by the balance and invariants modules.
impl<K> IbsTree<K> {
    pub(crate) fn node(&self, id: NodeId) -> &Node<K> {
        &self.arena[id]
    }

    /// Root id (may be null).
    pub(crate) fn root_id(&self) -> NodeId {
        self.root
    }
}
