//! Whole-tree invariant verification, used by unit and property tests.
//!
//! The checker proves both directions of IBS-tree correctness:
//!
//! * **soundness** — every mark's assertion is true (an `=` mark's
//!   interval contains the node value; a `<`/`>` mark's interval covers
//!   the whole open key range of the corresponding subtree position);
//! * **completeness** — at every node, the marks a search for that
//!   node's value would collect are exactly the intervals containing it;
//!   and at every *null position* (each gap between adjacent endpoint
//!   values), the collected marks are exactly the intervals covering that
//!   gap. Since interval endpoints are always tree values, an interval
//!   either covers a whole gap or misses it entirely, so this finite
//!   check covers every possible query point.
//!
//! It also cross-checks the placement registry against a full arena scan,
//! verifies BST order via descent fences, AVL height/balance bookkeeping,
//! and endpoint-ownership accounting.

use crate::arena::NodeId;
use crate::marks::Slot;
use crate::tree::{BalanceMode, IbsTree};
use interval::IntervalId;
use std::collections::{HashMap, HashSet};
use std::fmt::Debug;

impl<K: Ord + Clone + Debug> IbsTree<K> {
    /// Verifies every structural and semantic invariant, returning a
    /// description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.check_registry()?;
        self.check_universal()?;
        self.check_structure_and_marks()?;
        self.check_owners()?;
        Ok(())
    }

    /// Panicking wrapper for use in tests.
    #[track_caller]
    pub fn assert_invariants(&self) {
        if let Err(e) = self.check_invariants() {
            // srclint:allow(no-panic-in-lib): documented panicking wrapper over check_invariants, used by tests and fault drills
            panic!("IBS-tree invariant violated: {e}");
        }
    }

    fn check_registry(&self) -> Result<(), String> {
        let mut scanned: HashMap<u32, Vec<(NodeId, Slot)>> = HashMap::new();
        for (nid, node) in self.arena.iter() {
            for id in node.less.iter() {
                scanned.entry(id.0).or_default().push((nid, Slot::Less));
            }
            for id in node.eq.iter() {
                scanned.entry(id.0).or_default().push((nid, Slot::Eq));
            }
            for id in node.greater.iter() {
                scanned.entry(id.0).or_default().push((nid, Slot::Greater));
            }
        }
        let normalize =
            |m: &HashMap<u32, Vec<(NodeId, Slot)>>| -> HashMap<u32, HashSet<(u32, u8)>> {
                m.iter()
                    .filter(|(_, v)| !v.is_empty())
                    .map(|(&id, v)| {
                        (
                            id,
                            v.iter()
                                .map(|&(n, s)| {
                                    (
                                        n.0,
                                        match s {
                                            Slot::Less => 0u8,
                                            Slot::Eq => 1,
                                            Slot::Greater => 2,
                                        },
                                    )
                                })
                                .collect(),
                        )
                    })
                    .collect()
            };
        let from_scan = normalize(&scanned);
        let from_registry = normalize(&self.placements);
        if from_scan != from_registry {
            return Err(format!(
                "placement registry out of sync: scan={from_scan:?} registry={from_registry:?}"
            ));
        }
        for id in scanned.keys() {
            if !self.intervals.contains_key(id) {
                return Err(format!("marks exist for unknown interval #{id}"));
            }
        }
        Ok(())
    }

    fn check_universal(&self) -> Result<(), String> {
        let expect: HashSet<u32> = self
            .intervals
            .iter()
            .filter(|(_, iv)| iv.lo().value().is_none() && iv.hi().value().is_none())
            .map(|(&id, _)| id)
            .collect();
        let got: HashSet<u32> = self.universal.iter().map(|i| i.0).collect();
        if expect != got {
            return Err(format!(
                "universal list mismatch: expected {expect:?}, got {got:?}"
            ));
        }
        if self.universal.len() != got.len() {
            return Err("universal list contains duplicates".into());
        }
        Ok(())
    }

    fn check_structure_and_marks(&self) -> Result<(), String> {
        struct Frame<K> {
            node: NodeId,
            lo_fence: Option<K>,
            hi_fence: Option<K>,
            inherited: Vec<IntervalId>,
        }

        let mut live_nodes = 0usize;
        let mut stack: Vec<Frame<K>> = Vec::new();
        if !self.root_id().is_null() {
            stack.push(Frame {
                node: self.root_id(),
                lo_fence: None,
                hi_fence: None,
                inherited: Vec::new(),
            });
        } else if !self.arena.is_empty() {
            return Err("null root but arena has live nodes".into());
        }

        while let Some(f) = stack.pop() {
            live_nodes += 1;
            let n = self.node(f.node);

            // BST order via fences.
            if let Some(lo) = &f.lo_fence {
                if n.value <= *lo {
                    return Err(format!(
                        "BST violation: value {:?} not above fence {:?}",
                        n.value, lo
                    ));
                }
            }
            if let Some(hi) = &f.hi_fence {
                if n.value >= *hi {
                    return Err(format!(
                        "BST violation: value {:?} not below fence {:?}",
                        n.value, hi
                    ));
                }
            }

            // Height / balance bookkeeping.
            let hl = self.height_of(n.left);
            let hr = self.height_of(n.right);
            if n.height != 1 + hl.max(hr) {
                return Err(format!(
                    "stale height at {:?}: stored {}, children {}/{}",
                    n.value, n.height, hl, hr
                ));
            }
            if self.mode() == BalanceMode::Avl && (hl as i64 - hr as i64).abs() > 1 {
                return Err(format!(
                    "AVL balance violated at {:?}: child heights {}/{}",
                    n.value, hl, hr
                ));
            }

            // Mark soundness.
            for id in n.eq.iter() {
                let iv = self
                    .intervals
                    .get(&id.0)
                    .ok_or_else(|| format!("= mark for unknown {id}"))?;
                if !iv.contains(&n.value) {
                    return Err(format!(
                        "unsound = mark: {id} ({iv:?}) does not contain {:?}",
                        n.value
                    ));
                }
            }
            for id in n.less.iter() {
                let iv = self
                    .intervals
                    .get(&id.0)
                    .ok_or_else(|| format!("< mark for unknown {id}"))?;
                if !iv.covers_open_range(f.lo_fence.as_ref(), Some(&n.value)) {
                    return Err(format!(
                        "unsound < mark: {id} ({iv:?}) does not cover ({:?}, {:?})",
                        f.lo_fence, n.value
                    ));
                }
            }
            for id in n.greater.iter() {
                let iv = self
                    .intervals
                    .get(&id.0)
                    .ok_or_else(|| format!("> mark for unknown {id}"))?;
                if !iv.covers_open_range(Some(&n.value), f.hi_fence.as_ref()) {
                    return Err(format!(
                        "unsound > mark: {id} ({iv:?}) does not cover ({:?}, {:?})",
                        n.value, f.hi_fence
                    ));
                }
            }

            // Completeness at the node value: a query for exactly this
            // value collects `inherited ∪ eq` and must see every
            // containing interval exactly once.
            let mut collected: Vec<IntervalId> = f.inherited.clone();
            collected.extend(n.eq.iter());
            collected.extend_from_slice(&self.universal);
            let mut sorted = collected.clone();
            sorted.sort_unstable();
            if sorted.windows(2).any(|w| w[0] == w[1]) {
                return Err(format!(
                    "query path to {:?} collects a duplicate mark: {sorted:?}",
                    n.value
                ));
            }
            let expected: HashSet<u32> = self
                .intervals
                .iter()
                .filter(|(_, iv)| iv.contains(&n.value))
                .map(|(&id, _)| id)
                .collect();
            let got: HashSet<u32> = sorted.iter().map(|i| i.0).collect();
            if expected != got {
                return Err(format!(
                    "incomplete match at value {:?}: expected {expected:?}, collected {got:?}",
                    n.value
                ));
            }

            // Completeness at null positions: each gap's collected set
            // must equal the intervals covering the whole gap.
            for (child, gap_lo, gap_hi, slot) in [
                (
                    n.left,
                    f.lo_fence.clone(),
                    Some(n.value.clone()),
                    Slot::Less,
                ),
                (
                    n.right,
                    Some(n.value.clone()),
                    f.hi_fence.clone(),
                    Slot::Greater,
                ),
            ] {
                let mut inherited = f.inherited.clone();
                match slot {
                    Slot::Less => inherited.extend(n.less.iter()),
                    Slot::Greater => inherited.extend(n.greater.iter()),
                    // srclint:allow(no-panic-in-lib): the enclosing loop iterates Less/Greater frames only; Eq is structurally excluded
                    Slot::Eq => unreachable!(),
                }
                if child.is_null() {
                    let expected: HashSet<u32> = self
                        .intervals
                        .iter()
                        .filter(|(_, iv)| iv.covers_open_range(gap_lo.as_ref(), gap_hi.as_ref()))
                        .map(|(&id, _)| id)
                        .collect();
                    let mut got: HashSet<u32> = inherited.iter().map(|i| i.0).collect();
                    for u in &self.universal {
                        got.insert(u.0);
                    }
                    if expected != got {
                        return Err(format!(
                            "incomplete match in gap ({gap_lo:?}, {gap_hi:?}): \
                             expected {expected:?}, collected {got:?}"
                        ));
                    }
                } else {
                    stack.push(Frame {
                        node: child,
                        lo_fence: gap_lo,
                        hi_fence: gap_hi,
                        inherited,
                    });
                }
            }
        }

        if live_nodes != self.arena.len() {
            return Err(format!(
                "arena holds {} live nodes but only {} are reachable",
                self.arena.len(),
                live_nodes
            ));
        }
        Ok(())
    }

    fn check_owners(&self) -> Result<(), String> {
        // Every finite endpoint of every interval must be owned at the
        // node holding that value.
        for (&raw, iv) in &self.intervals {
            let id = IntervalId(raw);
            if let Some(lo) = iv.lo().value() {
                let n = self
                    .find_node(lo)
                    .ok_or_else(|| format!("{id}: no node for lo endpoint {lo:?}"))?;
                if !self.node(n).lo_owners.contains(id) {
                    return Err(format!("{id}: lo endpoint {lo:?} not owned"));
                }
            }
            if let Some(hi) = iv.hi().value() {
                let n = self
                    .find_node(hi)
                    .ok_or_else(|| format!("{id}: no node for hi endpoint {hi:?}"))?;
                if !self.node(n).hi_owners.contains(id) {
                    return Err(format!("{id}: hi endpoint {hi:?} not owned"));
                }
            }
        }
        // Conversely: every owner entry corresponds to a live interval
        // with that endpoint value, and every node is owned by someone
        // (otherwise it should have been deleted).
        for (_, node) in self.arena.iter() {
            if !node.has_owners() {
                return Err(format!("orphan endpoint node {:?}", node.value));
            }
            for id in node.lo_owners.iter() {
                match self.intervals.get(&id.0) {
                    None => return Err(format!("lo owner {id} is not a live interval")),
                    Some(iv) => {
                        if iv.lo().value() != Some(&node.value) {
                            return Err(format!(
                                "lo owner {id} does not start at {:?}",
                                node.value
                            ));
                        }
                    }
                }
            }
            for id in node.hi_owners.iter() {
                match self.intervals.get(&id.0) {
                    None => return Err(format!("hi owner {id} is not a live interval")),
                    Some(iv) => {
                        if iv.hi().value() != Some(&node.value) {
                            return Err(format!("hi owner {id} does not end at {:?}", node.value));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}
