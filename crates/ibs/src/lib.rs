//! # The interval binary search tree (IBS-tree)
//!
//! The primary contribution of Hanson, Chaabouni, Kam & Wang,
//! *"A Predicate Matching Algorithm for Database Rule Systems"*
//! (SIGMOD 1990): a binary search tree over interval endpoints whose
//! nodes carry `<`, `=`, `>` *mark sets*, supporting
//!
//! * **stabbing queries** — all intervals overlapping a point — in
//!   `O(log N + L)`,
//! * **dynamic insertion and deletion** of intervals (the capability the
//!   paper needed and which static segment/interval trees lack),
//! * points, closed, open, half-open, and open-ended (±∞) intervals over
//!   **any totally ordered domain** — no arithmetic is required of the
//!   key type, only `Ord`,
//! * optional **AVL balancing** with the paper's mark-preserving
//!   rotations (§4.3, Figures 5–6).
//!
//! ```
//! use ibs::{BalanceMode, IbsTree};
//! use interval::{Interval, IntervalId};
//!
//! // The seven intervals of the paper's Figure 2.
//! let data = [
//!     Interval::closed(9, 19),     // A
//!     Interval::closed(2, 7),      // B
//!     Interval::closed_open(1, 3), // C = [1,3)
//!     Interval::closed(17, 20),    // D
//!     Interval::closed(7, 12),     // E
//!     Interval::point(18),         // F = [18,18]
//!     Interval::at_most(17),       // G = (-inf,17]
//! ];
//! let mut tree = IbsTree::with_mode(BalanceMode::Avl);
//! for (i, iv) in data.iter().enumerate() {
//!     tree.insert(IntervalId(i as u32), iv.clone()).unwrap();
//! }
//!
//! let mut at18 = tree.stab(&18);
//! at18.sort();
//! assert_eq!(at18, vec![IntervalId(0), IntervalId(3), IntervalId(5)]); // A, D, F
//!
//! tree.remove(IntervalId(0)).unwrap(); // drop A
//! let mut at18 = tree.stab(&18);
//! at18.sort();
//! assert_eq!(at18, vec![IntervalId(3), IntervalId(5)]);
//! ```

#![deny(unreachable_pub)]

mod arena;
mod balance;
mod invariants;
mod marks;
mod observe;
mod overlap;
mod tree;

pub use marks::{MarkSet, Slot};
pub use observe::{StabObserver, StabStats};
pub use tree::{BalanceMode, DuplicateId, IbsTree};

#[cfg(test)]
mod tests {
    use super::*;
    use interval::{Interval, IntervalId};

    fn id(n: u32) -> IntervalId {
        IntervalId(n)
    }

    /// The example interval set from Figure 2 of the paper.
    fn figure2() -> Vec<Interval<i32>> {
        vec![
            Interval::closed(9, 19),     // A [9,19]
            Interval::closed(2, 7),      // B [2,7]
            Interval::closed_open(1, 3), // C [1,3)
            Interval::closed(17, 20),    // D [17,20]
            Interval::closed(7, 12),     // E [7,12]
            Interval::point(18),         // F [18,18]
            Interval::at_most(17),       // G (-inf,17]
        ]
    }

    fn build(mode: BalanceMode) -> IbsTree<i32> {
        let mut t = IbsTree::with_mode(mode);
        for (i, iv) in figure2().into_iter().enumerate() {
            t.insert(id(i as u32), iv).unwrap();
        }
        t.assert_invariants();
        t
    }

    fn stab_sorted(t: &IbsTree<i32>, x: i32) -> Vec<u32> {
        let mut v: Vec<u32> = t.stab(&x).into_iter().map(|i| i.0).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn figure2_stabs() {
        for mode in [BalanceMode::None, BalanceMode::Avl] {
            let t = build(mode);
            // Expected sets computed from the interval definitions.
            assert_eq!(stab_sorted(&t, 0), vec![6]); // G only
            assert_eq!(stab_sorted(&t, 1), vec![2, 6]); // C, G
            assert_eq!(stab_sorted(&t, 2), vec![1, 2, 6]); // B, C, G
            assert_eq!(stab_sorted(&t, 3), vec![1, 6]); // B, G ([1,3) is open at 3)
            assert_eq!(stab_sorted(&t, 7), vec![1, 4, 6]); // B, E, G
            assert_eq!(stab_sorted(&t, 10), vec![0, 4, 6]); // A, E, G
            assert_eq!(stab_sorted(&t, 17), vec![0, 3, 6]); // A, D, G
            assert_eq!(stab_sorted(&t, 18), vec![0, 3, 5]); // A, D, F
            assert_eq!(stab_sorted(&t, 20), vec![3]); // D
            assert_eq!(stab_sorted(&t, 21), Vec::<u32>::new());
        }
    }

    #[test]
    fn empty_tree() {
        let t: IbsTree<i32> = IbsTree::new();
        assert!(t.is_empty());
        assert_eq!(t.stab(&5), vec![]);
        assert_eq!(t.height(), 0);
        assert_eq!(t.marker_count(), 0);
        t.assert_invariants();
    }

    #[test]
    fn single_point() {
        let mut t = IbsTree::new();
        t.insert(id(9), Interval::point(42)).unwrap();
        t.assert_invariants();
        assert_eq!(stab_sorted(&t, 42), vec![9]);
        assert_eq!(stab_sorted(&t, 41), Vec::<u32>::new());
        assert_eq!(stab_sorted(&t, 43), Vec::<u32>::new());
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.remove(id(9)).unwrap(), Interval::point(42));
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 0);
        t.assert_invariants();
    }

    #[test]
    fn duplicate_id_rejected() {
        let mut t = IbsTree::new();
        t.insert(id(1), Interval::closed(1, 2)).unwrap();
        assert_eq!(
            t.insert(id(1), Interval::closed(3, 4)),
            Err(DuplicateId(id(1)))
        );
        // The original interval is untouched.
        assert_eq!(t.get(id(1)), Some(&Interval::closed(1, 2)));
    }

    #[test]
    fn remove_unknown_is_none() {
        let mut t: IbsTree<i32> = IbsTree::new();
        assert_eq!(t.remove(id(7)), None);
    }

    #[test]
    fn universal_interval() {
        let mut t = IbsTree::new();
        t.insert(id(0), Interval::unbounded()).unwrap();
        t.insert(id(1), Interval::closed(5, 10)).unwrap();
        t.assert_invariants();
        assert_eq!(stab_sorted(&t, -1000), vec![0]);
        assert_eq!(stab_sorted(&t, 7), vec![0, 1]);
        t.remove(id(0)).unwrap();
        t.assert_invariants();
        assert_eq!(stab_sorted(&t, -1000), Vec::<u32>::new());
    }

    #[test]
    fn open_ended_intervals() {
        let mut t = IbsTree::new();
        t.insert(id(0), Interval::at_least(10)).unwrap(); // [10, inf)
        t.insert(id(1), Interval::less_than(10)).unwrap(); // (-inf, 10)
        t.insert(id(2), Interval::greater_than(10)).unwrap(); // (10, inf)
        t.assert_invariants();
        assert_eq!(stab_sorted(&t, 9), vec![1]);
        assert_eq!(stab_sorted(&t, 10), vec![0]);
        assert_eq!(stab_sorted(&t, 11), vec![0, 2]);
        assert_eq!(stab_sorted(&t, i32::MAX), vec![0, 2]);
        assert_eq!(stab_sorted(&t, i32::MIN), vec![1]);
    }

    #[test]
    fn shared_endpoints() {
        // The paper: "the IBS-tree can directly accommodate multiple
        // intervals with the same lower bound".
        let mut t = IbsTree::new();
        t.insert(id(0), Interval::closed(5, 10)).unwrap();
        t.insert(id(1), Interval::closed(5, 20)).unwrap();
        t.insert(id(2), Interval::closed_open(5, 10)).unwrap();
        t.assert_invariants();
        assert_eq!(stab_sorted(&t, 5), vec![0, 1, 2]);
        assert_eq!(stab_sorted(&t, 10), vec![0, 1]);
        // Removing one sharer must not delete the shared endpoint node.
        t.remove(id(0)).unwrap();
        t.assert_invariants();
        assert_eq!(stab_sorted(&t, 5), vec![1, 2]);
        assert_eq!(stab_sorted(&t, 10), vec![1]);
        t.remove(id(2)).unwrap();
        t.remove(id(1)).unwrap();
        t.assert_invariants();
        assert_eq!(t.node_count(), 0);
    }

    #[test]
    fn sorted_insertion_stays_balanced_in_avl_mode() {
        let mut t = IbsTree::with_mode(BalanceMode::Avl);
        for i in 0..256 {
            t.insert(id(i), Interval::point(i as i32)).unwrap();
        }
        t.assert_invariants();
        // 256 nodes: AVL height is at most ~1.44 log2(257) ≈ 11.6.
        assert!(t.height() <= 12, "height {} too large", t.height());
        for i in 0..256 {
            assert_eq!(stab_sorted(&t, i), vec![i as u32]);
        }
    }

    #[test]
    fn sorted_insertion_degenerates_without_balancing() {
        let mut t = IbsTree::with_mode(BalanceMode::None);
        for i in 0..64 {
            t.insert(id(i), Interval::point(i as i32)).unwrap();
        }
        t.assert_invariants();
        assert_eq!(t.height(), 64, "unbalanced sorted insert is a chain");
    }

    #[test]
    fn nested_intervals() {
        let mut t = IbsTree::new();
        for i in 0..50u32 {
            let k = i as i32;
            t.insert(id(i), Interval::closed(-k, k)).unwrap();
        }
        t.assert_invariants();
        // 0 is inside all 50; 25 is inside [−25,25] .. [−49,49].
        assert_eq!(t.stab(&0).len(), 50);
        assert_eq!(t.stab(&25).len(), 25);
        assert_eq!(t.stab(&49).len(), 1);
        assert_eq!(t.stab(&50).len(), 0);
        // Peel from the inside out.
        for i in 0..50u32 {
            t.remove(id(i)).unwrap();
            t.assert_invariants();
            assert_eq!(t.stab(&0).len(), 49 - i as usize);
        }
    }

    #[test]
    fn disjoint_intervals_use_linear_markers() {
        // §5.1: "when intervals in the tree do not overlap, only O(N)
        // markers are placed in the tree".
        let mut t = IbsTree::new();
        let n = 512u32;
        for i in 0..n {
            let base = (i as i32) * 10;
            t.insert(id(i), Interval::closed(base, base + 5)).unwrap();
        }
        t.assert_invariants();
        let markers = t.marker_count();
        assert!(
            markers <= 4 * n as usize,
            "disjoint intervals placed {markers} markers for {n} intervals"
        );
    }

    #[test]
    fn interleaved_insert_remove() {
        let mut t = IbsTree::new();
        for round in 0..20u32 {
            for i in 0..30u32 {
                let k = ((i * 37 + round * 11) % 100) as i32;
                t.insert(
                    id(round * 100 + i),
                    Interval::closed(k, k + ((i % 7) as i32)),
                )
                .unwrap();
            }
            t.assert_invariants();
            for i in 0..15u32 {
                t.remove(id(round * 100 + i * 2)).unwrap();
            }
            t.assert_invariants();
        }
        assert_eq!(t.len(), 20 * 15);
    }

    #[test]
    fn string_keys() {
        let mut t: IbsTree<String> = IbsTree::new();
        t.insert(id(0), Interval::closed("b".into(), "m".into()))
            .unwrap();
        t.insert(id(1), Interval::at_least("k".into())).unwrap();
        t.assert_invariants();
        assert_eq!(t.stab(&"c".to_string()), vec![id(0)]);
        let mut v = t.stab(&"kk".to_string());
        v.sort();
        assert_eq!(v, vec![id(0), id(1)]);
        assert_eq!(t.stab(&"z".to_string()), vec![id(1)]);
    }

    #[test]
    fn observed_stab_counts_work_and_agrees_with_plain_stab() {
        for mode in [BalanceMode::None, BalanceMode::Avl] {
            let mut t = build(mode);
            t.insert(id(7), Interval::unbounded()).unwrap();
            for x in -5..25 {
                let mut plain = Vec::new();
                t.stab_into(&x, &mut plain);
                let mut observed = Vec::new();
                let mut stats = StabStats::default();
                t.stab_into_observed(&x, &mut observed, &mut stats);
                assert_eq!(plain, observed, "at {x}");
                // Every reported id was scanned as a mark, and the
                // search path never exceeds the tree height.
                assert_eq!(stats.marks_scanned, observed.len() as u64, "at {x}");
                assert_eq!(
                    stats.less_hits + stats.eq_hits + stats.greater_hits + stats.universal_hits,
                    stats.marks_scanned,
                    "at {x}"
                );
                assert_eq!(stats.universal_hits, 1, "at {x}");
                assert!(stats.nodes_visited <= t.height() as u64, "at {x}");
            }
        }
    }

    #[test]
    fn stab_count_matches_stab() {
        let t = build(BalanceMode::Avl);
        for x in -5..25 {
            assert_eq!(t.stab_count(&x), t.stab(&x).len(), "at {x}");
        }
    }

    #[test]
    fn clone_is_independent() {
        let mut a = build(BalanceMode::Avl);
        let b = a.clone();
        a.remove(id(0)).unwrap();
        assert!(!a.contains_id(id(0)));
        assert!(b.contains_id(id(0)));
        b.assert_invariants();
    }

    #[test]
    fn iter_yields_all() {
        let t = build(BalanceMode::Avl);
        let mut ids: Vec<u32> = t.iter().map(|(i, _)| i.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5, 6]);
    }
}
