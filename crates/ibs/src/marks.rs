//! Mark sets: the `<`, `=`, `>` slots of IBS-tree nodes.
//!
//! The paper's analysis (§5.1) assumes mark sets are "maintained using
//! auxiliary binary search trees" so that membership and update cost
//! `O(log N)`. We use sorted vectors with binary search instead: identical
//! asymptotics for lookup, and far better constants at the set sizes that
//! occur in practice (mark sets hold `O(log N)` ids on average). This is
//! the classic small-collection substitution from the performance guide.

use interval::IntervalId;

/// Which of a node's three mark slots a mark lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// The `<` slot: the interval covers every value that would be
    /// inserted into the node's left subtree.
    Less,
    /// The `=` slot: the interval contains the node's value.
    Eq,
    /// The `>` slot: the interval covers every value that would be
    /// inserted into the node's right subtree.
    Greater,
}

impl std::fmt::Display for Slot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Slot::Less => write!(f, "<"),
            Slot::Eq => write!(f, "="),
            Slot::Greater => write!(f, ">"),
        }
    }
}

/// A sorted, duplicate-free set of interval identifiers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MarkSet {
    ids: Vec<IntervalId>,
}

impl MarkSet {
    /// An empty set.
    pub const fn new() -> Self {
        MarkSet { ids: Vec::new() }
    }

    /// Inserts `id`; returns `true` if it was not already present.
    pub fn insert(&mut self, id: IntervalId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(_) => false,
            Err(pos) => {
                self.ids.insert(pos, id);
                true
            }
        }
    }

    /// Removes `id`; returns `true` if it was present.
    pub fn remove(&mut self, id: IntervalId) -> bool {
        match self.ids.binary_search(&id) {
            Ok(pos) => {
                self.ids.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Membership test.
    pub fn contains(&self, id: IntervalId) -> bool {
        self.ids.binary_search(&id).is_ok()
    }

    /// Number of marks in the set.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = IntervalId> + '_ {
        self.ids.iter().copied()
    }

    /// The ids as a slice (sorted ascending).
    pub fn as_slice(&self) -> &[IntervalId] {
        &self.ids
    }

    /// Appends all ids to `out` (used on the stab-query hot path: one
    /// extend per visited node, no per-id branching).
    #[inline]
    pub fn extend_into(&self, out: &mut Vec<IntervalId>) {
        out.extend_from_slice(&self.ids);
    }

    /// Removes every id and returns them (used when dismantling a node).
    pub fn drain_all(&mut self) -> Vec<IntervalId> {
        std::mem::take(&mut self.ids)
    }
}

impl FromIterator<IntervalId> for MarkSet {
    fn from_iter<T: IntoIterator<Item = IntervalId>>(iter: T) -> Self {
        let mut ids: Vec<IntervalId> = iter.into_iter().collect();
        ids.sort_unstable();
        ids.dedup();
        MarkSet { ids }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> IntervalId {
        IntervalId(n)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = MarkSet::new();
        assert!(s.insert(id(5)));
        assert!(s.insert(id(1)));
        assert!(s.insert(id(3)));
        assert!(!s.insert(id(3)), "duplicate insert is a no-op");
        assert_eq!(s.len(), 3);
        assert!(s.contains(id(1)));
        assert!(!s.contains(id(2)));
        assert!(s.remove(id(3)));
        assert!(!s.remove(id(3)));
        assert_eq!(s.as_slice(), &[id(1), id(5)]);
    }

    #[test]
    fn stays_sorted() {
        let mut s = MarkSet::new();
        for n in [9, 2, 7, 4, 0, 11] {
            s.insert(id(n));
        }
        let v: Vec<u32> = s.iter().map(|i| i.0).collect();
        assert_eq!(v, vec![0, 2, 4, 7, 9, 11]);
    }

    #[test]
    fn from_iter_dedups() {
        let s: MarkSet = [id(3), id(1), id(3), id(2)].into_iter().collect();
        assert_eq!(s.as_slice(), &[id(1), id(2), id(3)]);
    }

    #[test]
    fn extend_into_appends() {
        let s: MarkSet = [id(2), id(1)].into_iter().collect();
        let mut out = vec![id(9)];
        s.extend_into(&mut out);
        assert_eq!(out, vec![id(9), id(1), id(2)]);
    }
}
