//! Stab instrumentation: the countable work of §5's analysis.
//!
//! The paper prices a stabbing query by the endpoint nodes visited on
//! the search path and the marks collected along it. [`StabObserver`]
//! exposes exactly those events; the default observer is `()`, whose
//! empty inline methods monomorphize [`IbsTree::stab_into_observed`]
//! back into the uninstrumented loop, so the hot path pays nothing for
//! the hook's existence.
//!
//! [`IbsTree::stab_into_observed`]: crate::IbsTree::stab_into_observed

use crate::marks::Slot;

/// Receives the work events of one (or more) stabbing queries.
pub trait StabObserver {
    /// An endpoint node on the search path was visited (one key
    /// comparison).
    fn visit_node(&mut self);

    /// A mark slot on the path was collected; `marks` is how many
    /// interval marks it contributed.
    fn collect(&mut self, slot: Slot, marks: usize);

    /// The universal list — intervals `(-inf, +inf)`, reported
    /// unconditionally before the descent — contributed `marks` hits.
    fn universal(&mut self, marks: usize) {
        let _ = marks;
    }
}

/// The no-op observer: compiles away entirely.
impl StabObserver for () {
    #[inline(always)]
    fn visit_node(&mut self) {}

    #[inline(always)]
    fn collect(&mut self, _slot: Slot, _marks: usize) {}
}

/// A ready-made counting observer: per-slot hit counts plus the two
/// §5.2 work terms (nodes visited, marks scanned).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StabStats {
    /// Endpoint nodes visited (key comparisons on the search path).
    pub nodes_visited: u64,
    /// Total marks collected across all slots (incl. universal).
    pub marks_scanned: u64,
    /// Marks collected from `<` slots.
    pub less_hits: u64,
    /// Marks collected from `=` slots.
    pub eq_hits: u64,
    /// Marks collected from `>` slots.
    pub greater_hits: u64,
    /// Universal intervals reported unconditionally.
    pub universal_hits: u64,
}

impl StabObserver for StabStats {
    #[inline]
    fn visit_node(&mut self) {
        self.nodes_visited += 1;
    }

    #[inline]
    fn collect(&mut self, slot: Slot, marks: usize) {
        let marks = marks as u64;
        self.marks_scanned += marks;
        match slot {
            Slot::Less => self.less_hits += marks,
            Slot::Eq => self.eq_hits += marks,
            Slot::Greater => self.greater_hits += marks,
        }
    }

    #[inline]
    fn universal(&mut self, marks: usize) {
        self.marks_scanned += marks as u64;
        self.universal_hits += marks as u64;
    }
}
