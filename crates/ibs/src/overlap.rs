//! Interval-overlap queries: all stored intervals that share at least
//! one point with a query interval.
//!
//! Not part of the paper's API (the rule-matching problem only needs
//! point stabs), but a natural extension for the conclusion's "other
//! applications that deal with geometric data": range invalidation,
//! window queries, and rule analysis ("which predicates could fire for
//! salaries between 20k and 30k?").
//!
//! Strategy: build a candidate superset from (a) a stab at the query's
//! low anchor value — catching every interval that starts at or before
//! the query and reaches into it — and (b) the `lo_owners` of every
//! endpoint node whose value falls in the query's closed hull — catching
//! every interval that starts inside the query; then filter the
//! candidates with the exact [`Interval::overlaps`] test. Cost is
//! `O(log N + K + L)` where `K` is the number of endpoint nodes in the
//! query range.

use crate::arena::NodeId;
use crate::tree::IbsTree;
use interval::{Interval, IntervalId, Lower};

impl<K: Ord + Clone> IbsTree<K> {
    /// Returns the ids of all stored intervals overlapping `query`, in
    /// unspecified order (each id exactly once).
    pub fn stab_interval(&self, query: &Interval<K>) -> Vec<IntervalId> {
        let mut out = Vec::new();
        self.stab_interval_into(query, &mut out);
        out
    }

    /// As [`IbsTree::stab_interval`], appending into a caller-owned
    /// buffer.
    pub fn stab_interval_into(&self, query: &Interval<K>, out: &mut Vec<IntervalId>) {
        let from = out.len();

        // (a) Everything alive at the query's low anchor.
        match query.lo() {
            Lower::Inclusive(a) | Lower::Exclusive(a) => {
                self.stab_into(a, out);
            }
            Lower::Unbounded => {
                // The query reaches -inf: every interval unbounded below
                // overlaps it, as does anything starting inside; the
                // range scan below covers starters, this covers the
                // rest. (A stab at "the leftmost point" has no anchor
                // value to use.)
                out.extend_from_slice(&self.universal);
                for (id, iv) in self.iter() {
                    if iv.lo().value().is_none() {
                        out.push(id);
                    }
                }
            }
        }

        // (b) Every interval that *starts* within the query's closed
        // hull. Scanning the hull inclusively over-collects at most the
        // boundary cases that the exact filter removes.
        let lo_anchor = query.lo().value();
        let hi_anchor = query.hi().value();
        self.collect_lo_owners_in_hull(self.root_id(), lo_anchor, hi_anchor, out);

        // Exact filter + dedupe.
        let tail = &mut out[from..];
        tail.sort_unstable();
        let mut keep = from;
        let mut prev: Option<IntervalId> = None;
        for i in from..out.len() {
            let id = out[i];
            if prev == Some(id) {
                continue;
            }
            prev = Some(id);
            // srclint:allow(no-panic-in-lib): candidate ids were read out of the tree's own mark sets under the same borrow
            let iv = self.get(id).expect("candidate came from the tree");
            if iv.overlaps(query) {
                out[keep] = id;
                keep += 1;
            }
        }
        out.truncate(keep);
    }

    /// Collects `lo_owners` of all nodes with `lo <= value <= hi`
    /// (missing bound = unbounded on that side).
    fn collect_lo_owners_in_hull(
        &self,
        node: NodeId,
        lo: Option<&K>,
        hi: Option<&K>,
        out: &mut Vec<IntervalId>,
    ) {
        if node.is_null() {
            return;
        }
        let n = self.node(node);
        let above_lo = lo.is_none_or(|l| &n.value >= l);
        let below_hi = hi.is_none_or(|h| &n.value <= h);
        if above_lo {
            self.collect_lo_owners_in_hull(n.left, lo, hi, out);
        }
        if above_lo && below_hi {
            n.lo_owners.extend_into(out);
        }
        if below_hi {
            self.collect_lo_owners_in_hull(n.right, lo, hi, out);
        }
    }

    /// Counts the stored intervals overlapping `query`.
    pub fn stab_interval_count(&self, query: &Interval<K>) -> usize {
        let mut out = Vec::new();
        self.stab_interval_into(query, &mut out);
        out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> IntervalId {
        IntervalId(n)
    }

    fn sample_tree() -> IbsTree<i32> {
        let mut t = IbsTree::new();
        t.insert(id(0), Interval::closed(9, 19)).unwrap();
        t.insert(id(1), Interval::closed(2, 7)).unwrap();
        t.insert(id(2), Interval::closed_open(1, 3)).unwrap();
        t.insert(id(3), Interval::closed(17, 20)).unwrap();
        t.insert(id(4), Interval::closed(7, 12)).unwrap();
        t.insert(id(5), Interval::point(18)).unwrap();
        t.insert(id(6), Interval::at_most(17)).unwrap();
        t
    }

    fn sorted(mut v: Vec<IntervalId>) -> Vec<u32> {
        v.sort_unstable();
        v.into_iter().map(|i| i.0).collect()
    }

    #[test]
    fn overlap_query_matches_naive() {
        let t = sample_tree();
        let queries = [
            Interval::closed(0, 25),
            Interval::closed(8, 10),
            Interval::open(7, 9),
            Interval::point(18),
            Interval::at_least(19),
            Interval::less_than(2),
            Interval::closed(21, 30),
            Interval::unbounded(),
        ];
        for q in queries {
            let want: Vec<u32> = {
                let mut v: Vec<u32> = t
                    .iter()
                    .filter(|(_, iv)| iv.overlaps(&q))
                    .map(|(i, _)| i.0)
                    .collect();
                v.sort_unstable();
                v
            };
            assert_eq!(sorted(t.stab_interval(&q)), want, "query {q}");
            assert_eq!(t.stab_interval_count(&q), want.len(), "count {q}");
        }
    }

    #[test]
    fn point_query_agrees_with_stab() {
        let t = sample_tree();
        for x in -2..25 {
            assert_eq!(
                sorted(t.stab_interval(&Interval::point(x))),
                sorted(t.stab(&x)),
                "at {x}"
            );
        }
    }

    #[test]
    fn no_duplicates_under_shared_endpoints() {
        let mut t = IbsTree::new();
        for i in 0..20 {
            t.insert(id(i), Interval::closed(5, 10 + i as i32)).unwrap();
        }
        let hits = t.stab_interval(&Interval::closed(0, 100));
        assert_eq!(hits.len(), 20);
        let mut s = hits.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 20, "duplicates in overlap result");
    }

    #[test]
    fn unbounded_below_query() {
        let mut t = IbsTree::new();
        t.insert(id(0), Interval::at_most(5)).unwrap();
        t.insert(id(1), Interval::at_least(100)).unwrap();
        t.insert(id(2), Interval::unbounded()).unwrap();
        assert_eq!(sorted(t.stab_interval(&Interval::less_than(0))), vec![0, 2]);
        assert_eq!(sorted(t.stab_interval(&Interval::at_least(50))), vec![1, 2]);
    }
}
