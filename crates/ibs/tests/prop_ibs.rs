//! Property-based differential testing of the IBS-tree.
//!
//! Strategy: generate arbitrary sequences of insert/remove operations
//! over the full interval family (points, closed/open/half-open, open-
//! ended) on a small integer key space (so collisions, shared endpoints,
//! and heavy overlap are common), replay them against both the IBS-tree
//! and a naive `Vec` oracle, and after every operation
//!
//! * verify every structural invariant (BST order, AVL balance, mark
//!   soundness, mark completeness at every node and gap, registry and
//!   ownership accounting), and
//! * compare stabbing results against the oracle for every key in the
//!   domain.

use ibs::{BalanceMode, IbsTree};
use interval::{Interval, IntervalId, Lower, Upper};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(Interval<i32>),
    /// Remove the k-th live interval (mod current size).
    Remove(usize),
}

fn arb_interval(max_key: i32) -> impl Strategy<Value = Interval<i32>> {
    let key = 0..=max_key;
    prop_oneof![
        // Points are weighted up: the paper's workloads use a = 0, .5, 1
        // fractions of equality predicates.
        2 => key.clone().prop_map(Interval::point),
        4 => (key.clone(), key.clone(), any::<(bool, bool)>()).prop_filter_map(
            "non-empty",
            |(a, b, (lo_incl, hi_incl))| {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                let lo = if lo_incl { Lower::Inclusive(a) } else { Lower::Exclusive(a) };
                let hi = if hi_incl { Upper::Inclusive(b) } else { Upper::Exclusive(b) };
                Interval::new(lo, hi).ok()
            }
        ),
        1 => key.clone().prop_map(Interval::at_least),
        1 => key.clone().prop_map(Interval::greater_than),
        1 => key.clone().prop_map(Interval::at_most),
        1 => key.prop_map(Interval::less_than),
        1 => Just(Interval::unbounded()),
    ]
}

fn arb_ops(max_key: i32, len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => arb_interval(max_key).prop_map(Op::Insert),
            2 => (0usize..64).prop_map(Op::Remove),
        ],
        1..len,
    )
}

/// Replays `ops` on a tree in `mode`, checking invariants and the oracle
/// after every step.
fn run_differential(ops: Vec<Op>, mode: BalanceMode, max_key: i32) {
    let mut tree: IbsTree<i32> = IbsTree::with_mode(mode);
    let mut oracle: Vec<(IntervalId, Interval<i32>)> = Vec::new();
    let mut next_id = 0u32;

    for op in ops {
        match op {
            Op::Insert(iv) => {
                let id = IntervalId(next_id);
                next_id += 1;
                tree.insert(id, iv.clone()).expect("fresh id");
                oracle.push((id, iv));
            }
            Op::Remove(k) => {
                if oracle.is_empty() {
                    continue;
                }
                let (id, iv) = oracle.remove(k % oracle.len());
                let got = tree.remove(id).expect("oracle id must be present");
                assert_eq!(got, iv, "removed interval mismatch");
            }
        }
        tree.assert_invariants();
        assert_eq!(tree.len(), oracle.len());

        // Exhaustive stab cross-check over the key domain plus sentinels
        // outside it.
        for x in -1..=(max_key + 1) {
            let mut got = tree.stab(&x);
            got.sort_unstable();
            let mut want: Vec<IntervalId> = oracle
                .iter()
                .filter(|(_, iv)| iv.contains(&x))
                .map(|&(id, _)| id)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "stab({x}) diverged from oracle");
            assert_eq!(tree.stab_count(&x), want.len(), "stab_count({x})");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn differential_avl_dense_keys(ops in arb_ops(15, 40)) {
        run_differential(ops, BalanceMode::Avl, 15);
    }

    #[test]
    fn differential_unbalanced_dense_keys(ops in arb_ops(15, 40)) {
        run_differential(ops, BalanceMode::None, 15);
    }

    #[test]
    fn differential_avl_sparse_keys(ops in arb_ops(100, 30)) {
        run_differential(ops, BalanceMode::Avl, 100);
    }

    #[test]
    fn marker_count_matches_registry(ops in arb_ops(20, 40)) {
        let mut tree: IbsTree<i32> = IbsTree::new();
        let mut live = Vec::new();
        let mut next = 0u32;
        for op in ops {
            match op {
                Op::Insert(iv) => {
                    let id = IntervalId(next);
                    next += 1;
                    tree.insert(id, iv).unwrap();
                    live.push(id);
                }
                Op::Remove(k) if !live.is_empty() => {
                    let id = live.remove(k % live.len());
                    tree.remove(id).unwrap();
                }
                Op::Remove(_) => {}
            }
        }
        // marker_count is a full arena scan; it must agree with what the
        // invariant checker already proved about the registry.
        tree.assert_invariants();
        prop_assert!(tree.marker_count() <= tree.len() * (2 * (tree.height() as usize + 1)));
    }
}

/// Deterministic stress: a large mixed workload in both modes, with
/// invariants checked at intervals (full checks every step would be
/// quadratic in test time).
#[test]
fn stress_mixed_workload() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    for mode in [BalanceMode::Avl, BalanceMode::None] {
        let mut rng = StdRng::seed_from_u64(0x1b5);
        let mut tree: IbsTree<i32> = IbsTree::with_mode(mode);
        let mut oracle: Vec<(IntervalId, Interval<i32>)> = Vec::new();
        let mut next = 0u32;

        for step in 0..2_000 {
            if oracle.is_empty() || rng.gen_bool(0.6) {
                let a = rng.gen_range(0..1_000);
                let len = rng.gen_range(0..120);
                let iv = match rng.gen_range(0..5) {
                    0 => Interval::point(a),
                    1 => Interval::closed(a, a + len),
                    2 => Interval::closed_open(a, a + len + 1),
                    3 => Interval::at_least(a),
                    _ => Interval::less_than(a),
                };
                let id = IntervalId(next);
                next += 1;
                tree.insert(id, iv.clone()).unwrap();
                oracle.push((id, iv));
            } else {
                let k = rng.gen_range(0..oracle.len());
                let (id, _) = oracle.remove(k);
                tree.remove(id).unwrap();
            }
            if step % 200 == 199 {
                tree.assert_invariants();
            }
            // Spot-check a few random stabs every step.
            for _ in 0..3 {
                let x = rng.gen_range(-10..1_200);
                let mut got = tree.stab(&x);
                got.sort_unstable();
                let mut want: Vec<IntervalId> = oracle
                    .iter()
                    .filter(|(_, iv)| iv.contains(&x))
                    .map(|&(id, _)| id)
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "mode {mode:?}, step {step}, stab({x})");
            }
        }
        tree.assert_invariants();
    }
}

/// Drain a heavily overlapping set down to empty, exercising the
/// predecessor-swap deletion path with repairs.
#[test]
fn drain_to_empty() {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(7);
    let mut tree: IbsTree<i32> = IbsTree::new();
    let n = 300u32;
    for i in 0..n {
        let a = (i as i32 * 13) % 500;
        tree.insert(IntervalId(i), Interval::closed(a, a + 200))
            .unwrap();
    }
    tree.assert_invariants();
    let mut ids: Vec<u32> = (0..n).collect();
    ids.shuffle(&mut rng);
    for (k, i) in ids.into_iter().enumerate() {
        tree.remove(IntervalId(i)).unwrap();
        if k % 25 == 0 {
            tree.assert_invariants();
        }
    }
    tree.assert_invariants();
    assert!(tree.is_empty());
    assert_eq!(tree.node_count(), 0);
    assert_eq!(tree.marker_count(), 0);
}

/// A churn step: structural mutation or a read, so that stabs are
/// interleaved *between* mutations rather than replayed after each one.
#[derive(Debug, Clone)]
enum ChurnOp {
    Insert(Interval<i32>),
    /// Remove the k-th live interval (mod current size).
    Remove(usize),
    Stab(i32),
    StabInterval(Interval<i32>),
}

fn arb_churn_ops(max_key: i32, len: usize) -> impl Strategy<Value = Vec<ChurnOp>> {
    prop::collection::vec(
        prop_oneof![
            3 => arb_interval(max_key).prop_map(ChurnOp::Insert),
            2 => (0usize..64).prop_map(ChurnOp::Remove),
            2 => (-1..=max_key + 1).prop_map(ChurnOp::Stab),
            1 => arb_interval(max_key).prop_map(ChurnOp::StabInterval),
        ],
        1..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mode-differential churn: the same interleaved insert/remove/stab
    /// sequence drives an AVL-balanced tree and an unbalanced tree in
    /// lockstep. Balancing is an implementation detail — every read must
    /// agree between the two modes (and with the `Vec` oracle), and both
    /// trees must hold every structural invariant after every op.
    #[test]
    fn churn_avl_agrees_with_unbalanced(ops in arb_churn_ops(25, 60)) {
        let mut avl: IbsTree<i32> = IbsTree::with_mode(BalanceMode::Avl);
        let mut flat: IbsTree<i32> = IbsTree::with_mode(BalanceMode::None);
        let mut oracle: Vec<(IntervalId, Interval<i32>)> = Vec::new();
        let mut next = 0u32;

        for op in ops {
            match op {
                ChurnOp::Insert(iv) => {
                    let id = IntervalId(next);
                    next += 1;
                    avl.insert(id, iv.clone()).expect("fresh id (avl)");
                    flat.insert(id, iv.clone()).expect("fresh id (flat)");
                    oracle.push((id, iv));
                }
                ChurnOp::Remove(k) => {
                    if oracle.is_empty() {
                        continue;
                    }
                    let (id, iv) = oracle.remove(k % oracle.len());
                    prop_assert_eq!(avl.remove(id).expect("live id (avl)"), iv.clone());
                    prop_assert_eq!(flat.remove(id).expect("live id (flat)"), iv);
                }
                ChurnOp::Stab(x) => {
                    let mut a = avl.stab(&x);
                    let mut f = flat.stab(&x);
                    a.sort_unstable();
                    f.sort_unstable();
                    let mut want: Vec<IntervalId> = oracle
                        .iter()
                        .filter(|(_, iv)| iv.contains(&x))
                        .map(|&(id, _)| id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(&a, &f, "stab({}) diverged between modes", x);
                    prop_assert_eq!(a, want, "stab({}) diverged from oracle", x);
                    prop_assert_eq!(avl.stab_count(&x), flat.stab_count(&x));
                }
                ChurnOp::StabInterval(q) => {
                    let mut a = avl.stab_interval(&q);
                    let mut f = flat.stab_interval(&q);
                    a.sort_unstable();
                    f.sort_unstable();
                    prop_assert_eq!(a, f, "stab_interval({}) diverged between modes", q);
                }
            }
            // Every structural invariant, in both modes, after every op.
            avl.assert_invariants();
            flat.assert_invariants();
            prop_assert_eq!(avl.len(), oracle.len());
            prop_assert_eq!(flat.len(), oracle.len());
        }
    }

    /// Interval-overlap queries agree with the naive definition on
    /// arbitrary stored sets and arbitrary query intervals.
    #[test]
    fn stab_interval_matches_naive(
        stored in prop::collection::vec(arb_interval(20), 0..30),
        queries in prop::collection::vec(arb_interval(20), 1..10),
    ) {
        let mut tree: IbsTree<i32> = IbsTree::new();
        let mut oracle = Vec::new();
        for (i, iv) in stored.into_iter().enumerate() {
            let id = IntervalId(i as u32);
            tree.insert(id, iv.clone()).unwrap();
            oracle.push((id, iv));
        }
        for q in queries {
            let mut got = tree.stab_interval(&q);
            got.sort_unstable();
            let mut want: Vec<IntervalId> = oracle
                .iter()
                .filter(|(_, iv)| iv.overlaps(&q))
                .map(|&(id, _)| id)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want, "query {}", q);
        }
    }
}
