//! Deep targeted tests for IBS-tree edge cases the property suite can
//! reach only probabilistically: predecessor-swap deletion under marks,
//! AVL delete rebalancing chains, extreme keys, duplicate intervals,
//! and churn that cycles arena slots.

use ibs::{BalanceMode, IbsTree};
use interval::{Interval, IntervalId};

fn id(n: u32) -> IntervalId {
    IntervalId(n)
}

/// Deleting an internal endpoint node with two children forces the
/// predecessor swap; surrounding intervals' marks must survive.
#[test]
fn predecessor_swap_with_live_marks() {
    // Unbalanced mode so the shape is deterministic: insert 50 first
    // (root), then endpoints on both sides.
    let mut t = IbsTree::with_mode(BalanceMode::None);
    t.insert(id(0), Interval::closed(50, 50)).unwrap(); // root node 50
    t.insert(id(1), Interval::closed(20, 80)).unwrap(); // spans the root
    t.insert(id(2), Interval::closed(10, 30)).unwrap();
    t.insert(id(3), Interval::closed(40, 60)).unwrap();
    t.insert(id(4), Interval::closed(45, 55)).unwrap();
    t.assert_invariants();

    // Node 50 has two children; removing interval 0 releases the value
    // 50 only if no other interval is anchored there (none are).
    t.remove(id(0)).unwrap();
    t.assert_invariants();
    assert!(t.find_value_absent(50));

    // All other intervals still answer correctly across the domain.
    for x in 0..100 {
        let mut got = t.stab(&x);
        got.sort_unstable();
        let mut want: Vec<IntervalId> = t
            .iter()
            .filter(|(_, iv)| iv.contains(&x))
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "after swap at {x}");
    }
}

/// Helper trait impl via extension: check a value is no longer a node.
trait FindAbsent {
    fn find_value_absent(&self, v: i32) -> bool;
}

impl FindAbsent for IbsTree<i32> {
    fn find_value_absent(&self, v: i32) -> bool {
        // The public surface has no direct node lookup; infer from the
        // ownership invariant: if any interval still used the value as
        // an endpoint the node would exist, and node_count tracks it.
        !self
            .iter()
            .any(|(_, iv)| iv.lo().value() == Some(&v) || iv.hi().value() == Some(&v))
    }
}

/// AVL deletions that shorten a subtree must rebalance on the way up;
/// removing a whole flank in order exercises repeated rotations.
#[test]
fn avl_delete_rebalancing_chain() {
    let mut t = IbsTree::with_mode(BalanceMode::Avl);
    let n = 512u32;
    for i in 0..n {
        t.insert(id(i), Interval::point(i as i32)).unwrap();
    }
    // Remove the left half ascending: each removal unbalances toward
    // the right flank.
    for i in 0..n / 2 {
        t.remove(id(i)).unwrap();
        if i % 37 == 0 {
            t.assert_invariants();
        }
    }
    t.assert_invariants();
    assert!(t.height() <= 12, "height {} after rebalance", t.height());
    for i in n / 2..n {
        assert_eq!(t.stab(&(i as i32)), vec![id(i)]);
    }
}

/// Extreme keys must not overflow anything (ordering only, no
/// arithmetic is ever done on keys).
#[test]
fn extreme_keys() {
    let mut t = IbsTree::new();
    t.insert(id(0), Interval::closed(i64::MIN, i64::MIN + 1))
        .unwrap();
    t.insert(id(1), Interval::closed(i64::MAX - 1, i64::MAX))
        .unwrap();
    t.insert(id(2), Interval::closed(i64::MIN, i64::MAX))
        .unwrap();
    t.insert(id(3), Interval::point(0)).unwrap();
    t.assert_invariants();
    let mut hits = t.stab(&i64::MIN);
    hits.sort_unstable();
    assert_eq!(hits, vec![id(0), id(2)]);
    let mut hits = t.stab(&i64::MAX);
    hits.sort_unstable();
    assert_eq!(hits, vec![id(1), id(2)]);
    let mut hits = t.stab(&0);
    hits.sort_unstable();
    assert_eq!(hits, vec![id(2), id(3)]);
}

/// Many copies of the *same* interval under different ids: every copy
/// is reported, removal affects only its own id.
#[test]
fn duplicate_intervals_distinct_ids() {
    let mut t = IbsTree::new();
    for i in 0..64 {
        t.insert(id(i), Interval::closed(10, 20)).unwrap();
    }
    t.assert_invariants();
    assert_eq!(t.stab(&15).len(), 64);
    assert_eq!(t.node_count(), 2, "shared endpoints collapse to 2 nodes");
    for i in (0..64).step_by(2) {
        t.remove(id(i)).unwrap();
    }
    t.assert_invariants();
    assert_eq!(t.stab(&15).len(), 32);
    assert_eq!(t.node_count(), 2);
    for i in (1..64).step_by(2) {
        t.remove(id(i)).unwrap();
    }
    assert_eq!(t.node_count(), 0);
    t.assert_invariants();
}

/// Re-using ids after removal must behave like fresh ids.
#[test]
fn id_reuse_after_removal() {
    let mut t = IbsTree::new();
    t.insert(id(7), Interval::closed(1, 5)).unwrap();
    t.remove(id(7)).unwrap();
    t.insert(id(7), Interval::closed(100, 200)).unwrap();
    t.assert_invariants();
    assert_eq!(t.stab(&3), vec![]);
    assert_eq!(t.stab(&150), vec![id(7)]);
    assert_eq!(t.get(id(7)), Some(&Interval::closed(100, 200)));
}

/// Alternating growth and shrink cycles the arena free list through
/// many generations.
#[test]
fn arena_slot_churn() {
    let mut t = IbsTree::new();
    for gen in 0u32..30 {
        for i in 0..40 {
            let base = ((gen * 40 + i) % 97) as i32 * 3;
            t.insert(id(gen * 40 + i), Interval::closed(base, base + 10))
                .unwrap();
        }
        for i in 0..40 {
            if (i + gen) % 3 != 0 {
                t.remove(id(gen * 40 + i)).unwrap();
            }
        }
        t.assert_invariants();
    }
    assert!(!t.is_empty());
}

/// The overlap query and the point stab agree along every boundary of a
/// pathological shared-endpoint pile-up.
#[test]
fn overlap_query_boundary_pileup() {
    let mut t = IbsTree::new();
    // 10 intervals all ending at 50 with varying openness, 10 starting
    // at 50.
    for i in 0..10u32 {
        let lo = 40 - i as i32;
        if i % 2 == 0 {
            t.insert(id(i), Interval::closed(lo, 50)).unwrap();
        } else {
            t.insert(id(i), Interval::closed_open(lo, 50)).unwrap();
        }
    }
    for i in 10..20u32 {
        let hi = 60 + i as i32;
        if i % 2 == 0 {
            t.insert(id(i), Interval::closed(50, hi)).unwrap();
        } else {
            t.insert(id(i), Interval::open_closed(50, hi)).unwrap();
        }
    }
    t.assert_invariants();

    // At exactly 50: closed-ending + closed-starting only.
    let at50 = t.stab(&50);
    assert_eq!(at50.len(), 10, "5 closed-ending + 5 closed-starting");

    // Overlap query across the boundary sees everything.
    assert_eq!(t.stab_interval(&Interval::closed(49, 51)).len(), 20);
    // Just below the boundary: only the left pile.
    assert_eq!(t.stab_interval(&Interval::closed(45, 49)).len(), 10);
}

/// Zero-width queries outside any interval return nothing, even when
/// the tree is large.
#[test]
fn misses_on_large_tree() {
    let mut t = IbsTree::new();
    for i in 0..1000u32 {
        let base = i as i32 * 10;
        t.insert(id(i), Interval::closed(base, base + 4)).unwrap();
    }
    for i in 0..1000 {
        let gap = i * 10 + 7; // between [base, base+4] blocks
        assert_eq!(t.stab(&gap), vec![], "gap {gap}");
    }
}
