//! # R-tree (Guttman 1984)
//!
//! The multi-dimensional index the paper evaluates as a predicate-
//! indexing baseline (§2.4) and as a 1-D dynamic interval comparator
//! (§4.1). Predicates become k-dimensional rectangles (one dimension per
//! relation attribute); a new tuple is a point query.
//!
//! The paper's critique — low-dimensional "slice" predicates over
//! high-dimensional relations overlap extensively and index poorly — is
//! reproduced quantitatively by the `ablation_matchers` benchmark; the
//! inability to represent open intervals natively shows up here as
//! world-bound clamping (see [`WORLD`]).
//!
//! ```
//! use rtree::{Rect, RTree};
//! use interval::IntervalId;
//!
//! let mut t = RTree::new(2);
//! t.insert(IntervalId(0), Rect::new(vec![0.0, 0.0], vec![10.0, 10.0]));
//! t.insert(IntervalId(1), Rect::new(vec![5.0, 5.0], vec![15.0, 15.0]));
//! let mut hits = t.stab(&[7.0, 7.0]);
//! hits.sort();
//! assert_eq!(hits, vec![IntervalId(0), IntervalId(1)]);
//! ```

#![deny(unreachable_pub)]

mod bulk;
mod rect;
mod tree;

pub use rect::{Rect, WORLD};
pub use tree::{RTree, SplitAlgorithm};

#[cfg(test)]
mod tests {
    use super::*;
    use interval::IntervalId;

    fn id(n: u32) -> IntervalId {
        IntervalId(n)
    }

    #[test]
    fn empty_tree() {
        let t = RTree::new(2);
        assert!(t.is_empty());
        assert_eq!(t.stab(&[1.0, 2.0]), vec![]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn one_dimensional_intervals() {
        for split in [SplitAlgorithm::Linear, SplitAlgorithm::Quadratic] {
            let mut t = RTree::with_split(1, split);
            for i in 0..100u32 {
                let a = (i as f64) * 5.0;
                t.insert(id(i), Rect::new(vec![a], vec![a + 20.0]));
            }
            t.check_invariants().unwrap();
            // Point 50 is inside [a, a+20] for a in {30,35,40,45,50}.
            let mut hits = t.stab(&[50.0]);
            hits.sort();
            assert_eq!(
                hits,
                (6..=10).map(id).collect::<Vec<_>>(),
                "split {split:?}"
            );
        }
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut t = RTree::new(2);
        for i in 0..200u32 {
            let x = ((i * 37) % 100) as f64;
            let y = ((i * 61) % 100) as f64;
            t.insert(id(i), Rect::new(vec![x, y], vec![x + 10.0, y + 10.0]));
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 200);
        for i in 0..200u32 {
            assert!(t.remove(id(i)).is_some(), "remove {i}");
            if i % 20 == 0 {
                t.check_invariants().unwrap();
            }
        }
        assert!(t.is_empty());
        t.check_invariants().unwrap();
        assert_eq!(t.remove(id(0)), None);
    }

    #[test]
    fn stab_matches_naive() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let mut t = RTree::new(3);
        let mut naive: Vec<(IntervalId, Rect)> = Vec::new();
        for i in 0..500u32 {
            let lo: Vec<f64> = (0..3).map(|_| rng.gen_range(0.0..90.0)).collect();
            let hi: Vec<f64> = lo.iter().map(|a| a + rng.gen_range(0.0..30.0)).collect();
            let r = Rect::new(lo, hi);
            t.insert(id(i), r.clone());
            naive.push((id(i), r));
        }
        t.check_invariants().unwrap();
        for _ in 0..200 {
            let p: Vec<f64> = (0..3).map(|_| rng.gen_range(-5.0..125.0)).collect();
            let mut got = t.stab(&p);
            got.sort();
            let mut want: Vec<IntervalId> = naive
                .iter()
                .filter(|(_, r)| r.contains_point(&p))
                .map(|(i, _)| *i)
                .collect();
            want.sort();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn window_search() {
        let mut t = RTree::new(2);
        t.insert(id(0), Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]));
        t.insert(id(1), Rect::new(vec![5.0, 5.0], vec![6.0, 6.0]));
        t.insert(id(2), Rect::new(vec![0.5, 0.5], vec![5.5, 5.5]));
        let mut hits = t.search_window(&Rect::new(vec![0.8, 0.8], vec![2.0, 2.0]));
        hits.sort();
        assert_eq!(hits, vec![id(0), id(2)]);
        assert_eq!(
            t.search_window(&Rect::new(vec![8.0, 8.0], vec![9.0, 9.0])),
            vec![]
        );
    }

    #[test]
    fn mixed_insert_delete_stress() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = RTree::new(2);
        let mut naive: Vec<(IntervalId, Rect)> = Vec::new();
        let mut next = 0u32;
        for step in 0..1_500 {
            if naive.is_empty() || rng.gen_bool(0.6) {
                let lo: Vec<f64> = (0..2).map(|_| rng.gen_range(0.0..100.0)).collect();
                let hi: Vec<f64> = lo.iter().map(|a| a + rng.gen_range(0.0..20.0)).collect();
                let r = Rect::new(lo, hi);
                t.insert(id(next), r.clone());
                naive.push((id(next), r));
                next += 1;
            } else {
                let k = rng.gen_range(0..naive.len());
                let (i, r) = naive.swap_remove(k);
                assert_eq!(t.remove(i), Some(r));
            }
            if step % 100 == 99 {
                t.check_invariants().unwrap();
                let p = vec![rng.gen_range(0.0..120.0), rng.gen_range(0.0..120.0)];
                let mut got = t.stab(&p);
                got.sort();
                let mut want: Vec<IntervalId> = naive
                    .iter()
                    .filter(|(_, r)| r.contains_point(&p))
                    .map(|(i, _)| *i)
                    .collect();
                want.sort();
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn open_ended_via_world_bounds() {
        // salary < 20000 on a 2-attribute relation: a slice through the
        // whole age dimension.
        let mut t = RTree::new(2);
        t.insert(
            id(0),
            Rect::new(vec![-WORLD, -WORLD], vec![20_000.0, WORLD]),
        );
        // age > 50 slice.
        t.insert(id(1), Rect::new(vec![-WORLD, 50.0], vec![WORLD, WORLD]));
        let mut hits = t.stab(&[12_000.0, 61.0]);
        hits.sort();
        assert_eq!(hits, vec![id(0), id(1)]);
        assert_eq!(t.stab(&[25_000.0, 40.0]), vec![]);
    }

    #[test]
    #[should_panic(expected = "duplicate rectangle id")]
    fn duplicate_id_panics() {
        let mut t = RTree::new(1);
        t.insert(id(0), Rect::new(vec![0.0], vec![1.0]));
        t.insert(id(0), Rect::new(vec![2.0], vec![3.0]));
    }
}
