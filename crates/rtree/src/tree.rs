//! Guttman's R-tree [Gut84], the paper's §2.4 baseline for predicate
//! indexing and a §4.1 comparator for 1-D interval indexing.
//!
//! Dynamic insert (ChooseLeaf → split → AdjustTree), delete (FindLeaf →
//! CondenseTree with orphan reinsertion), and point/window search, with
//! both of Guttman's classic node-split heuristics selectable.

use crate::rect::Rect;
use interval::IntervalId;
use std::collections::HashMap;

/// Which of Guttman's node-split algorithms to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitAlgorithm {
    /// Linear-cost split: pick seeds by maximum normalized separation.
    Linear,
    /// Quadratic-cost split: pick seeds by maximum dead area, distribute
    /// by maximal preference. Guttman's recommended default.
    #[default]
    Quadratic,
}

const MAX_ENTRIES: usize = 8;
const MIN_ENTRIES: usize = 3;

#[derive(Debug, Clone)]
enum NodeKind {
    Leaf(Vec<(IntervalId, Rect)>),
    Internal(Vec<(usize, Rect)>),
}

#[derive(Debug, Clone)]
struct Node {
    kind: NodeKind,
}

impl Node {
    fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Leaf(e) => e.len(),
            NodeKind::Internal(e) => e.len(),
        }
    }

    fn mbr(&self) -> Option<Rect> {
        let mut it: Box<dyn Iterator<Item = &Rect>> = match &self.kind {
            NodeKind::Leaf(e) => Box::new(e.iter().map(|(_, r)| r)),
            NodeKind::Internal(e) => Box::new(e.iter().map(|(_, r)| r)),
        };
        let first = it.next()?.clone();
        Some(it.fold(first, |acc, r| acc.union(r)))
    }
}

/// An R-tree mapping [`IntervalId`]s to n-dimensional rectangles.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Option<Node>>,
    free: Vec<usize>,
    root: usize,
    /// Height of the tree: 1 = root is a leaf.
    height: usize,
    dims: usize,
    split: SplitAlgorithm,
    by_id: HashMap<u32, Rect>,
}

impl RTree {
    /// An empty tree over `dims` dimensions with the quadratic split.
    pub fn new(dims: usize) -> Self {
        Self::with_split(dims, SplitAlgorithm::Quadratic)
    }

    /// An empty tree with an explicit split algorithm.
    pub fn with_split(dims: usize, split: SplitAlgorithm) -> Self {
        let root_node = Node {
            kind: NodeKind::Leaf(Vec::new()),
        };
        RTree {
            nodes: vec![Some(root_node)],
            free: Vec::new(),
            root: 0,
            height: 1,
            dims,
            split,
            by_id: HashMap::new(),
        }
    }

    /// Number of indexed rectangles.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The rectangle stored under `id`.
    pub fn get(&self, id: IntervalId) -> Option<&Rect> {
        self.by_id.get(&id.0)
    }

    fn node(&self, ix: usize) -> &Node {
        self.nodes[ix].as_ref().expect("dangling node")
    }

    fn node_mut(&mut self, ix: usize) -> &mut Node {
        self.nodes[ix].as_mut().expect("dangling node")
    }

    fn alloc(&mut self, node: Node) -> usize {
        if let Some(ix) = self.free.pop() {
            self.nodes[ix] = Some(node);
            ix
        } else {
            self.nodes.push(Some(node));
            self.nodes.len() - 1
        }
    }

    fn dealloc(&mut self, ix: usize) -> Node {
        let n = self.nodes[ix].take().expect("double free");
        self.free.push(ix);
        n
    }

    // ------------------------------------------------------------------
    // Search
    // ------------------------------------------------------------------

    /// All ids whose rectangle contains the point `p`.
    pub fn stab(&self, p: &[f64]) -> Vec<IntervalId> {
        let mut out = Vec::new();
        self.stab_into(p, &mut out);
        out
    }

    /// As [`RTree::stab`], into a caller-owned buffer.
    pub fn stab_into(&self, p: &[f64], out: &mut Vec<IntervalId>) {
        assert_eq!(p.len(), self.dims, "query dimensionality mismatch");
        let mut stack = vec![self.root];
        while let Some(ix) = stack.pop() {
            match &self.node(ix).kind {
                NodeKind::Leaf(entries) => {
                    for (id, r) in entries {
                        if r.contains_point(p) {
                            out.push(*id);
                        }
                    }
                }
                NodeKind::Internal(entries) => {
                    for (child, r) in entries {
                        if r.contains_point(p) {
                            stack.push(*child);
                        }
                    }
                }
            }
        }
    }

    /// All ids whose rectangle intersects the window `w`.
    pub fn search_window(&self, w: &Rect) -> Vec<IntervalId> {
        assert_eq!(w.dims(), self.dims, "window dimensionality mismatch");
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(ix) = stack.pop() {
            match &self.node(ix).kind {
                NodeKind::Leaf(entries) => {
                    for (id, r) in entries {
                        if r.intersects(w) {
                            out.push(*id);
                        }
                    }
                }
                NodeKind::Internal(entries) => {
                    for (child, r) in entries {
                        if r.intersects(w) {
                            stack.push(*child);
                        }
                    }
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Insert
    // ------------------------------------------------------------------

    /// Indexes `rect` under `id`. `id` must be fresh.
    pub fn insert(&mut self, id: IntervalId, rect: Rect) {
        assert_eq!(rect.dims(), self.dims, "rect dimensionality mismatch");
        assert!(
            !self.by_id.contains_key(&id.0),
            "duplicate rectangle id {id}"
        );
        self.by_id.insert(id.0, rect.clone());
        self.insert_at_level(Entry::Leaf(id, rect), 1);
    }

    /// Inserts an entry so that it ends up in a node at `level`
    /// (1 = leaf). Shared by user inserts and CondenseTree reinsertion.
    fn insert_at_level(&mut self, entry: Entry, level: usize) {
        // Choose the path down to `level`.
        let rect = entry.rect().clone();
        let mut path = Vec::new();
        let mut cur = self.root;
        let mut cur_level = self.height;
        while cur_level > level {
            let entries = match &self.node(cur).kind {
                NodeKind::Internal(e) => e,
                NodeKind::Leaf(_) => unreachable!("leaf above target level"),
            };
            // Least enlargement, ties by smallest area.
            let (pos, _) = entries
                .iter()
                .enumerate()
                .min_by(|(_, (_, a)), (_, (_, b))| {
                    let ea = a.enlargement(&rect);
                    let eb = b.enlargement(&rect);
                    ea.partial_cmp(&eb)
                        .unwrap()
                        .then(a.area().partial_cmp(&b.area()).unwrap())
                })
                .expect("internal node has entries");
            path.push((cur, pos));
            cur = entries[pos].0;
            cur_level -= 1;
        }

        // Add to the target node.
        let mut split_off = self.add_entry(cur, entry);

        // AdjustTree: fix MBRs upward, propagating splits.
        for (parent, pos) in path.into_iter().rev() {
            // Refresh the MBR of the modified child.
            let child_ix = match &self.node(parent).kind {
                NodeKind::Internal(e) => e[pos].0,
                NodeKind::Leaf(_) => unreachable!(),
            };
            let mbr = self.node(child_ix).mbr().expect("child not empty");
            match &mut self.node_mut(parent).kind {
                NodeKind::Internal(e) => e[pos].1 = mbr,
                NodeKind::Leaf(_) => unreachable!(),
            }
            if let Some(new_ix) = split_off.take() {
                let r = self.node(new_ix).mbr().expect("split node not empty");
                split_off = self.add_entry(parent, Entry::Child(new_ix, r));
            }
        }

        // Root split: grow the tree.
        if let Some(new_ix) = split_off {
            let old_root = self.root;
            let r1 = self.node(old_root).mbr().expect("root not empty");
            let r2 = self.node(new_ix).mbr().expect("split node not empty");
            let new_root = self.alloc(Node {
                kind: NodeKind::Internal(vec![(old_root, r1), (new_ix, r2)]),
            });
            self.root = new_root;
            self.height += 1;
        }
    }

    /// Adds an entry to a node, splitting if it overflows. Returns the
    /// index of the freshly split-off sibling, if any.
    fn add_entry(&mut self, ix: usize, entry: Entry) -> Option<usize> {
        match (&mut self.node_mut(ix).kind, entry) {
            (NodeKind::Leaf(e), Entry::Leaf(id, r)) => e.push((id, r)),
            (NodeKind::Internal(e), Entry::Child(c, r)) => e.push((c, r)),
            _ => unreachable!("entry kind does not match node kind"),
        }
        if self.node(ix).len() <= MAX_ENTRIES {
            return None;
        }
        Some(self.split_node(ix))
    }

    /// Splits an overflowing node in place; returns the new sibling.
    fn split_node(&mut self, ix: usize) -> usize {
        match std::mem::replace(&mut self.node_mut(ix).kind, NodeKind::Leaf(Vec::new())) {
            NodeKind::Leaf(entries) => {
                let (a, b) = split_entries(entries, |(_, r)| r, self.split);
                self.node_mut(ix).kind = NodeKind::Leaf(a);
                self.alloc(Node {
                    kind: NodeKind::Leaf(b),
                })
            }
            NodeKind::Internal(entries) => {
                let (a, b) = split_entries(entries, |(_, r)| r, self.split);
                self.node_mut(ix).kind = NodeKind::Internal(a);
                self.alloc(Node {
                    kind: NodeKind::Internal(b),
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Delete
    // ------------------------------------------------------------------

    /// Removes the rectangle stored under `id`.
    pub fn remove(&mut self, id: IntervalId) -> Option<Rect> {
        let rect = self.by_id.remove(&id.0)?;

        // FindLeaf: locate the leaf holding the entry.
        let mut path: Vec<(usize, usize)> = Vec::new(); // (node, entry pos)
        let leaf = self
            .find_leaf(self.root, id, &rect, &mut path)
            .expect("id in map but not in tree");

        // Remove the entry from the leaf.
        match &mut self.node_mut(leaf).kind {
            NodeKind::Leaf(e) => {
                let pos = e.iter().position(|(i, _)| *i == id).expect("entry present");
                e.swap_remove(pos);
            }
            NodeKind::Internal(_) => unreachable!(),
        }

        // CondenseTree: walk up, dropping underfull nodes and collecting
        // their data entries for reinsertion; refresh MBRs. Orphaned
        // subtrees are flattened to leaf entries rather than reinserted
        // at their original level — marginally more reinsert work than
        // Guttman's formulation, but immune to the root shrinking below
        // the orphan's level mid-condense.
        let mut orphans: Vec<(IntervalId, Rect)> = Vec::new();
        let mut child = leaf;
        for (parent, pos) in path.into_iter().rev() {
            if self.node(child).len() < MIN_ENTRIES {
                match &mut self.node_mut(parent).kind {
                    NodeKind::Internal(e) => {
                        e.swap_remove(pos);
                    }
                    NodeKind::Leaf(_) => unreachable!(),
                }
                self.flatten_subtree(child, &mut orphans);
            } else {
                let mbr = self.node(child).mbr().expect("non-underfull node");
                match &mut self.node_mut(parent).kind {
                    NodeKind::Internal(e) => {
                        let p = e.iter().position(|(c, _)| *c == child).expect("linked");
                        e[p].1 = mbr;
                    }
                    NodeKind::Leaf(_) => unreachable!(),
                }
            }
            child = parent;
        }

        // Shrink the root if it became a lone-child internal node.
        while self.height > 1 {
            let only = match &self.node(self.root).kind {
                NodeKind::Internal(e) if e.len() == 1 => Some(e[0].0),
                _ => None,
            };
            match only {
                Some(c) => {
                    self.dealloc(self.root);
                    self.root = c;
                    self.height -= 1;
                }
                None => break,
            }
        }

        // Reinsert orphaned data entries.
        for (i, r) in orphans {
            self.insert_at_level(Entry::Leaf(i, r), 1);
        }
        Some(rect)
    }

    /// Deallocates a subtree, draining its data entries into `out`.
    fn flatten_subtree(&mut self, ix: usize, out: &mut Vec<(IntervalId, Rect)>) {
        match self.dealloc(ix).kind {
            NodeKind::Leaf(entries) => out.extend(entries),
            NodeKind::Internal(entries) => {
                for (child, _) in entries {
                    self.flatten_subtree(child, out);
                }
            }
        }
    }

    fn find_leaf(
        &self,
        ix: usize,
        id: IntervalId,
        rect: &Rect,
        path: &mut Vec<(usize, usize)>,
    ) -> Option<usize> {
        match &self.node(ix).kind {
            NodeKind::Leaf(entries) => {
                if entries.iter().any(|(i, _)| *i == id) {
                    Some(ix)
                } else {
                    None
                }
            }
            NodeKind::Internal(entries) => {
                for (pos, (child, r)) in entries.iter().enumerate() {
                    if r.intersects(rect) {
                        path.push((ix, pos));
                        if let Some(leaf) = self.find_leaf(*child, id, rect, path) {
                            return Some(leaf);
                        }
                        path.pop();
                    }
                }
                None
            }
        }
    }

    // ------------------------------------------------------------------
    // Bulk-load support (see `bulk.rs`)
    // ------------------------------------------------------------------

    /// Records an id → rect mapping during bulk load; returns false on
    /// duplicates.
    pub(crate) fn register_bulk_id(&mut self, id: IntervalId, rect: Rect) -> bool {
        self.by_id.insert(id.0, rect).is_none()
    }

    /// Allocates a packed leaf; returns its handle and MBR.
    pub(crate) fn alloc_leaf_for_bulk(
        &mut self,
        entries: Vec<(IntervalId, Rect)>,
    ) -> (usize, Rect) {
        debug_assert!(!entries.is_empty() && entries.len() <= MAX_ENTRIES);
        let node = Node {
            kind: NodeKind::Leaf(entries),
        };
        let mbr = node.mbr().expect("non-empty leaf");
        (self.alloc(node), mbr)
    }

    /// Allocates a packed internal node over child handles; returns its
    /// handle and MBR.
    pub(crate) fn alloc_internal_for_bulk(
        &mut self,
        children: Vec<(usize, Rect)>,
    ) -> (usize, Rect) {
        debug_assert!(!children.is_empty() && children.len() <= MAX_ENTRIES);
        let node = Node {
            kind: NodeKind::Internal(children),
        };
        let mbr = node.mbr().expect("non-empty internal node");
        (self.alloc(node), mbr)
    }

    /// Replaces the (empty) initial root with the packed tree's root.
    pub(crate) fn set_root_for_bulk(&mut self, root: usize, height: usize) {
        let old = self.root;
        debug_assert_eq!(self.node(old).len(), 0, "bulk load into non-empty tree");
        self.dealloc(old);
        self.root = root;
        self.height = height;
    }

    /// Live node count (tests: packing density checks).
    pub fn node_count_for_tests(&self) -> usize {
        self.nodes.iter().flatten().count()
    }

    /// Verifies structural invariants (for tests): entry counts, MBR
    /// accuracy, uniform leaf depth, and id bookkeeping.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = 0usize;
        self.check_node(self.root, self.height, true, &mut seen)?;
        if seen != self.by_id.len() {
            return Err(format!(
                "tree holds {seen} entries but map holds {}",
                self.by_id.len()
            ));
        }
        Ok(())
    }

    fn check_node(
        &self,
        ix: usize,
        level: usize,
        is_root: bool,
        seen: &mut usize,
    ) -> Result<(), String> {
        let n = self.node(ix);
        if !is_root && n.len() < MIN_ENTRIES {
            return Err(format!("underfull node at level {level}: {}", n.len()));
        }
        if n.len() > MAX_ENTRIES {
            return Err(format!("overfull node at level {level}: {}", n.len()));
        }
        match &n.kind {
            NodeKind::Leaf(entries) => {
                if level != 1 {
                    return Err(format!("leaf at level {level}"));
                }
                for (id, r) in entries {
                    let stored = self
                        .by_id
                        .get(&id.0)
                        .ok_or_else(|| format!("leaf entry {id} not in map"))?;
                    if stored != r {
                        return Err(format!("leaf entry {id} rect mismatch"));
                    }
                    *seen += 1;
                }
            }
            NodeKind::Internal(entries) => {
                for (child, r) in entries {
                    let mbr = self
                        .node(*child)
                        .mbr()
                        .ok_or_else(|| "empty child".to_string())?;
                    if &mbr != r {
                        return Err(format!("stale MBR above node {child}"));
                    }
                    self.check_node(*child, level - 1, false, seen)?;
                }
            }
        }
        Ok(())
    }
}

/// An entry being inserted: either a data rectangle or a subtree handle.
enum Entry {
    Leaf(IntervalId, Rect),
    Child(usize, Rect),
}

impl Entry {
    fn rect(&self) -> &Rect {
        match self {
            Entry::Leaf(_, r) | Entry::Child(_, r) => r,
        }
    }
}

/// Splits an overflowing entry list into two groups per Guttman.
fn split_entries<T>(
    mut entries: Vec<T>,
    rect_of: impl Fn(&T) -> &Rect,
    algo: SplitAlgorithm,
) -> (Vec<T>, Vec<T>) {
    debug_assert!(entries.len() > MAX_ENTRIES);
    let (seed_a, seed_b) = match algo {
        SplitAlgorithm::Quadratic => pick_seeds_quadratic(&entries, &rect_of),
        SplitAlgorithm::Linear => pick_seeds_linear(&entries, &rect_of),
    };
    // Remove the higher index first so the lower stays valid.
    let (hi, lo) = if seed_a > seed_b {
        (seed_a, seed_b)
    } else {
        (seed_b, seed_a)
    };
    let e_hi = entries.swap_remove(hi);
    let e_lo = entries.swap_remove(lo);
    let mut rect_a = rect_of(&e_lo).clone();
    let mut rect_b = rect_of(&e_hi).clone();
    let mut group_a = vec![e_lo];
    let mut group_b = vec![e_hi];

    while let Some(next) = entries.pop() {
        // Force assignment if a group must absorb the remainder to reach
        // the minimum fill.
        let remaining = entries.len() + 1;
        if group_a.len() + remaining <= MIN_ENTRIES {
            rect_a.expand(rect_of(&next));
            group_a.push(next);
            continue;
        }
        if group_b.len() + remaining <= MIN_ENTRIES {
            rect_b.expand(rect_of(&next));
            group_b.push(next);
            continue;
        }
        let r = rect_of(&next);
        let da = rect_a.enlargement(r);
        let db = rect_b.enlargement(r);
        let to_a = da < db
            || (da == db && rect_a.area() < rect_b.area())
            || (da == db && rect_a.area() == rect_b.area() && group_a.len() <= group_b.len());
        if to_a {
            rect_a.expand(r);
            group_a.push(next);
        } else {
            rect_b.expand(r);
            group_b.push(next);
        }
    }
    (group_a, group_b)
}

/// Quadratic PickSeeds: the pair wasting the most area together.
fn pick_seeds_quadratic<T>(entries: &[T], rect_of: &impl Fn(&T) -> &Rect) -> (usize, usize) {
    let mut best = (0, 1);
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            let ri = rect_of(&entries[i]);
            let rj = rect_of(&entries[j]);
            let waste = ri.union(rj).area() - ri.area() - rj.area();
            if waste > worst_waste {
                worst_waste = waste;
                best = (i, j);
            }
        }
    }
    best
}

/// Linear PickSeeds: the pair with greatest normalized separation along
/// any dimension.
fn pick_seeds_linear<T>(entries: &[T], rect_of: &impl Fn(&T) -> &Rect) -> (usize, usize) {
    let dims = rect_of(&entries[0]).dims();
    let mut best = (0, 1);
    let mut best_sep = f64::NEG_INFINITY;
    for d in 0..dims {
        // Entry with highest low side and entry with lowest high side.
        let (mut hi_lo_ix, mut lo_hi_ix) = (0, 0);
        let (mut min_lo, mut max_lo) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut min_hi, mut max_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, e) in entries.iter().enumerate() {
            let r = rect_of(e);
            if r.lo[d] > max_lo {
                max_lo = r.lo[d];
                hi_lo_ix = i;
            }
            min_lo = min_lo.min(r.lo[d]);
            if r.hi[d] < min_hi {
                min_hi = r.hi[d];
                lo_hi_ix = i;
            }
            max_hi = max_hi.max(r.hi[d]);
        }
        let width = (max_hi - min_lo).max(f64::MIN_POSITIVE);
        let sep = (max_lo - min_hi) / width;
        if sep > best_sep && hi_lo_ix != lo_hi_ix {
            best_sep = sep;
            best = (lo_hi_ix, hi_lo_ix);
        }
    }
    best
}
