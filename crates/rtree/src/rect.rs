//! Axis-aligned rectangles for the R-tree.
//!
//! Coordinates are `f64`. Open-ended predicate clauses map to "world
//! bound" coordinates (±[`WORLD`]) rather than ±∞ so that the area and
//! enlargement arithmetic of Guttman's heuristics stays finite — this is
//! a concrete instance of the paper's observation that R-trees "cannot
//! accommodate open intervals" natively (§4.1): we *can* clamp them in,
//! but every open-ended predicate then inflates its page regions to the
//! world bounds, which is exactly what degrades R-tree search on
//! low-dimensional "slice" predicates (§2.4).

/// Stand-in for ±∞ that keeps area arithmetic finite.
pub const WORLD: f64 = 1.0e18;

/// An n-dimensional axis-aligned rectangle (closed box).
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    /// Low corner, one coordinate per dimension.
    pub lo: Vec<f64>,
    /// High corner.
    pub hi: Vec<f64>,
}

impl Rect {
    /// A rectangle from corners. Panics if dimensions mismatch or any
    /// `lo > hi`.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensions differ");
        assert!(
            lo.iter().zip(&hi).all(|(a, b)| a <= b),
            "inverted rectangle"
        );
        Rect { lo, hi }
    }

    /// A degenerate rectangle containing a single point.
    pub fn point(p: Vec<f64>) -> Self {
        Rect {
            lo: p.clone(),
            hi: p,
        }
    }

    /// The rectangle covering the whole (clamped) world in `dims`
    /// dimensions.
    pub fn world(dims: usize) -> Self {
        Rect {
            lo: vec![-WORLD; dims],
            hi: vec![WORLD; dims],
        }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Hyper-volume (product of side lengths).
    pub fn area(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(a, b)| b - a).product()
    }

    /// Does this rectangle contain the point `p` (boundaries included)?
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((a, b), x)| a <= x && x <= b)
    }

    /// Do two rectangles share any point?
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((a1, b1), (a2, b2))| a1 <= b2 && a2 <= b1)
    }

    /// The smallest rectangle covering both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            lo: self
                .lo
                .iter()
                .zip(&other.lo)
                .map(|(a, b)| a.min(*b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(&other.hi)
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }

    /// Grows this rectangle in place to cover `other`.
    pub fn expand(&mut self, other: &Rect) {
        for (a, b) in self.lo.iter_mut().zip(&other.lo) {
            *a = a.min(*b);
        }
        for (a, b) in self.hi.iter_mut().zip(&other.hi) {
            *a = a.max(*b);
        }
    }

    /// How much would the area grow if expanded to cover `other`?
    /// (Guttman's ChooseLeaf criterion.)
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_union() {
        let a = Rect::new(vec![0.0, 0.0], vec![2.0, 3.0]);
        assert_eq!(a.area(), 6.0);
        let b = Rect::new(vec![1.0, 1.0], vec![4.0, 2.0]);
        let u = a.union(&b);
        assert_eq!(u, Rect::new(vec![0.0, 0.0], vec![4.0, 3.0]));
        assert_eq!(a.enlargement(&b), 12.0 - 6.0);
    }

    #[test]
    fn containment_and_intersection() {
        let a = Rect::new(vec![0.0], vec![10.0]);
        assert!(a.contains_point(&[0.0]));
        assert!(a.contains_point(&[10.0]));
        assert!(!a.contains_point(&[10.1]));
        assert!(a.intersects(&Rect::new(vec![10.0], vec![20.0])));
        assert!(!a.intersects(&Rect::new(vec![10.5], vec![20.0])));
        let p = Rect::point(vec![5.0]);
        assert!(a.intersects(&p));
        assert_eq!(p.area(), 0.0);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rejected() {
        Rect::new(vec![1.0], vec![0.0]);
    }

    #[test]
    fn world_is_finite() {
        let w = Rect::world(2);
        assert!(w.area().is_finite());
        assert!(w.contains_point(&[0.0, 1.0e17]));
    }
}
