//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Building an R-tree by repeated insertion produces mediocre page
//! utilization and heavily overlapping regions; STR packing sorts by
//! center coordinate, tiles the entries into near-full nodes, and
//! recurses per dimension. Offered so the §2.4 baseline is compared at
//! its best when the predicate set is known up front (the same courtesy
//! the static segment/interval trees get).

use crate::rect::Rect;
use crate::tree::{RTree, SplitAlgorithm};
use interval::IntervalId;

/// Target entries per packed node (matches the tree's maximum fanout).
const NODE_CAPACITY: usize = 8;

impl RTree {
    /// Builds a packed tree over `items` with STR tiling.
    ///
    /// Ids must be distinct; every rectangle must have `dims`
    /// dimensions. The resulting tree supports the full dynamic API
    /// afterwards.
    pub fn bulk_load(dims: usize, items: Vec<(IntervalId, Rect)>) -> RTree {
        let mut tree = RTree::with_split(dims, SplitAlgorithm::Quadratic);
        if items.is_empty() {
            return tree;
        }
        for (id, rect) in &items {
            assert_eq!(rect.dims(), dims, "rect dimensionality mismatch");
            assert!(
                tree.register_bulk_id(*id, rect.clone()),
                "duplicate rectangle id {id}"
            );
        }

        // Pack leaves.
        let groups = str_tile(items, dims, 0);
        let mut level_nodes: Vec<(usize, Rect)> = groups
            .into_iter()
            .map(|g| tree.alloc_leaf_for_bulk(g))
            .collect();
        let mut height = 1;

        // Pack upper levels until one root remains.
        while level_nodes.len() > 1 {
            let entries: Vec<((usize, Rect), Rect)> = level_nodes
                .into_iter()
                .map(|(ix, r)| ((ix, r.clone()), r))
                .collect();
            // Reuse the tiler by treating child handles as the payload.
            let tiled = str_tile_by(entries, dims, 0);
            level_nodes = tiled
                .into_iter()
                .map(|g| tree.alloc_internal_for_bulk(g))
                .collect();
            height += 1;
        }
        let (root, _) = level_nodes.pop().expect("non-empty input");
        tree.set_root_for_bulk(root, height);
        tree
    }
}

/// Tiles `(id, rect)` items into groups of at most [`NODE_CAPACITY`].
fn str_tile(
    items: Vec<(IntervalId, Rect)>,
    dims: usize,
    dim: usize,
) -> Vec<Vec<(IntervalId, Rect)>> {
    let entries: Vec<((IntervalId, Rect), Rect)> = items
        .into_iter()
        .map(|(id, r)| ((id, r.clone()), r))
        .collect();
    str_tile_by(entries, dims, dim)
}

/// Generic STR tiler: each entry carries its payload and its rectangle.
fn str_tile_by<T>(mut entries: Vec<(T, Rect)>, dims: usize, dim: usize) -> Vec<Vec<T>> {
    let n = entries.len();
    if n <= NODE_CAPACITY {
        return vec![entries.into_iter().map(|(t, _)| t).collect()];
    }
    if dim + 1 >= dims {
        // Last dimension: sort and chop into balanced groups (sizes
        // differ by at most one, so no group falls under the minimum
        // fill — a naive `chunks(M)` leaves undersized remainders).
        sort_by_center(&mut entries, dim);
        let groups = n.div_ceil(NODE_CAPACITY);
        return balanced_chunks(entries, groups)
            .into_iter()
            .map(|g| g.into_iter().map(|(t, _)| t).collect())
            .collect();
    }
    // Interior dimension: split into ~((n/M)^(1/(d-dim))) balanced slabs
    // and recurse on the next dimension inside each slab.
    let leaves_needed = n.div_ceil(NODE_CAPACITY) as f64;
    let remaining_dims = (dims - dim) as f64;
    let slabs = (leaves_needed.powf(1.0 / remaining_dims).ceil() as usize).max(1);
    sort_by_center(&mut entries, dim);
    balanced_chunks(entries, slabs)
        .into_iter()
        .flat_map(|slab| str_tile_by(slab, dims, dim + 1))
        .collect()
}

/// Splits `items` into exactly `groups` runs whose sizes differ by at
/// most one.
fn balanced_chunks<T>(items: Vec<T>, groups: usize) -> Vec<Vec<T>> {
    let n = items.len();
    let groups = groups.clamp(1, n.max(1));
    let base = n / groups;
    let extra = n % groups;
    let mut out = Vec::with_capacity(groups);
    let mut it = items.into_iter();
    for g in 0..groups {
        let size = base + usize::from(g < extra);
        out.push(it.by_ref().take(size).collect());
    }
    debug_assert!(it.next().is_none());
    out
}

fn sort_by_center<T>(entries: &mut [(T, Rect)], dim: usize) {
    entries.sort_by(|(_, a), (_, b)| {
        let ca = a.lo[dim] + a.hi[dim];
        let cb = b.lo[dim] + b.hi[dim];
        ca.partial_cmp(&cb).expect("finite coordinates")
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn id(n: u32) -> IntervalId {
        IntervalId(n)
    }

    fn random_rects(n: u32, dims: usize, seed: u64) -> Vec<(IntervalId, Rect)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let lo: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..100.0)).collect();
                let hi: Vec<f64> = lo.iter().map(|a| a + rng.gen_range(0.0..15.0)).collect();
                (id(i), Rect::new(lo, hi))
            })
            .collect()
    }

    #[test]
    fn bulk_load_matches_incremental_queries() {
        let items = random_rects(800, 2, 5);
        let bulk = RTree::bulk_load(2, items.clone());
        bulk.check_invariants().unwrap();
        let mut incr = RTree::new(2);
        for (i, r) in &items {
            incr.insert(*i, r.clone());
        }
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..300 {
            let p = vec![rng.gen_range(-5.0..120.0), rng.gen_range(-5.0..120.0)];
            let mut a = bulk.stab(&p);
            let mut b = incr.stab(&p);
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bulk_tree_remains_dynamic() {
        let items = random_rects(200, 1, 9);
        let mut t = RTree::bulk_load(1, items.clone());
        // Delete half, insert new ones, still consistent.
        for i in 0..100 {
            t.remove(id(i)).unwrap();
        }
        for i in 200..250u32 {
            t.insert(id(i), Rect::new(vec![i as f64], vec![i as f64 + 5.0]));
        }
        t.check_invariants().unwrap();
        assert_eq!(t.len(), 150);
    }

    #[test]
    fn bulk_load_small_and_empty() {
        let t = RTree::bulk_load(2, vec![]);
        assert!(t.is_empty());
        t.check_invariants().unwrap();

        let t = RTree::bulk_load(1, vec![(id(0), Rect::new(vec![1.0], vec![2.0]))]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.stab(&[1.5]), vec![id(0)]);
        t.check_invariants().unwrap();
    }

    #[test]
    fn bulk_load_utilization_beats_half() {
        let items = random_rects(1000, 3, 17);
        let t = RTree::bulk_load(3, items);
        t.check_invariants().unwrap();
        // STR packs nodes nearly full: 1000 entries at capacity 8 needs
        // 125 leaves; allow a little slack for slab remainders.
        assert!(
            t.node_count_for_tests() <= 160,
            "packed tree has {} nodes",
            t.node_count_for_tests()
        );
    }

    #[test]
    #[should_panic(expected = "duplicate rectangle id")]
    fn bulk_duplicate_id_panics() {
        let r = Rect::new(vec![0.0], vec![1.0]);
        RTree::bulk_load(1, vec![(id(0), r.clone()), (id(0), r)]);
    }
}
