//! One differential harness over every interval index in the workspace.
//!
//! For arbitrary interval sets (and, for dynamic structures, arbitrary
//! insert/remove schedules), every structure must report exactly the
//! same stabbing results as the naive list at every key in the domain.
//! This realizes the comparison the paper proposes in §6 ("implement
//! several different techniques for dynamically indexing intervals ...
//! and then compare") at the correctness level; the benchmark harness
//! does the time/space level.

use altindex::{
    BulkBuild, CenteredIntervalTree, DynamicStabIndex, IntervalSkipList, IntervalTreap,
    NaiveIntervalList, SegmentTree, StabIndex,
};
use ibs::IbsTree;
use interval::{Interval, IntervalId, Lower, Upper};
use proptest::prelude::*;

fn arb_interval(max_key: i32) -> impl Strategy<Value = Interval<i32>> {
    let key = 0..=max_key;
    prop_oneof![
        2 => key.clone().prop_map(Interval::point),
        4 => (key.clone(), key.clone(), any::<(bool, bool)>()).prop_filter_map(
            "non-empty",
            |(a, b, (lo_incl, hi_incl))| {
                let (a, b) = if a <= b { (a, b) } else { (b, a) };
                let lo = if lo_incl { Lower::Inclusive(a) } else { Lower::Exclusive(a) };
                let hi = if hi_incl { Upper::Inclusive(b) } else { Upper::Exclusive(b) };
                Interval::new(lo, hi).ok()
            }
        ),
        1 => key.clone().prop_map(Interval::at_least),
        1 => key.clone().prop_map(Interval::greater_than),
        1 => key.clone().prop_map(Interval::at_most),
        1 => key.prop_map(Interval::less_than),
        1 => Just(Interval::unbounded()),
    ]
}

fn sorted(mut v: Vec<IntervalId>) -> Vec<IntervalId> {
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Static structures: build once, stab everywhere.
    #[test]
    fn static_structures_agree(ivs in prop::collection::vec(arb_interval(30), 0..40)) {
        let items: Vec<(IntervalId, Interval<i32>)> = ivs
            .into_iter()
            .enumerate()
            .map(|(i, iv)| (IntervalId(i as u32), iv))
            .collect();
        let oracle = NaiveIntervalList::build(items.clone());
        let seg = SegmentTree::build(items.clone());
        let cit = CenteredIntervalTree::build(items.clone());
        let ibs: IbsTree<i32> = BulkBuild::build(items.clone());
        let treap = IntervalTreap::build(items.clone());
        let skip = IntervalSkipList::build(items);

        for x in -2..=32 {
            let want = sorted(oracle.stab(&x));
            prop_assert_eq!(sorted(seg.stab(&x)), want.clone(), "segment tree at {}", x);
            prop_assert_eq!(sorted(cit.stab(&x)), want.clone(), "interval tree at {}", x);
            prop_assert_eq!(sorted(StabIndex::stab(&ibs, &x)), want.clone(), "IBS at {}", x);
            prop_assert_eq!(sorted(treap.stab(&x)), want.clone(), "treap at {}", x);
            prop_assert_eq!(sorted(skip.stab(&x)), want, "skip list at {}", x);
        }
    }

    /// Dynamic structures: arbitrary interleavings of inserts/removes.
    #[test]
    fn dynamic_structures_agree(
        ops in prop::collection::vec((arb_interval(25), any::<bool>(), 0usize..32), 1..50)
    ) {
        let mut oracle = NaiveIntervalList::new();
        let mut ibs: IbsTree<i32> = IbsTree::new();
        let mut treap = IntervalTreap::new();
        let mut skip = IntervalSkipList::new();
        let mut live: Vec<IntervalId> = Vec::new();
        let mut next = 0u32;

        for (iv, is_insert, pick) in ops {
            if is_insert || live.is_empty() {
                let id = IntervalId(next);
                next += 1;
                DynamicStabIndex::insert(&mut oracle, id, iv.clone());
                DynamicStabIndex::insert(&mut ibs, id, iv.clone());
                DynamicStabIndex::insert(&mut treap, id, iv.clone());
                DynamicStabIndex::insert(&mut skip, id, iv);
                live.push(id);
            } else {
                let id = live.remove(pick % live.len());
                let a = DynamicStabIndex::remove(&mut oracle, id);
                let b = DynamicStabIndex::remove(&mut ibs, id);
                let c = DynamicStabIndex::remove(&mut treap, id);
                let d = DynamicStabIndex::remove(&mut skip, id);
                prop_assert_eq!(a.clone(), b);
                prop_assert_eq!(a.clone(), c);
                prop_assert_eq!(a, d);
            }
            skip.assert_invariants();
            for x in -1..=27 {
                let want = sorted(oracle.stab(&x));
                prop_assert_eq!(sorted(StabIndex::stab(&ibs, &x)), want.clone(), "IBS at {}", x);
                prop_assert_eq!(sorted(treap.stab(&x)), want.clone(), "treap at {}", x);
                prop_assert_eq!(sorted(skip.stab(&x)), want, "skip list at {}", x);
            }
        }
    }
}

/// Deterministic high-volume agreement check (larger than proptest cases
/// can affordably be).
#[test]
fn bulk_agreement_large() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(99);
    let items: Vec<(IntervalId, Interval<i32>)> = (0..2_000u32)
        .map(|i| {
            let a = rng.gen_range(0..10_000);
            let iv = match i % 4 {
                0 => Interval::point(a),
                1 => Interval::closed(a, a + rng.gen_range(0..1_000)),
                2 => Interval::closed_open(a, a + rng.gen_range(1..1_000)),
                _ => Interval::open_closed(a, a + rng.gen_range(1..1_000)),
            };
            (IntervalId(i), iv)
        })
        .collect();

    let oracle = NaiveIntervalList::build(items.clone());
    let seg = SegmentTree::build(items.clone());
    let cit = CenteredIntervalTree::build(items.clone());
    let ibs: IbsTree<i32> = BulkBuild::build(items.clone());
    let treap = IntervalTreap::build(items.clone());
    let skip = IntervalSkipList::build(items);

    for _ in 0..500 {
        let x = rng.gen_range(-100..11_100);
        let want = sorted(oracle.stab(&x));
        assert_eq!(sorted(seg.stab(&x)), want, "segment tree at {x}");
        assert_eq!(sorted(cit.stab(&x)), want, "interval tree at {x}");
        assert_eq!(sorted(StabIndex::stab(&ibs, &x)), want, "IBS at {x}");
        assert_eq!(sorted(treap.stab(&x)), want, "treap at {x}");
        assert_eq!(sorted(skip.stab(&x)), want, "skip list at {x}");
    }
}
