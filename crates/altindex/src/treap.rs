//! A dynamic augmented interval treap.
//!
//! This is the workspace's stand-in for McCreight's priority search tree,
//! which §4.1 discusses as the main dynamic alternative to the IBS-tree:
//! a randomized BST keyed on `(lower bound, id)` — duplicate lower
//! bounds, the PST's sore spot the paper calls out, are handled natively
//! by the id tie-break — where every node is augmented with the maximum
//! upper bound in its subtree. A stabbing query prunes any subtree whose
//! max upper bound cannot admit the query point and any right spine whose
//! keys already exceed it, giving `O(log N)` expected traversal plus
//! output-proportional reporting on the workloads reproduced here (the
//! true PST's `O(log N + L)` worst case is not load-bearing for any
//! figure; see DESIGN.md §6).
//!
//! Expected `O(log N)` insert/delete via treap rotations; `O(N)` space.

use crate::common::{BulkBuild, DynamicStabIndex, StabIndex};
use interval::{Interval, IntervalId, Lower, Upper};
use std::collections::HashMap;

/// An optional owned subtree (treap link).
type Link<K> = Option<Box<Node<K>>>;

#[derive(Debug, Clone)]
struct Node<K> {
    lo: Lower<K>,
    hi: Upper<K>,
    id: IntervalId,
    /// Treap heap priority (deterministic pseudo-random from id).
    prio: u64,
    /// Maximum upper bound over this subtree.
    max_hi: Upper<K>,
    left: Option<Box<Node<K>>>,
    right: Option<Box<Node<K>>>,
}

/// Dynamic interval index: treap on lower bounds with max-upper-bound
/// augmentation.
#[derive(Debug, Clone)]
pub struct IntervalTreap<K> {
    root: Option<Box<Node<K>>>,
    /// id → interval, used to locate the node key on removal.
    by_id: HashMap<u32, Interval<K>>,
}

/// SplitMix64: cheap, well-distributed priority from the id. Using a
/// hash of the id instead of a random stream keeps the structure
/// deterministic for tests while preserving the treap's expected-case
/// shape on non-adversarial ids.
fn priority(id: IntervalId) -> u64 {
    let mut z = (id.0 as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<K: Ord + Clone> Default for IntervalTreap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone> IntervalTreap<K> {
    /// An empty treap.
    pub fn new() -> Self {
        IntervalTreap {
            root: None,
            by_id: HashMap::new(),
        }
    }

    /// The interval stored under `id`.
    pub fn get(&self, id: IntervalId) -> Option<&Interval<K>> {
        self.by_id.get(&id.0)
    }

    fn update(node: &mut Node<K>) {
        let mut max_hi = node.hi.clone();
        if let Some(l) = &node.left {
            if l.max_hi > max_hi {
                max_hi = l.max_hi.clone();
            }
        }
        if let Some(r) = &node.right {
            if r.max_hi > max_hi {
                max_hi = r.max_hi.clone();
            }
        }
        node.max_hi = max_hi;
    }

    fn key_cmp(
        a_lo: &Lower<K>,
        a_id: IntervalId,
        b_lo: &Lower<K>,
        b_id: IntervalId,
    ) -> std::cmp::Ordering {
        a_lo.cmp(b_lo).then(a_id.cmp(&b_id))
    }

    fn insert_node(root: Option<Box<Node<K>>>, mut new: Box<Node<K>>) -> Box<Node<K>> {
        let Some(mut node) = root else {
            return new;
        };
        if new.prio > node.prio {
            // `new` becomes the subtree root; split `node` by key.
            let (l, r) = Self::split(Some(node), &new.lo, new.id);
            new.left = l;
            new.right = r;
            Self::update(&mut new);
            return new;
        }
        if Self::key_cmp(&new.lo, new.id, &node.lo, node.id) == std::cmp::Ordering::Less {
            node.left = Some(Self::insert_node(node.left.take(), new));
        } else {
            node.right = Some(Self::insert_node(node.right.take(), new));
        }
        Self::update(&mut node);
        node
    }

    /// Splits a subtree into keys `< (lo, id)` and keys `> (lo, id)`
    /// (the key being inserted is always fresh, so equality can't occur).
    fn split(root: Link<K>, lo: &Lower<K>, id: IntervalId) -> (Link<K>, Link<K>) {
        let Some(mut node) = root else {
            return (None, None);
        };
        if Self::key_cmp(&node.lo, node.id, lo, id) == std::cmp::Ordering::Less {
            let (l, r) = Self::split(node.right.take(), lo, id);
            node.right = l;
            Self::update(&mut node);
            (Some(node), r)
        } else {
            let (l, r) = Self::split(node.left.take(), lo, id);
            node.left = r;
            Self::update(&mut node);
            (l, Some(node))
        }
    }

    /// Joins two treaps where every key in `l` precedes every key in `r`.
    fn join(l: Option<Box<Node<K>>>, r: Option<Box<Node<K>>>) -> Option<Box<Node<K>>> {
        match (l, r) {
            (None, r) => r,
            (l, None) => l,
            (Some(mut l), Some(mut r)) => {
                if l.prio > r.prio {
                    l.right = Self::join(l.right.take(), Some(r));
                    Self::update(&mut l);
                    Some(l)
                } else {
                    r.left = Self::join(Some(l), r.left.take());
                    Self::update(&mut r);
                    Some(r)
                }
            }
        }
    }

    fn remove_node(
        root: Option<Box<Node<K>>>,
        lo: &Lower<K>,
        id: IntervalId,
    ) -> (Option<Box<Node<K>>>, bool) {
        let Some(mut node) = root else {
            return (None, false);
        };
        match Self::key_cmp(lo, id, &node.lo, node.id) {
            std::cmp::Ordering::Equal => (Self::join(node.left.take(), node.right.take()), true),
            std::cmp::Ordering::Less => {
                let (l, found) = Self::remove_node(node.left.take(), lo, id);
                node.left = l;
                Self::update(&mut node);
                (Some(node), found)
            }
            std::cmp::Ordering::Greater => {
                let (r, found) = Self::remove_node(node.right.take(), lo, id);
                node.right = r;
                Self::update(&mut node);
                (Some(node), found)
            }
        }
    }

    fn stab_rec(node: Option<&Node<K>>, x: &K, out: &mut Vec<IntervalId>) {
        let Some(n) = node else { return };
        // Prune: nothing below can end at or after x.
        if !n.max_hi.admits(x) {
            return;
        }
        Self::stab_rec(n.left.as_deref(), x, out);
        if n.lo.admits(x) {
            if n.hi.admits(x) {
                out.push(n.id);
            }
            Self::stab_rec(n.right.as_deref(), x, out);
        }
        // If n.lo does not admit x, every key in the right subtree is
        // ≥ n.lo and cannot admit x either: prune.
    }
}

impl<K: Ord + Clone> StabIndex<K> for IntervalTreap<K> {
    fn stab_into(&self, x: &K, out: &mut Vec<IntervalId>) {
        Self::stab_rec(self.root.as_deref(), x, out);
    }

    fn len(&self) -> usize {
        self.by_id.len()
    }
}

impl<K: Ord + Clone> DynamicStabIndex<K> for IntervalTreap<K> {
    fn insert(&mut self, id: IntervalId, iv: Interval<K>) {
        debug_assert!(!self.by_id.contains_key(&id.0), "duplicate id {id}");
        let node = Box::new(Node {
            lo: iv.lo().clone(),
            hi: iv.hi().clone(),
            id,
            prio: priority(id),
            max_hi: iv.hi().clone(),
            left: None,
            right: None,
        });
        self.by_id.insert(id.0, iv);
        self.root = Some(Self::insert_node(self.root.take(), node));
    }

    fn remove(&mut self, id: IntervalId) -> Option<Interval<K>> {
        let iv = self.by_id.remove(&id.0)?;
        let (root, found) = Self::remove_node(self.root.take(), iv.lo(), id);
        self.root = root;
        debug_assert!(found, "interval in map but not in treap");
        Some(iv)
    }
}

impl<K: Ord + Clone> BulkBuild<K> for IntervalTreap<K> {
    fn build(items: Vec<(IntervalId, Interval<K>)>) -> Self {
        let mut t = Self::new();
        for (id, iv) in items {
            t.insert(id, iv);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> IntervalId {
        IntervalId(n)
    }

    #[test]
    fn insert_stab_remove() {
        let mut t = IntervalTreap::new();
        t.insert(id(0), Interval::closed(1, 10));
        t.insert(id(1), Interval::closed(5, 15));
        t.insert(id(2), Interval::point(7));
        t.insert(id(3), Interval::at_most(3));
        let sorted = |t: &IntervalTreap<i32>, x: i32| {
            let mut v = t.stab(&x);
            v.sort();
            v.into_iter().map(|i| i.0).collect::<Vec<_>>()
        };
        assert_eq!(sorted(&t, 7), vec![0, 1, 2]);
        assert_eq!(sorted(&t, 2), vec![0, 3]);
        assert_eq!(sorted(&t, 12), vec![1]);
        assert_eq!(t.remove(id(1)), Some(Interval::closed(5, 15)));
        assert_eq!(sorted(&t, 7), vec![0, 2]);
        assert_eq!(t.remove(id(1)), None);
    }

    #[test]
    fn duplicate_lower_bounds() {
        // The PST deficiency the paper highlights: many intervals sharing
        // one lower bound. The id tie-break must keep all of them.
        let mut t = IntervalTreap::new();
        for i in 0..50 {
            t.insert(id(i), Interval::closed(10, 20 + i as i32));
        }
        assert_eq!(t.stab(&10).len(), 50);
        assert_eq!(t.stab(&25).len(), 45);
        for i in 0..50 {
            assert!(t.remove(id(i)).is_some());
        }
        assert!(t.is_empty());
        assert_eq!(t.stab(&10), vec![]);
    }

    #[test]
    fn unbounded_intervals() {
        let mut t = IntervalTreap::new();
        t.insert(id(0), Interval::<i32>::unbounded());
        t.insert(id(1), Interval::at_least(5));
        t.insert(id(2), Interval::less_than(5));
        let mut v = t.stab(&100);
        v.sort();
        assert_eq!(v, vec![id(0), id(1)]);
        let mut v = t.stab(&-100);
        v.sort();
        assert_eq!(v, vec![id(0), id(2)]);
    }
}
