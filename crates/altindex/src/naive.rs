//! The sequential-search baseline (§2.1 of the paper).
//!
//! "The system traverses a list of predicates sequentially, testing each
//! against the tuple. This has low overhead and works well for small
//! numbers of predicates, but clearly performs badly when the number of
//! predicates is large." — this is the comparison curve of Figure 9, and
//! the correctness oracle for every other structure.

use crate::common::{BulkBuild, DynamicStabIndex, StabIndex};
use interval::{Interval, IntervalId};

/// A flat list of `(id, interval)` pairs with linear-time stabbing.
#[derive(Debug, Clone, Default)]
pub struct NaiveIntervalList<K> {
    items: Vec<(IntervalId, Interval<K>)>,
}

impl<K: Ord + Clone> NaiveIntervalList<K> {
    /// An empty list.
    pub fn new() -> Self {
        NaiveIntervalList { items: Vec::new() }
    }

    /// Iterates the stored pairs.
    pub fn iter(&self) -> impl Iterator<Item = (IntervalId, &Interval<K>)> {
        self.items.iter().map(|(id, iv)| (*id, iv))
    }

    /// The interval stored under `id`.
    pub fn get(&self, id: IntervalId) -> Option<&Interval<K>> {
        self.items.iter().find(|(i, _)| *i == id).map(|(_, iv)| iv)
    }
}

impl<K: Ord + Clone> StabIndex<K> for NaiveIntervalList<K> {
    fn stab_into(&self, x: &K, out: &mut Vec<IntervalId>) {
        for (id, iv) in &self.items {
            if iv.contains(x) {
                out.push(*id);
            }
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

impl<K: Ord + Clone> DynamicStabIndex<K> for NaiveIntervalList<K> {
    fn insert(&mut self, id: IntervalId, iv: Interval<K>) {
        debug_assert!(self.get(id).is_none(), "duplicate id {id}");
        self.items.push((id, iv));
    }

    fn remove(&mut self, id: IntervalId) -> Option<Interval<K>> {
        let pos = self.items.iter().position(|(i, _)| *i == id)?;
        Some(self.items.swap_remove(pos).1)
    }
}

impl<K: Ord + Clone> BulkBuild<K> for NaiveIntervalList<K> {
    fn build(items: Vec<(IntervalId, Interval<K>)>) -> Self {
        NaiveIntervalList { items }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut l = NaiveIntervalList::new();
        l.insert(IntervalId(1), Interval::closed(1, 5));
        l.insert(IntervalId(2), Interval::point(3));
        assert_eq!(l.len(), 2);
        let mut hits = l.stab(&3);
        hits.sort();
        assert_eq!(hits, vec![IntervalId(1), IntervalId(2)]);
        assert_eq!(l.stab(&6), vec![]);
        assert_eq!(l.remove(IntervalId(1)), Some(Interval::closed(1, 5)));
        assert_eq!(l.remove(IntervalId(1)), None);
        assert_eq!(l.stab(&3), vec![IntervalId(2)]);
    }
}
