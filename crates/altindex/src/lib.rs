//! # Alternative interval indexes
//!
//! The comparator structures the paper discusses alongside the IBS-tree
//! (§2, §4.1, and the comparison proposed as future work in §6), all
//! behind the common [`StabIndex`] trait so one differential harness and
//! one benchmark sweep cover every structure:
//!
//! | structure | dynamic? | paper role |
//! |---|---|---|
//! | [`NaiveIntervalList`] | yes | §2.1 sequential baseline; Fig. 9 comparison; test oracle |
//! | [`SegmentTree`] | no | §4.1 static comparator |
//! | [`CenteredIntervalTree`] | no | §4.1 static comparator |
//! | [`IntervalTreap`] | yes | §4.1 dynamic comparator (priority-search-tree stand-in) |
//! | [`IntervalSkipList`] | yes | §6 future-work direction (Hanson's own successor structure) |
//! | `ibs::IbsTree` | yes | the paper's contribution (implements [`StabIndex`] here) |

#![deny(unreachable_pub)]

mod common;
mod interval_tree;
mod naive;
mod segment_tree;
mod skiplist;
mod treap;

pub use common::{BulkBuild, DynamicStabIndex, StabIndex};
pub use interval_tree::CenteredIntervalTree;
pub use naive::NaiveIntervalList;
pub use segment_tree::SegmentTree;
pub use skiplist::IntervalSkipList;
pub use treap::IntervalTreap;

use interval::{Interval, IntervalId};

impl<K: Ord + Clone> StabIndex<K> for ibs::IbsTree<K> {
    fn stab_into(&self, x: &K, out: &mut Vec<IntervalId>) {
        ibs::IbsTree::stab_into(self, x, out);
    }

    fn len(&self) -> usize {
        ibs::IbsTree::len(self)
    }
}

impl<K: Ord + Clone> DynamicStabIndex<K> for ibs::IbsTree<K> {
    fn insert(&mut self, id: IntervalId, iv: Interval<K>) {
        ibs::IbsTree::insert(self, id, iv).expect("duplicate interval id");
    }

    fn remove(&mut self, id: IntervalId) -> Option<Interval<K>> {
        ibs::IbsTree::remove(self, id)
    }
}

impl<K: Ord + Clone> BulkBuild<K> for ibs::IbsTree<K> {
    fn build(items: Vec<(IntervalId, Interval<K>)>) -> Self {
        let mut t = ibs::IbsTree::new();
        for (id, iv) in items {
            ibs::IbsTree::insert(&mut t, id, iv).expect("duplicate interval id");
        }
        t
    }
}
