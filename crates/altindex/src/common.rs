//! Shared traits for interval stabbing indexes.
//!
//! §2 and §4.1 of the paper compare the IBS-tree against a family of
//! alternatives (sequential lists, segment trees, interval trees,
//! priority search trees, 1-D R-trees). Every structure in this
//! workspace implements [`StabIndex`], so a single differential test
//! harness and a single benchmark sweep cover them all.

use interval::{Interval, IntervalId};

/// Read side: report all intervals containing a point.
pub trait StabIndex<K: Ord + Clone> {
    /// Appends the id of every interval containing `x` to `out`, each
    /// exactly once, in unspecified order.
    fn stab_into(&self, x: &K, out: &mut Vec<IntervalId>);

    /// Number of intervals indexed.
    fn len(&self) -> usize;

    /// Is the index empty?
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convenience wrapper allocating a fresh result vector.
    fn stab(&self, x: &K) -> Vec<IntervalId> {
        let mut out = Vec::new();
        self.stab_into(x, &mut out);
        out
    }
}

/// Write side for structures that support on-line updates (the paper's
/// requirement 3: "the ability to rapidly insert and delete predicates
/// on-line").
pub trait DynamicStabIndex<K: Ord + Clone>: StabIndex<K> {
    /// Indexes `iv` under `id`. `id` must not already be present.
    fn insert(&mut self, id: IntervalId, iv: Interval<K>);

    /// Removes and returns the interval stored under `id`.
    fn remove(&mut self, id: IntervalId) -> Option<Interval<K>>;
}

/// Construction for static structures (segment tree, centered interval
/// tree) that must know all intervals up front — exactly the limitation
/// that motivated the IBS-tree ("segment trees and interval trees are
/// not adequate because they do not allow dynamic insertion and
/// deletion of predicates").
pub trait BulkBuild<K: Ord + Clone>: Sized {
    /// Builds the index over the given intervals. Ids must be distinct.
    fn build(items: Vec<(IntervalId, Interval<K>)>) -> Self;
}
