//! A static segment tree (cited in §4.1 via [Sam88, Sam90]).
//!
//! The key space is split into *elementary pieces* — one point piece per
//! distinct finite endpoint value and one open gap piece between (and
//! outside) them — and a complete binary tree is built over the pieces.
//! Each interval decomposes into `O(log n)` canonical tree nodes.
//!
//! The structure is deliberately **static**: it must see every interval
//! at build time. This is exactly the deficiency the paper cites when
//! motivating the IBS-tree ("segment trees and interval trees are not
//! adequate because they do not allow dynamic insertion and deletion of
//! predicates"), and it is kept that way so the ablation benchmarks can
//! show what the restriction buys and costs.

use crate::common::{BulkBuild, StabIndex};
use interval::{Interval, IntervalId, Lower, Upper};

/// Static segment tree over interval endpoints.
#[derive(Debug, Clone)]
pub struct SegmentTree<K> {
    /// Sorted distinct finite endpoint values.
    values: Vec<K>,
    /// Per-node mark lists; implicit recursive layout over piece ranges.
    marks: Vec<Vec<IntervalId>>,
    /// Number of elementary pieces = `2 * values.len() + 1`.
    pieces: usize,
    len: usize,
}

impl<K: Ord + Clone> SegmentTree<K> {
    /// Piece index for the query point `x`:
    /// `2i+1` for the point piece of `values[i]`, `2p` for the gap piece
    /// below insertion position `p`.
    fn piece_of(&self, x: &K) -> usize {
        match self.values.binary_search(x) {
            Ok(i) => 2 * i + 1,
            Err(p) => 2 * p,
        }
    }

    /// The contiguous piece range `[lo, hi]` an interval occupies.
    fn piece_range(&self, iv: &Interval<K>) -> (usize, usize) {
        let lo = match iv.lo() {
            Lower::Unbounded => 0,
            Lower::Inclusive(v) => {
                let i = self.values.binary_search(v).expect("endpoint registered");
                2 * i + 1
            }
            Lower::Exclusive(v) => {
                let i = self.values.binary_search(v).expect("endpoint registered");
                2 * i + 2
            }
        };
        let hi = match iv.hi() {
            Upper::Unbounded => self.pieces - 1,
            Upper::Inclusive(v) => {
                let i = self.values.binary_search(v).expect("endpoint registered");
                2 * i + 1
            }
            Upper::Exclusive(v) => {
                let i = self.values.binary_search(v).expect("endpoint registered");
                2 * i
            }
        };
        (lo, hi)
    }

    /// Canonical range insertion (recursive on the implicit tree).
    fn insert_range(
        &mut self,
        node: usize,
        n_lo: usize,
        n_hi: usize,
        lo: usize,
        hi: usize,
        id: IntervalId,
    ) {
        if hi < n_lo || n_hi < lo {
            return;
        }
        if lo <= n_lo && n_hi <= hi {
            self.marks[node].push(id);
            return;
        }
        let mid = (n_lo + n_hi) / 2;
        self.insert_range(2 * node + 1, n_lo, mid, lo, hi, id);
        self.insert_range(2 * node + 2, mid + 1, n_hi, lo, hi, id);
    }
}

impl<K: Ord + Clone> BulkBuild<K> for SegmentTree<K> {
    fn build(items: Vec<(IntervalId, Interval<K>)>) -> Self {
        let mut values: Vec<K> = Vec::with_capacity(items.len() * 2);
        for (_, iv) in &items {
            if let Some(v) = iv.lo().value() {
                values.push(v.clone());
            }
            if let Some(v) = iv.hi().value() {
                values.push(v.clone());
            }
        }
        values.sort();
        values.dedup();
        let pieces = 2 * values.len() + 1;
        let mut tree = SegmentTree {
            values,
            marks: vec![Vec::new(); 4 * pieces],
            pieces,
            len: items.len(),
        };
        let last = tree.pieces - 1;
        for (id, iv) in items {
            let (lo, hi) = tree.piece_range(&iv);
            debug_assert!(lo <= hi, "non-empty interval must occupy pieces");
            tree.insert_range(0, 0, last, lo, hi, id);
        }
        tree
    }
}

impl<K: Ord + Clone> StabIndex<K> for SegmentTree<K> {
    fn stab_into(&self, x: &K, out: &mut Vec<IntervalId>) {
        if self.len == 0 {
            return;
        }
        let target = self.piece_of(x);
        let (mut node, mut n_lo, mut n_hi) = (0usize, 0usize, self.pieces - 1);
        loop {
            out.extend_from_slice(&self.marks[node]);
            if n_lo == n_hi {
                break;
            }
            let mid = (n_lo + n_hi) / 2;
            if target <= mid {
                node = 2 * node + 1;
                n_hi = mid;
            } else {
                node = 2 * node + 2;
                n_lo = mid + 1;
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> IntervalId {
        IntervalId(n)
    }

    #[test]
    fn mixed_bounds() {
        let t = SegmentTree::build(vec![
            (id(0), Interval::closed(2, 7)),
            (id(1), Interval::open(2, 7)),
            (id(2), Interval::point(7)),
            (id(3), Interval::at_least(5)),
            (id(4), Interval::less_than(3)),
            (id(5), Interval::unbounded()),
        ]);
        let sorted = |x: i32| {
            let mut v = t.stab(&x);
            v.sort();
            v.into_iter().map(|i| i.0).collect::<Vec<_>>()
        };
        assert_eq!(sorted(1), vec![4, 5]);
        assert_eq!(sorted(2), vec![0, 4, 5]);
        assert_eq!(sorted(3), vec![0, 1, 5]);
        assert_eq!(sorted(5), vec![0, 1, 3, 5]);
        assert_eq!(sorted(7), vec![0, 2, 3, 5]);
        assert_eq!(sorted(8), vec![3, 5]);
        assert_eq!(sorted(-100), vec![4, 5]);
    }

    #[test]
    fn empty_build() {
        let t: SegmentTree<i32> = SegmentTree::build(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.stab(&3), vec![]);
    }

    #[test]
    fn only_universal() {
        let t = SegmentTree::build(vec![(id(9), Interval::<i32>::unbounded())]);
        assert_eq!(t.stab(&42), vec![id(9)]);
        assert_eq!(t.stab(&i32::MIN), vec![id(9)]);
    }
}
