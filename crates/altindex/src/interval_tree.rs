//! A static centered interval tree (cited in §4.1 via [Sam88, Sam90]).
//!
//! Classic Edelsbrunner/McCreight construction: each node holds a center
//! key; intervals containing the center live at the node in two sorted
//! lists (ascending lower bounds, descending upper bounds), the rest are
//! pushed to the left or right child. Stabbing `x < center` scans the
//! ascending-lower list only as far as bounds that still admit `x` — an
//! output-sensitive prefix — then recurses left; `x > center` is the
//! mirror image.
//!
//! Open bounds need care: the textbook construction picks the median
//! *endpoint* as the center and relies on that endpoint being contained
//! in the interval it came from — false for an exclusive bound (no point
//! of `(5, 10)` equals 5 or 10), which can loop the build forever. We
//! recover the guarantee by working with **effective endpoints** in the
//! order-completion of the key space: each key `v` splits into the three
//! positions `v⁻ < v < v⁺`, an exclusive lower bound at `v` becomes the
//! effective endpoint `v⁺`, an exclusive upper bound becomes `v⁻`. Every
//! interval contains its own effective endpoints, so the median effective
//! endpoint always lands in `here` and the recursion strictly shrinks.
//! Only `Ord` is required of the key type — no arithmetic midpoints.
//!
//! Like the segment tree, this structure is static by design (the
//! paper's stated reason for inventing the IBS-tree).

use crate::common::{BulkBuild, StabIndex};
use interval::{Interval, IntervalId, Lower, Upper};
use std::cmp::Ordering;

/// Position of an effective key relative to a concrete key value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Place {
    /// Infinitesimally below the value (`v⁻`).
    Below,
    /// Exactly the value.
    At,
    /// Infinitesimally above the value (`v⁺`).
    Above,
}

/// A point in the order-completion of `K`: `(v, Place)` with
/// lexicographic order, so `v⁻ < v < v⁺ < w⁻` for `v < w`.
type EffKey<K> = (K, Place);

/// Effective lower endpoint (`None` = −∞).
fn eff_lo<K: Ord + Clone>(iv: &Interval<K>) -> Option<EffKey<K>> {
    match iv.lo() {
        Lower::Unbounded => None,
        Lower::Inclusive(v) => Some((v.clone(), Place::At)),
        Lower::Exclusive(v) => Some((v.clone(), Place::Above)),
    }
}

/// Effective upper endpoint (`None` = +∞).
fn eff_hi<K: Ord + Clone>(iv: &Interval<K>) -> Option<EffKey<K>> {
    match iv.hi() {
        Upper::Unbounded => None,
        Upper::Inclusive(v) => Some((v.clone(), Place::At)),
        Upper::Exclusive(v) => Some((v.clone(), Place::Below)),
    }
}

struct Node<K> {
    center: EffKey<K>,
    /// Intervals containing `center`, sorted by ascending lower bound.
    by_lo: Vec<(Lower<K>, IntervalId)>,
    /// The same intervals, sorted by descending upper bound.
    by_hi: Vec<(Upper<K>, IntervalId)>,
    left: Option<Box<Node<K>>>,
    right: Option<Box<Node<K>>>,
}

/// Static centered interval tree.
pub struct CenteredIntervalTree<K> {
    root: Option<Box<Node<K>>>,
    /// Intervals with no finite endpoint (they contain every query point).
    universal: Vec<IntervalId>,
    len: usize,
}

impl<K: Ord + Clone> CenteredIntervalTree<K> {
    fn build_node(mut items: Vec<(IntervalId, Interval<K>)>) -> Option<Box<Node<K>>> {
        if items.is_empty() {
            return None;
        }
        // Median *effective* endpoint as the center.
        let mut endpoints: Vec<EffKey<K>> = Vec::with_capacity(items.len() * 2);
        for (_, iv) in &items {
            endpoints.extend(eff_lo(iv));
            endpoints.extend(eff_hi(iv));
        }
        endpoints.sort();
        let center = endpoints[endpoints.len() / 2].clone();

        let mut here: Vec<(IntervalId, Interval<K>)> = Vec::new();
        let mut left: Vec<(IntervalId, Interval<K>)> = Vec::new();
        let mut right: Vec<(IntervalId, Interval<K>)> = Vec::new();
        for (id, iv) in items.drain(..) {
            let lo = eff_lo(&iv);
            let hi = eff_hi(&iv);
            let above_center = matches!(&lo, Some(l) if *l > center);
            let below_center = matches!(&hi, Some(h) if *h < center);
            if above_center {
                right.push((id, iv));
            } else if below_center {
                left.push((id, iv));
            } else {
                // effective lo ≤ center ≤ effective hi: contains center.
                here.push((id, iv));
            }
        }
        debug_assert!(
            !here.is_empty(),
            "median effective endpoint is contained in its own interval"
        );

        let mut by_lo: Vec<(Lower<K>, IntervalId)> =
            here.iter().map(|(id, iv)| (iv.lo().clone(), *id)).collect();
        by_lo.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut by_hi: Vec<(Upper<K>, IntervalId)> =
            here.iter().map(|(id, iv)| (iv.hi().clone(), *id)).collect();
        by_hi.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

        Some(Box::new(Node {
            center,
            by_lo,
            by_hi,
            left: Self::build_node(left),
            right: Self::build_node(right),
        }))
    }

    /// Where does the concrete query `x` sit relative to a center in the
    /// order-completion? Equality is only possible against `At` centers.
    fn cmp_query(x: &K, center: &EffKey<K>) -> Ordering {
        match x.cmp(&center.0) {
            Ordering::Less => Ordering::Less,
            Ordering::Greater => Ordering::Greater,
            Ordering::Equal => match center.1 {
                Place::Below => Ordering::Greater, // x = v > v⁻
                Place::At => Ordering::Equal,
                Place::Above => Ordering::Less, // x = v < v⁺
            },
        }
    }
}

impl<K: Ord + Clone> BulkBuild<K> for CenteredIntervalTree<K> {
    fn build(items: Vec<(IntervalId, Interval<K>)>) -> Self {
        let len = items.len();
        let (universal, bounded): (Vec<_>, Vec<_>) = items
            .into_iter()
            .partition(|(_, iv)| iv.lo().value().is_none() && iv.hi().value().is_none());
        CenteredIntervalTree {
            root: Self::build_node(bounded),
            universal: universal.into_iter().map(|(id, _)| id).collect(),
            len,
        }
    }
}

impl<K: Ord + Clone> StabIndex<K> for CenteredIntervalTree<K> {
    fn stab_into(&self, x: &K, out: &mut Vec<IntervalId>) {
        out.extend_from_slice(&self.universal);
        let mut cur = self.root.as_deref();
        while let Some(node) = cur {
            match Self::cmp_query(x, &node.center) {
                Ordering::Equal => {
                    // Every interval at this node contains the center
                    // value itself.
                    out.extend(node.by_lo.iter().map(|(_, id)| *id));
                    return;
                }
                Ordering::Less => {
                    // Ascending lower bounds: the admitting ones form a
                    // prefix (admission is downward-closed in bound
                    // order). The upper sides all reach the center, which
                    // is above x, so they admit x automatically.
                    for (lo, id) in &node.by_lo {
                        if lo.admits(x) {
                            out.push(*id);
                        } else {
                            break;
                        }
                    }
                    cur = node.left.as_deref();
                }
                Ordering::Greater => {
                    for (hi, id) in &node.by_hi {
                        if hi.admits(x) {
                            out.push(*id);
                        } else {
                            break;
                        }
                    }
                    cur = node.right.as_deref();
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> IntervalId {
        IntervalId(n)
    }

    #[test]
    fn stabbing_matches_definition() {
        let ivs = vec![
            (id(0), Interval::closed(9, 19)),
            (id(1), Interval::closed(2, 7)),
            (id(2), Interval::closed_open(1, 3)),
            (id(3), Interval::closed(17, 20)),
            (id(4), Interval::closed(7, 12)),
            (id(5), Interval::point(18)),
            (id(6), Interval::at_most(17)),
        ];
        let t = CenteredIntervalTree::build(ivs.clone());
        for x in -2..25 {
            let mut got = t.stab(&x);
            got.sort();
            let mut want: Vec<IntervalId> = ivs
                .iter()
                .filter(|(_, iv)| iv.contains(&x))
                .map(|(i, _)| *i)
                .collect();
            want.sort();
            assert_eq!(got, want, "at {x}");
        }
    }

    #[test]
    fn all_open_intervals_terminate() {
        // The textbook construction loops on this input; the effective-
        // endpoint construction must not.
        let ivs = vec![
            (id(0), Interval::open(5, 10)),
            (id(1), Interval::open(5, 10)),
            (id(2), Interval::open(9, 20)),
        ];
        let t = CenteredIntervalTree::build(ivs.clone());
        for x in 0..25 {
            let mut got = t.stab(&x);
            got.sort();
            let mut want: Vec<IntervalId> = ivs
                .iter()
                .filter(|(_, iv)| iv.contains(&x))
                .map(|(i, _)| *i)
                .collect();
            want.sort();
            assert_eq!(got, want, "at {x}");
        }
    }

    #[test]
    fn empty() {
        let t: CenteredIntervalTree<i32> = CenteredIntervalTree::build(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.stab(&0), vec![]);
    }

    #[test]
    fn universal_and_open_ended() {
        let t = CenteredIntervalTree::build(vec![
            (id(0), Interval::<i32>::unbounded()),
            (id(1), Interval::at_least(100)),
        ]);
        assert_eq!(t.stab(&-5), vec![id(0)]);
        let mut v = t.stab(&500);
        v.sort();
        assert_eq!(v, vec![id(0), id(1)]);
    }
}
