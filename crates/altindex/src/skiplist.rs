//! An interval skip list — the direction Hanson's group actually took
//! after this paper (Hanson & Johnson's interval skip list), included
//! here as the §6 "future work" extension.
//!
//! The encoding mirrors the IBS-tree's, transplanted onto a skip list:
//! distinct finite endpoint values are skip-list nodes; each *forward
//! edge* at each level carries a marker set asserting "this interval
//! covers the open key range the edge spans"; each node carries an `=`
//! marker set asserting containment of the node's value. A stabbing
//! query walks the ordinary skip-list search path, collecting the edge
//! markers of every drop-down edge (the edges that overshoot the query)
//! plus the `=` set on an exact hit — `O(log N + L)` expected.
//!
//! As in the IBS-tree implementation, deletions are made exact with a
//! placement registry instead of re-deriving marker positions, and node
//! insertion/removal repairs exactly the markers whose edges were split
//! or merged.

use crate::common::{BulkBuild, DynamicStabIndex, StabIndex};
use ibs::MarkSet;
use interval::{Interval, IntervalId};
use std::collections::HashMap;

const MAX_LEVEL: usize = 24;

/// Index of a node in the arena.
type NodeIx = u32;
const NIL: NodeIx = u32::MAX;

/// Where a marker lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Place {
    /// The forward edge leaving `src` at `level` (`src == NIL` encodes
    /// the head sentinel).
    Edge { src: NodeIx, level: u8 },
    /// The `=` set of a node.
    Eq { node: NodeIx },
}

struct Node<K> {
    value: K,
    /// Forward pointer per level (len = height).
    forward: Vec<NodeIx>,
    /// Marker set per outgoing edge, parallel to `forward`.
    edge_marks: Vec<MarkSet>,
    eq_marks: MarkSet,
    lo_owners: MarkSet,
    hi_owners: MarkSet,
}

/// Dynamic interval index over a skip list.
pub struct IntervalSkipList<K> {
    nodes: Vec<Option<Node<K>>>,
    free: Vec<NodeIx>,
    /// Head sentinel: forward pointers and edge marker sets per level.
    head_forward: Vec<NodeIx>,
    head_marks: Vec<MarkSet>,
    level: usize,
    intervals: HashMap<u32, Interval<K>>,
    placements: HashMap<u32, Vec<Place>>,
    universal: Vec<IntervalId>,
    /// SplitMix64 state for tower heights (deterministic per list).
    rng: u64,
}

impl<K: Ord + Clone> Default for IntervalSkipList<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone> IntervalSkipList<K> {
    /// An empty list with the default seed.
    pub fn new() -> Self {
        Self::with_seed(0x5eed_cafe)
    }

    /// An empty list whose tower heights are drawn from `seed`.
    pub fn with_seed(seed: u64) -> Self {
        IntervalSkipList {
            nodes: Vec::new(),
            free: Vec::new(),
            head_forward: vec![NIL],
            head_marks: vec![MarkSet::new()],
            level: 1,
            intervals: HashMap::new(),
            placements: HashMap::new(),
            universal: Vec::new(),
            rng: seed,
        }
    }

    fn next_rand(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn random_height(&mut self) -> usize {
        // p = 1/2 tower heights, capped.
        let r = self.next_rand();
        ((r.trailing_ones() as usize) + 1).min(MAX_LEVEL)
    }

    fn node(&self, ix: NodeIx) -> &Node<K> {
        self.nodes[ix as usize].as_ref().expect("dangling node")
    }

    fn node_mut(&mut self, ix: NodeIx) -> &mut Node<K> {
        self.nodes[ix as usize].as_mut().expect("dangling node")
    }

    /// A live node by index, skipping the bounds and liveness checks.
    ///
    /// The stab search touches one node per horizontal step across
    /// every level; this is the skip list's answer to the IBS-tree's
    /// arena fast path, so the baseline comparison measures the
    /// algorithms rather than one side's bounds checks.
    #[inline]
    fn node_unchecked(&self, ix: NodeIx) -> &Node<K> {
        debug_assert!(
            self.nodes.get(ix as usize).is_some_and(Option::is_some),
            "dangling node index"
        );
        // SAFETY: forward links and `head_forward` only ever hold
        // indices of live nodes — `ensure_node` hands out in-bounds
        // slots, and node removal splices the target out of every
        // tower before freeing its slot — and stab callers pass only
        // indices read from those links.
        unsafe {
            self.nodes
                .get_unchecked(ix as usize)
                .as_ref()
                .unwrap_unchecked()
        }
    }

    fn forward_of(&self, src: NodeIx, level: usize) -> NodeIx {
        if src == NIL {
            *self.head_forward.get(level).unwrap_or(&NIL)
        } else {
            let n = self.node(src);
            *n.forward.get(level).unwrap_or(&NIL)
        }
    }

    fn set_forward(&mut self, src: NodeIx, level: usize, dst: NodeIx) {
        if src == NIL {
            self.head_forward[level] = dst;
        } else {
            self.node_mut(src).forward[level] = dst;
        }
    }

    fn value_of(&self, ix: NodeIx) -> Option<&K> {
        if ix == NIL {
            None
        } else {
            Some(&self.node(ix).value)
        }
    }

    // --- marker bookkeeping -------------------------------------------

    fn add_edge_mark(&mut self, src: NodeIx, level: usize, id: IntervalId) {
        let set = if src == NIL {
            &mut self.head_marks[level]
        } else {
            &mut self.node_mut(src).edge_marks[level]
        };
        if set.insert(id) {
            self.placements.entry(id.0).or_default().push(Place::Edge {
                src,
                level: level as u8,
            });
        }
    }

    fn add_eq_mark(&mut self, node: NodeIx, id: IntervalId) {
        if self.node_mut(node).eq_marks.insert(id) {
            self.placements
                .entry(id.0)
                .or_default()
                .push(Place::Eq { node });
        }
    }

    fn clear_marks(&mut self, id: IntervalId) {
        let Some(places) = self.placements.remove(&id.0) else {
            return;
        };
        for p in places {
            let removed = match p {
                Place::Edge { src, level } => {
                    if src == NIL {
                        self.head_marks[level as usize].remove(id)
                    } else {
                        self.node_mut(src).edge_marks[level as usize].remove(id)
                    }
                }
                Place::Eq { node } => self.node_mut(node).eq_marks.remove(id),
            };
            debug_assert!(removed, "skip-list registry pointed at missing marker");
        }
    }

    // --- structural operations ----------------------------------------

    /// Finds the node holding exactly `v`.
    fn find_node(&self, v: &K) -> Option<NodeIx> {
        let mut cur = NIL;
        for l in (0..self.level).rev() {
            loop {
                let next = self.forward_of(cur, l);
                match self.value_of(next) {
                    Some(nv) if nv < v => cur = next,
                    Some(nv) if nv == v => return Some(next),
                    _ => break,
                }
            }
        }
        None
    }

    /// Finds-or-creates the node for `v`, repairing markers on any edge
    /// the new tower splits.
    fn ensure_node(&mut self, v: K) -> NodeIx {
        // Record the predecessor at every current level.
        let mut preds = vec![NIL; self.level];
        let mut cur = NIL;
        for l in (0..self.level).rev() {
            loop {
                let next = self.forward_of(cur, l);
                match self.value_of(next) {
                    Some(nv) if *nv < v => cur = next,
                    Some(nv) if *nv == v => return next,
                    _ => break,
                }
            }
            preds[l] = cur;
        }

        let height = self.random_height();
        while self.level < height {
            self.head_forward.push(NIL);
            self.head_marks.push(MarkSet::new());
            preds.push(NIL);
            self.level += 1;
        }

        // Markers on every edge about to be split must be re-placed once
        // the node is linked in.
        let mut repair: Vec<IntervalId> = Vec::new();
        for (l, &p) in preds.iter().enumerate().take(height) {
            let set = if p == NIL {
                &self.head_marks[l]
            } else {
                &self.node(p).edge_marks[l]
            };
            for id in set.iter() {
                if !repair.contains(&id) {
                    repair.push(id);
                }
            }
        }
        for &id in &repair {
            self.clear_marks(id);
        }

        let ix = if let Some(ix) = self.free.pop() {
            ix
        } else {
            self.nodes.push(None);
            (self.nodes.len() - 1) as NodeIx
        };
        let mut forward = Vec::with_capacity(height);
        for (l, &p) in preds.iter().enumerate().take(height) {
            forward.push(self.forward_of(p, l));
        }
        self.nodes[ix as usize] = Some(Node {
            value: v,
            forward,
            edge_marks: vec![MarkSet::new(); height],
            eq_marks: MarkSet::new(),
            lo_owners: MarkSet::new(),
            hi_owners: MarkSet::new(),
        });
        for (l, &p) in preds.iter().enumerate().take(height) {
            self.set_forward(p, l, ix);
        }

        for id in repair {
            let iv = self.intervals[&id.0].clone();
            self.place_marks(id, &iv);
        }
        ix
    }

    /// Unlinks the (unowned) node holding `v`, repairing the markers of
    /// every interval with a marker on an adjacent edge or on the node.
    fn delete_value(&mut self, v: &K) {
        let mut preds = vec![NIL; self.level];
        let mut cur = NIL;
        let mut target = NIL;
        for l in (0..self.level).rev() {
            loop {
                let next = self.forward_of(cur, l);
                match self.value_of(next) {
                    Some(nv) if nv < v => cur = next,
                    Some(nv) if nv == v => {
                        target = next;
                        break;
                    }
                    _ => break,
                }
            }
            preds[l] = cur;
        }
        assert!(target != NIL, "delete_value: value not present");
        let height = self.node(target).forward.len();

        let mut repair: Vec<IntervalId> = Vec::new();
        let note = |set: &MarkSet, repair: &mut Vec<IntervalId>| {
            for id in set.iter() {
                if !repair.contains(&id) {
                    repair.push(id);
                }
            }
        };
        for (l, &p) in preds.iter().enumerate().take(height) {
            // Incoming edge at level l.
            let set = if p == NIL {
                &self.head_marks[l]
            } else {
                &self.node(p).edge_marks[l]
            };
            note(set, &mut repair);
            // Outgoing edge at level l.
            note(&self.node(target).edge_marks[l], &mut repair);
        }
        note(&self.node(target).eq_marks, &mut repair);
        for &id in &repair {
            self.clear_marks(id);
        }

        for (l, &p) in preds.iter().enumerate().take(height) {
            let next = self.node(target).forward[l];
            self.set_forward(p, l, next);
        }
        let dead = self.nodes[target as usize].take().expect("double free");
        self.free.push(target);
        debug_assert!(dead.eq_marks.is_empty());
        debug_assert!(dead.edge_marks.iter().all(|m| m.is_empty()));
        debug_assert!(dead.lo_owners.is_empty() && dead.hi_owners.is_empty());

        // Shrink empty top levels.
        while self.level > 1 && self.head_forward[self.level - 1] == NIL {
            self.head_forward.pop();
            let dropped = self.head_marks.pop().expect("parallel arrays");
            debug_assert!(dropped.is_empty(), "marker on an empty top level");
            self.level -= 1;
        }

        for id in repair {
            let iv = self.intervals[&id.0].clone();
            self.place_marks(id, &iv);
        }
    }

    // --- marker placement ----------------------------------------------

    /// Canonical top-down placement, the skip-list analogue of the
    /// IBS-tree's fragment decomposition: starting from the top level,
    /// every edge whose open span the interval fully covers gets an edge
    /// marker; partially overlapped edges are descended into one level;
    /// every node stepped onto whose value the interval contains gets an
    /// `=` marker.
    fn place_marks(&mut self, id: IntervalId, iv: &Interval<K>) {
        // Work list of (level, from, until): walk level `level` starting
        // at `from` (NIL = head) up to — exclusive — node `until`.
        let mut work: Vec<(usize, NodeIx, NodeIx)> = vec![(self.level - 1, NIL, NIL)];
        while let Some((level, from, until)) = work.pop() {
            let mut cur = from;
            loop {
                let next = self.forward_of(cur, level);
                debug_assert!(
                    until == NIL || next != NIL,
                    "walk ran off the list before reaching its bound"
                );
                let span_lo = self.value_of(cur).cloned();
                let span_hi = self.value_of(next).cloned();
                if iv.covers_open_range(span_lo.as_ref(), span_hi.as_ref()) {
                    self.add_edge_mark(cur, level, id);
                } else if level > 0 && iv.overlaps_open_range(span_lo.as_ref(), span_hi.as_ref()) {
                    work.push((level - 1, cur, next));
                }
                if next == until {
                    break;
                }
                // Step onto `next`.
                if iv.contains(&self.node(next).value) {
                    self.add_eq_mark(next, id);
                }
                cur = next;
            }
        }
    }
}

impl<K: Ord + Clone + std::fmt::Debug> IntervalSkipList<K> {
    /// Verifies marker soundness and completeness plus registry and
    /// ownership accounting (the skip-list analogue of
    /// `IbsTree::check_invariants`). Test support.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Registry ⇔ full scan.
        let mut scanned: HashMap<u32, Vec<Place>> = HashMap::new();
        let note = |id: IntervalId, place: Place, m: &mut HashMap<u32, Vec<Place>>| {
            m.entry(id.0).or_default().push(place);
        };
        for (l, set) in self.head_marks.iter().enumerate() {
            for id in set.iter() {
                note(
                    id,
                    Place::Edge {
                        src: NIL,
                        level: l as u8,
                    },
                    &mut scanned,
                );
            }
        }
        for (ix, n) in self.nodes.iter().enumerate() {
            let Some(n) = n else { continue };
            for (l, set) in n.edge_marks.iter().enumerate() {
                for id in set.iter() {
                    note(
                        id,
                        Place::Edge {
                            src: ix as NodeIx,
                            level: l as u8,
                        },
                        &mut scanned,
                    );
                }
            }
            for id in n.eq_marks.iter() {
                note(id, Place::Eq { node: ix as NodeIx }, &mut scanned);
            }
        }
        let norm = |m: &HashMap<u32, Vec<Place>>| -> HashMap<u32, Vec<(u32, u8, bool)>> {
            m.iter()
                .filter(|(_, v)| !v.is_empty())
                .map(|(&id, v)| {
                    let mut v: Vec<(u32, u8, bool)> = v
                        .iter()
                        .map(|p| match *p {
                            Place::Edge { src, level } => (src, level, false),
                            Place::Eq { node } => (node, 0, true),
                        })
                        .collect();
                    v.sort_unstable();
                    (id, v)
                })
                .collect()
        };
        if norm(&scanned) != norm(&self.placements) {
            return Err("skip-list registry out of sync with marker scan".into());
        }

        // Marker soundness.
        for l in 0..self.level {
            let mut cur = NIL;
            loop {
                let next = self.forward_of(cur, l);
                let set = if cur == NIL {
                    &self.head_marks[l]
                } else {
                    &self.node(cur).edge_marks[l]
                };
                let (lo, hi) = (self.value_of(cur), self.value_of(next));
                for id in set.iter() {
                    let iv = self
                        .intervals
                        .get(&id.0)
                        .ok_or_else(|| format!("marker for unknown {id}"))?;
                    if !iv.covers_open_range(lo, hi) {
                        return Err(format!(
                            "unsound edge marker {id} on level {l} ({lo:?}, {hi:?})"
                        ));
                    }
                }
                if next == NIL {
                    break;
                }
                cur = next;
            }
        }
        for n in self.nodes.iter().flatten() {
            for id in n.eq_marks.iter() {
                let iv = self
                    .intervals
                    .get(&id.0)
                    .ok_or_else(|| format!("eq marker for unknown {id}"))?;
                if !iv.contains(&n.value) {
                    return Err(format!("unsound eq marker {id} at {:?}", n.value));
                }
            }
        }

        // Completeness at every node value and every level-0 gap.
        let mut cur = NIL;
        loop {
            let next = self.forward_of(cur, 0);
            // The gap (cur, next).
            let collected = self.simulate_gap_search(self.value_of(cur).cloned());
            let expected: Vec<u32> = self
                .intervals
                .iter()
                .filter(|(_, iv)| iv.covers_open_range(self.value_of(cur), self.value_of(next)))
                .map(|(&id, _)| id)
                .collect();
            let mut c: Vec<u32> = collected.iter().map(|i| i.0).collect();
            let mut e = expected;
            c.sort_unstable();
            c.dedup();
            e.sort_unstable();
            if c != e {
                return Err(format!(
                    "incomplete gap ({:?}, {:?}): got {c:?}, want {e:?}",
                    self.value_of(cur),
                    self.value_of(next)
                ));
            }
            if next == NIL {
                break;
            }
            // The node value itself.
            let v = self.node(next).value.clone();
            let mut got: Vec<u32> = self.stab(&v).iter().map(|i| i.0).collect();
            got.sort_unstable();
            let mut want: Vec<u32> = self
                .intervals
                .iter()
                .filter(|(_, iv)| iv.contains(&v))
                .map(|(&id, _)| id)
                .collect();
            want.sort_unstable();
            if got != want {
                return Err(format!(
                    "incomplete at value {v:?}: got {got:?}, want {want:?}"
                ));
            }
            cur = next;
        }

        // Ownership accounting.
        for (&raw, iv) in &self.intervals {
            let id = IntervalId(raw);
            if let Some(v) = iv.lo().value() {
                let n = self
                    .find_node(v)
                    .ok_or_else(|| format!("{id}: missing lo node"))?;
                if !self.node(n).lo_owners.contains(id) {
                    return Err(format!("{id}: lo endpoint unowned"));
                }
            }
            if let Some(v) = iv.hi().value() {
                let n = self
                    .find_node(v)
                    .ok_or_else(|| format!("{id}: missing hi node"))?;
                if !self.node(n).hi_owners.contains(id) {
                    return Err(format!("{id}: hi endpoint unowned"));
                }
            }
        }
        for n in self.nodes.iter().flatten() {
            if n.lo_owners.is_empty() && n.hi_owners.is_empty() {
                return Err(format!("orphan node {:?}", n.value));
            }
        }
        Ok(())
    }

    /// Panicking wrapper for tests.
    #[track_caller]
    pub fn assert_invariants(&self) {
        if let Err(e) = self.check_invariants() {
            panic!("interval skip list invariant violated: {e}");
        }
    }

    /// Collects the markers a search would gather for a query landing in
    /// the level-0 gap just above `after` (`None` = before every node).
    fn simulate_gap_search(&self, after: Option<K>) -> Vec<IntervalId> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.universal);
        let mut cur = NIL;
        for l in (0..self.level).rev() {
            loop {
                let next = self.forward_of(cur, l);
                let advance = match (self.value_of(next), &after) {
                    (Some(nv), Some(a)) => nv <= a,
                    (Some(_), None) => false,
                    (None, _) => false,
                };
                if advance {
                    cur = next;
                } else {
                    let set = if cur == NIL {
                        &self.head_marks[l]
                    } else {
                        &self.node(cur).edge_marks[l]
                    };
                    set.extend_into(&mut out);
                    break;
                }
            }
        }
        out
    }
}

impl<K: Ord + Clone> StabIndex<K> for IntervalSkipList<K> {
    fn stab_into(&self, x: &K, out: &mut Vec<IntervalId>) {
        out.extend_from_slice(&self.universal);
        let mut cur = NIL;
        for l in (0..self.level).rev() {
            loop {
                let next = self.forward_of(cur, l);
                match self.value_of(next) {
                    Some(nv) if nv < x => cur = next,
                    Some(nv) if nv == x => {
                        self.node_unchecked(next).eq_marks.extend_into(out);
                        return;
                    }
                    _ => {
                        // Drop-down edge: it spans x.
                        let set = if cur == NIL {
                            &self.head_marks[l]
                        } else {
                            &self.node_unchecked(cur).edge_marks[l]
                        };
                        set.extend_into(out);
                        break;
                    }
                }
            }
        }
    }

    fn len(&self) -> usize {
        self.intervals.len()
    }
}

impl<K: Ord + Clone> DynamicStabIndex<K> for IntervalSkipList<K> {
    fn insert(&mut self, id: IntervalId, iv: Interval<K>) {
        assert!(
            !self.intervals.contains_key(&id.0),
            "duplicate interval id {id}"
        );
        self.intervals.insert(id.0, iv.clone());
        let lo_val = iv.lo().value().cloned();
        let hi_val = iv.hi().value().cloned();
        if lo_val.is_none() && hi_val.is_none() {
            self.universal.push(id);
            return;
        }
        if let Some(v) = lo_val {
            let n = self.ensure_node(v);
            self.node_mut(n).lo_owners.insert(id);
        }
        if let Some(v) = hi_val {
            let n = self.ensure_node(v);
            self.node_mut(n).hi_owners.insert(id);
        }
        self.place_marks(id, &iv);
    }

    fn remove(&mut self, id: IntervalId) -> Option<Interval<K>> {
        let iv = self.intervals.remove(&id.0)?;
        let lo_val = iv.lo().value().cloned();
        let hi_val = iv.hi().value().cloned();
        if lo_val.is_none() && hi_val.is_none() {
            self.universal.retain(|&u| u != id);
            return Some(iv);
        }
        self.clear_marks(id);
        if let Some(v) = &lo_val {
            let n = self.find_node(v).expect("lo endpoint node missing");
            self.node_mut(n).lo_owners.remove(id);
        }
        if let Some(v) = &hi_val {
            let n = self.find_node(v).expect("hi endpoint node missing");
            self.node_mut(n).hi_owners.remove(id);
        }
        let mut doomed: Vec<K> = Vec::new();
        for v in [&lo_val, &hi_val].into_iter().flatten() {
            if doomed.last() == Some(v) {
                continue;
            }
            let n = self.find_node(v).expect("endpoint node missing");
            let nn = self.node(n);
            if nn.lo_owners.is_empty() && nn.hi_owners.is_empty() {
                doomed.push(v.clone());
            }
        }
        for v in doomed {
            self.delete_value(&v);
        }
        Some(iv)
    }
}

impl<K: Ord + Clone> BulkBuild<K> for IntervalSkipList<K> {
    fn build(items: Vec<(IntervalId, Interval<K>)>) -> Self {
        let mut l = Self::new();
        for (id, iv) in items {
            l.insert(id, iv);
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(n: u32) -> IntervalId {
        IntervalId(n)
    }

    #[test]
    fn figure2_set() {
        let ivs = vec![
            (id(0), Interval::closed(9, 19)),
            (id(1), Interval::closed(2, 7)),
            (id(2), Interval::closed_open(1, 3)),
            (id(3), Interval::closed(17, 20)),
            (id(4), Interval::closed(7, 12)),
            (id(5), Interval::point(18)),
            (id(6), Interval::at_most(17)),
        ];
        let l = IntervalSkipList::build(ivs.clone());
        l.assert_invariants();
        for x in -2..25 {
            let mut got = l.stab(&x);
            got.sort();
            let mut want: Vec<IntervalId> = ivs
                .iter()
                .filter(|(_, iv)| iv.contains(&x))
                .map(|(i, _)| *i)
                .collect();
            want.sort();
            assert_eq!(got, want, "at {x}");
        }
    }

    #[test]
    fn insert_remove_cycles() {
        let mut l: IntervalSkipList<i32> = IntervalSkipList::new();
        for round in 0..10 {
            for i in 0..40u32 {
                let a = ((i * 17 + round * 7) % 200) as i32;
                l.insert(id(round * 100 + i), Interval::closed(a, a + 30));
            }
            for i in 0..40u32 {
                if i % 2 == 0 {
                    assert!(l.remove(id(round * 100 + i)).is_some());
                }
            }
        }
        assert_eq!(l.len(), 10 * 20);
        l.assert_invariants();
        // Cross-check against definition.
        for x in [-5, 0, 50, 100, 199, 230, 500] {
            let got = l.stab(&x).len();
            let want = l.intervals.values().filter(|iv| iv.contains(&x)).count();
            assert_eq!(got, want, "at {x}");
        }
    }

    #[test]
    fn unbounded_and_universal() {
        let mut l = IntervalSkipList::new();
        l.insert(id(0), Interval::<i32>::unbounded());
        l.insert(id(1), Interval::at_least(10));
        l.insert(id(2), Interval::less_than(10));
        let sorted = |l: &IntervalSkipList<i32>, x: i32| {
            let mut v = l.stab(&x);
            v.sort();
            v
        };
        assert_eq!(sorted(&l, 5), vec![id(0), id(2)]);
        assert_eq!(sorted(&l, 10), vec![id(0), id(1)]);
        assert_eq!(sorted(&l, 15), vec![id(0), id(1)]);
        l.remove(id(0)).unwrap();
        assert_eq!(sorted(&l, 5), vec![id(2)]);
    }
}
