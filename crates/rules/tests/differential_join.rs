//! Differential testing of the incremental join memo: drive a
//! [`RuleEngine`] through randomized streams of inserts, deletes,
//! updates, and rule add/removes (including retroactive adds), and
//! after every operation compare each join condition's complete-match
//! set against [`joinmemo::naive::full_matches`] — a stateless
//! from-scratch evaluator over the same database. Any drift between
//! the memoized and recomputed answers is a retraction or extension
//! bug in the beta layer.

use joinmemo::naive::full_matches;
use joinmemo::CompiledJoin;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use relation::{AttrType, Database, Schema, TupleId, Value};
use rules::{Action, Rule, RuleEngine};

const RELS: [&str; 3] = ["dept", "emp", "proj"];

fn schema_for(name: &str) -> Schema {
    match name {
        "emp" => Schema::builder("emp")
            .attr("dno", AttrType::Int)
            .attr("salary", AttrType::Int)
            .build(),
        "dept" => Schema::builder("dept")
            .attr("dno", AttrType::Int)
            .attr("floor", AttrType::Int)
            .build(),
        _ => Schema::builder("proj")
            .attr("dno", AttrType::Int)
            .attr("badge", AttrType::Int)
            .build(),
    }
}

/// Join conditions under test: 2- and 3-premise equality chains,
/// alpha-constrained premises, and a cross-relation ordering join.
const JOIN_CONDS: [&str; 5] = [
    "emp.dno = dept.dno",
    "emp.dno = dept.dno and dept.floor > 2",
    "emp.dno = dept.dno and emp.salary > 5",
    "emp.dno = dept.dno and dept.dno = proj.dno",
    "emp.salary > dept.floor",
];

/// Plain single-relation conditions mixed in so join and non-join
/// agenda entries interleave.
const PLAIN_CONDS: [&str; 2] = ["emp.salary > 8", "dept.floor < 2"];

fn row_for(rng: &mut StdRng, rel: &str) -> Vec<Value> {
    // A narrow key domain so joins actually collide.
    let key = rng.gen_range(0..4i64);
    let other = rng.gen_range(0..10i64);
    match rel {
        "emp" => vec![Value::Int(key), Value::Int(other)],
        "dept" => vec![Value::Int(key), Value::Int(other % 5)],
        _ => vec![Value::Int(key), Value::Int(other)],
    }
}

fn live_ids(engine: &RuleEngine, rel: &str) -> Vec<TupleId> {
    engine
        .db()
        .catalog()
        .relation(rel)
        .map(|r| r.iter().map(|(id, _)| id).collect())
        .unwrap_or_default()
}

/// Asserts every join condition of every rule agrees with the naive
/// evaluator, and that the memoized complete-match sets are exactly
/// the from-scratch ones (sorted tuple-id vectors both sides).
fn assert_parity(engine: &RuleEngine, context: &str) {
    let rules: Vec<_> = engine
        .rules_detail()
        .map(|(id, rule, _)| (id, rule.name.clone(), rule.joins.clone()))
        .collect();
    for (id, name, joins) in rules {
        if joins.is_empty() {
            continue;
        }
        let memoized = engine.join_matches(id).expect("rule exists");
        assert_eq!(memoized.len(), joins.len(), "{context}: condition count");
        for (ci, join) in joins.iter().enumerate() {
            let compiled = CompiledJoin::compile(join, engine.db().catalog())
                .expect("registered joins compile");
            let mut naive = full_matches(&compiled, engine.db().catalog());
            naive.sort();
            let mut memo = memoized[ci].clone();
            memo.sort();
            assert_eq!(
                memo, naive,
                "{context}: rule {id:?} ({name}) condition {ci} diverged from naive"
            );
        }
    }
}

fn join_rule(rng: &mut StdRng, n: u64) -> Rule {
    let cond = JOIN_CONDS[rng.gen_range(0..JOIN_CONDS.len())];
    Rule::builder(format!("join-{n}"))
        .when(cond)
        .expect("fixed condition parses")
        .then(Action::log("joined"))
        .priority(rng.gen_range(-1..2))
        .build()
}

fn plain_rule(rng: &mut StdRng, n: u64) -> Rule {
    let cond = PLAIN_CONDS[rng.gen_range(0..PLAIN_CONDS.len())];
    Rule::builder(format!("plain-{n}"))
        .when(cond)
        .expect("fixed condition parses")
        .then(Action::log("plain"))
        .build()
}

fn run_seed(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for rel in RELS {
        db.create_relation(schema_for(rel)).unwrap();
    }
    let mut engine = RuleEngine::new(db);
    let mut rule_n = 0u64;

    // Start with one join rule so early inserts exercise the memo.
    engine.add_rule(join_rule(&mut rng, rule_n)).unwrap();
    rule_n += 1;

    for op in 0..60 {
        let context = format!("seed {seed} op {op}");
        let roll = rng.gen_range(0..100);
        if roll < 45 {
            let rel = RELS.choose(&mut rng).copied().unwrap();
            let row = row_for(&mut rng, rel);
            engine.insert(rel, row).unwrap();
        } else if roll < 65 {
            let rel = RELS.choose(&mut rng).copied().unwrap();
            if let Some(&id) = live_ids(&engine, rel).choose(&mut rng) {
                engine.delete(rel, id).unwrap();
            }
        } else if roll < 80 {
            let rel = RELS.choose(&mut rng).copied().unwrap();
            if let Some(&id) = live_ids(&engine, rel).choose(&mut rng) {
                let row = row_for(&mut rng, rel);
                engine.update(rel, id, row).unwrap();
            }
        } else if roll < 90 {
            // Retroactive adds must seed the memo to exactly the
            // naive answer over the pre-existing tuples.
            let rule = if rng.gen_bool(0.7) {
                join_rule(&mut rng, rule_n)
            } else {
                plain_rule(&mut rng, rule_n)
            };
            rule_n += 1;
            if rng.gen_bool(0.5) {
                engine.add_rule_retroactive(rule).unwrap();
            } else {
                engine.add_rule(rule).unwrap();
            }
        } else {
            let ids: Vec<_> = engine.rules_detail().map(|(id, _, _)| id).collect();
            if ids.len() > 1 {
                let id = *ids.choose(&mut rng).unwrap();
                engine.remove_rule(id).unwrap();
            }
        }
        assert_parity(&engine, &context);
    }

    // End-of-stream: the memo digest must be reproducible from scratch
    // (the durable crash tests lean on this invariant).
    let before = engine.join_fingerprint();
    assert_parity(&engine, &format!("seed {seed} final"));
    assert_eq!(engine.join_fingerprint(), before);
}

#[test]
fn memoized_joins_match_naive_over_randomized_streams() {
    for seed in 0..120 {
        run_seed(seed);
    }
}
