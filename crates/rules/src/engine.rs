//! The forward-chaining rule engine.
//!
//! This is the application layer the paper builds its index for: every
//! inserted, updated, or deleted tuple is matched against all rule
//! selection conditions through a [`PredicateIndex`] (the Figure 1
//! discrimination network), matching rule instantiations go on an
//! agenda ordered by priority then recency, and fired actions may queue
//! further database operations whose events are matched in turn —
//! forward chaining, with a firing limit as the runaway guard.
//!
//! Multi-relation (join) conditions — which the paper left out of scope
//! and §6 sketched as a two-layer network — are handled by the
//! `joinmemo` beta layer: each premise of a join condition registers in
//! the predicate index like any single-relation condition (Figure 1
//! stays the alpha layer), matched premise tuples feed the join memo,
//! and complete matches enter the agenda with all bound tuples.

use crate::rule::{Action, BoundTuple, DbOp, Rule, RuleContext, RuleId};
use joinmemo::{Binding, CompileError, CompiledJoin, JoinEngine, MemoStats};
use predicate::JoinCondition;
use predindex::{IndexError, MatchTrace, Matcher, PredicateId, ShardStats, ShardedPredicateIndex};
use relation::fx::FnvHashMap;
use relation::{CatalogError, Database, Relation, Schema, Tuple, TupleEvent, TupleId, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;
use telemetry::{Counter, Histogram, Profiler, Registry, Tracer, WorkloadStats};

/// Errors from engine operations.
#[derive(Debug)]
pub enum EngineError {
    /// Rule condition failed to register (unknown relation/attribute,
    /// type error).
    Index(IndexError),
    /// Database mutation failed.
    Catalog(CatalogError),
    /// Forward chaining exceeded the firing limit — almost certainly a
    /// rule loop.
    FiringLimit { limit: usize },
    /// No rule with the given id.
    NoSuchRule(RuleId),
    /// A join condition failed to compile (unknown relation/attribute,
    /// cross-relation type mismatch).
    Join(CompileError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Index(e) => write!(f, "{e}"),
            EngineError::Catalog(e) => write!(f, "{e}"),
            EngineError::FiringLimit { limit } => {
                write!(f, "forward chaining exceeded {limit} firings (rule loop?)")
            }
            EngineError::NoSuchRule(id) => write!(f, "no such rule {id}"),
            EngineError::Join(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> Self {
        EngineError::Join(e)
    }
}

impl From<IndexError> for EngineError {
    fn from(e: IndexError) -> Self {
        EngineError::Index(e)
    }
}

impl From<CatalogError> for EngineError {
    fn from(e: CatalogError) -> Self {
        EngineError::Catalog(e)
    }
}

/// One rule firing with its bound tuples (empty for single-relation
/// firings) — the detailed counterpart of [`FireReport::fired`].
#[derive(Debug, Clone)]
pub struct Firing {
    /// The fired rule.
    pub rule: RuleId,
    /// The rule's name.
    pub name: String,
    /// For multi-premise firings: every premise's bound tuple, in
    /// premise order. Empty for single-relation firings.
    pub bindings: Vec<BoundTuple>,
}

/// What happened while processing one external mutation.
#[derive(Debug, Clone, Default)]
pub struct FireReport {
    /// `(rule, rule name)` in firing order, across the whole chain.
    pub fired: Vec<(RuleId, String)>,
    /// The same firings with their join bindings attached (parallel to
    /// `fired`).
    pub firings: Vec<Firing>,
    /// Number of database operations applied (1 external + cascaded).
    pub ops_applied: usize,
}

/// What [`RuleEngine::register_joins`] hands back: one memo key per
/// condition, the premise predicate ids entered into the alpha index,
/// and the complete matches discovered while seeding.
type RegisteredJoins = (Vec<u64>, Vec<Vec<PredicateId>>, Vec<Binding>);

struct StoredRule {
    rule: Rule,
    predicate_ids: Vec<PredicateId>,
    /// Per join condition (parallel to `rule.joins`): the engine-wide
    /// memo key and the premise predicate ids registered in the index.
    join_keys: Vec<u64>,
    join_pids: Vec<Vec<PredicateId>>,
    fired: u64,
}

/// The engine-level metric handles, pre-resolved at attach time.
/// Disabled handles (the default) cost one branch per recording site.
struct EngineMetrics {
    /// Rule firings across all chains.
    fired: Counter,
    /// Database operations applied (external + cascaded).
    ops: Counter,
    /// Levels per recognize-act chain (1 = no cascading).
    cascade_depth: Histogram,
    /// Events matched per chain level.
    events_per_level: Histogram,
}

impl EngineMetrics {
    fn disabled() -> Self {
        EngineMetrics {
            fired: Counter::disabled(),
            ops: Counter::disabled(),
            cascade_depth: Histogram::disabled(),
            events_per_level: Histogram::disabled(),
        }
    }

    fn from_registry(registry: &Arc<Registry>) -> Self {
        EngineMetrics {
            fired: registry.counter("rules_fired_total"),
            ops: registry.counter("rules_ops_applied_total"),
            cascade_depth: registry.histogram("rules_cascade_depth"),
            events_per_level: registry.histogram("rules_events_per_level"),
        }
    }
}

/// The engine: a [`Database`] plus rules indexed by a
/// [`ShardedPredicateIndex`] — the concurrent front-end over the
/// paper's index, so each recognize-act cycle batch-matches every event
/// queued at that level across worker threads.
pub struct RuleEngine {
    db: Database,
    index: ShardedPredicateIndex,
    rules: FnvHashMap<u32, StoredRule>,
    pred_to_rule: FnvHashMap<u32, u32>,
    /// Premise predicate id -> (rule, memo key, premise index): routes
    /// alpha matches of join premises into the beta layer.
    pred_to_premise: FnvHashMap<u32, (u32, u64, usize)>,
    joins: JoinEngine,
    next_rule: u32,
    /// Engine-wide memo-key counter — keys stay stable across
    /// `drop_relation`'s vector compaction.
    next_join: u64,
    log: Vec<String>,
    firing_limit: usize,
    total_fired: u64,
    registry: Arc<Registry>,
    metrics: EngineMetrics,
    tracer: Tracer,
    /// Cost attribution (disabled by default; one branch per site).
    profiler: Profiler,
}

impl RuleEngine {
    /// Wraps a database with an empty rule set. Metrics start disabled;
    /// see [`with_metrics`](Self::with_metrics) and
    /// [`attach_metrics`](Self::attach_metrics).
    pub fn new(db: Database) -> Self {
        RuleEngine {
            db,
            index: ShardedPredicateIndex::new(),
            rules: FnvHashMap::default(),
            pred_to_rule: FnvHashMap::default(),
            pred_to_premise: FnvHashMap::default(),
            joins: JoinEngine::new(),
            next_rule: 0,
            next_join: 0,
            log: Vec::new(),
            firing_limit: 10_000,
            total_fired: 0,
            registry: Arc::new(Registry::disabled()),
            metrics: EngineMetrics::disabled(),
            tracer: Tracer::disabled(),
            profiler: Profiler::disabled(),
        }
    }

    /// [`new`](Self::new) with a live metrics registry already attached
    /// — the one-liner for "give me an observable engine".
    pub fn with_metrics(db: Database) -> Self {
        let mut engine = Self::new(db);
        engine.attach_metrics(Arc::new(Registry::new()));
        engine
    }

    /// Points the engine (and its predicate index) at `registry`. All
    /// engine- and index-level metric families are recorded there from
    /// now on; pass `Registry::disabled()` to turn recording back off.
    pub fn attach_metrics(&mut self, registry: Arc<Registry>) {
        self.attach_telemetry(registry, Tracer::disabled());
    }

    /// [`attach_metrics`](Self::attach_metrics) plus a span tracer.
    /// Every recognize-act chain records `cascade` / `cascade_level` /
    /// `match_level` / `rule_fire` spans, and the predicate index adds
    /// its `shard_lock` / `predindex_stab` / `predindex_residual`
    /// spans, all into `tracer`'s shared ring.
    pub fn attach_telemetry(&mut self, registry: Arc<Registry>, tracer: Tracer) {
        self.metrics = if registry.is_enabled() {
            EngineMetrics::from_registry(&registry)
        } else {
            EngineMetrics::disabled()
        };
        self.index.attach_telemetry(&registry, tracer.clone());
        self.joins.attach_metrics(&registry);
        self.registry = registry;
        self.tracer = tracer;
    }

    /// The span tracer (disabled unless
    /// [`attach_telemetry`](Self::attach_telemetry) supplied one).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Attaches workload accounts to the predicate index: per-attribute
    /// op mix, clause shapes, and stab selectivity feeding the index
    /// advisor. Build the handle over the *same* registry as
    /// [`attach_metrics`](Self::attach_metrics) so the `workload_*`
    /// families land beside the engine's own.
    pub fn attach_workload(&mut self, workload: WorkloadStats) {
        self.index.attach_workload(workload);
    }

    /// The workload accounts handle (disabled unless
    /// [`attach_workload`](Self::attach_workload) supplied one).
    pub fn workload(&self) -> &WorkloadStats {
        self.index.workload()
    }

    /// Attaches a cost-attribution [`Profiler`]. Build it over the
    /// *same* registry as [`attach_telemetry`](Self::attach_telemetry)
    /// — the profiler bills accounts by snapshotting the global cost
    /// counters, so a different registry would bill zeros. Separate
    /// from `attach_telemetry` on purpose: attribution regroups the
    /// level batch by account, which plain telemetry must not do.
    /// Already-registered rules get their display names immediately.
    pub fn attach_profiler(&mut self, profiler: Profiler) {
        if profiler.is_enabled() {
            for (&rid, s) in &self.rules {
                profiler.name_rule(rid, &s.rule.name);
            }
        }
        self.profiler = profiler;
    }

    /// The attached profiler (disabled by default).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Per-shard predicate-index structure (lock-occupancy and balance
    /// diagnostics — the `/health` endpoint's imbalance source).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.index.shard_stats()
    }

    /// The metrics registry — render it with
    /// [`Registry::render_text`] or query individual values. Disabled
    /// (empty) unless [`attach_metrics`](Self::attach_metrics) /
    /// [`with_metrics`](Self::with_metrics) was used.
    pub fn metrics(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Changes the per-mutation firing limit (runaway-chain guard).
    pub fn set_firing_limit(&mut self, limit: usize) {
        self.firing_limit = limit;
    }

    /// Read access to the database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Creates a relation in the underlying database.
    pub fn create_relation(&mut self, schema: Schema) -> Result<(), EngineError> {
        self.db.create_relation(schema)?;
        Ok(())
    }

    /// Drops a relation and unregisters every rule condition that
    /// referenced it from the predicate index, so dropped relations
    /// stop matching immediately. Rules keep their identity (and any
    /// conditions on other relations); a rule whose last condition is
    /// removed goes dormant. The removal is permanent: recreating a
    /// relation under the same name does **not** resurrect conditions —
    /// predicates bind against a schema at registration time, and the
    /// new relation's schema need not be compatible.
    pub fn drop_relation(&mut self, name: &str) -> Result<Relation, EngineError> {
        let rel = self.db.drop_relation(name)?;
        for stored in self.rules.values_mut() {
            // `conditions` and `predicate_ids` are parallel vectors.
            let mut i = 0;
            while i < stored.rule.conditions.len() {
                if stored.rule.conditions[i].relation() == name {
                    let pid = stored.predicate_ids.remove(i);
                    stored.rule.conditions.remove(i);
                    self.index.remove(pid);
                    self.pred_to_rule.remove(&pid.0);
                } else {
                    i += 1;
                }
            }
            // A join condition with *any* premise over the dropped
            // relation can never complete again — unregister it whole
            // (`joins` / `join_keys` / `join_pids` are parallel).
            let mut j = 0;
            while j < stored.rule.joins.len() {
                let touches = stored.rule.joins[j]
                    .premises()
                    .iter()
                    .any(|p| p.relation() == name);
                if touches {
                    let key = stored.join_keys.remove(j);
                    let pids = stored.join_pids.remove(j);
                    stored.rule.joins.remove(j);
                    for pid in pids {
                        self.index.remove(pid);
                        self.pred_to_premise.remove(&pid.0);
                    }
                    self.joins.unregister(key);
                } else {
                    j += 1;
                }
            }
        }
        Ok(rel)
    }

    /// The engine log (appended to by `Action::Log` and
    /// `RuleContext::log`).
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Total rule firings since construction.
    pub fn total_fired(&self) -> u64 {
        self.total_fired
    }

    /// Number of registered rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Registers a rule; its condition predicates enter the predicate
    /// index. Join conditions additionally register every premise in
    /// the index (alpha layer) and seed a beta memo from the tuples
    /// already in the database — seeding does **not** fire the rule
    /// (see [`add_rule_retroactive`](Self::add_rule_retroactive)), it
    /// only brings the partial-match state up to date so the next
    /// insert extends the right prefixes.
    pub fn add_rule(&mut self, rule: Rule) -> Result<RuleId, EngineError> {
        Ok(self.add_rule_inner(rule)?.0)
    }

    fn add_rule_inner(&mut self, rule: Rule) -> Result<(RuleId, Vec<Binding>), EngineError> {
        let mut predicate_ids = Vec::with_capacity(rule.conditions.len());
        for pred in &rule.conditions {
            match self.index.insert(pred.clone(), self.db.catalog()) {
                Ok(pid) => predicate_ids.push(pid),
                Err(e) => {
                    // Roll back the partial registration.
                    for pid in predicate_ids {
                        self.index.remove(pid);
                    }
                    return Err(e.into());
                }
            }
        }
        match self.register_joins(self.next_rule, &rule.joins) {
            Ok((join_keys, join_pids, seeds)) => {
                let id = RuleId(self.next_rule);
                self.next_rule += 1;
                for &pid in &predicate_ids {
                    self.pred_to_rule.insert(pid.0, id.0);
                }
                self.profiler.name_rule(id.0, &rule.name);
                self.rules.insert(
                    id.0,
                    StoredRule {
                        rule,
                        predicate_ids,
                        join_keys,
                        join_pids,
                        fired: 0,
                    },
                );
                Ok((id, seeds))
            }
            Err(e) => {
                for pid in predicate_ids {
                    self.index.remove(pid);
                }
                Err(e)
            }
        }
    }

    /// Compiles and registers `joins` for rule `rid`: each premise
    /// enters the predicate index, each condition gets a stable memo
    /// key, and each memo is seeded from the existing tuples. Returns
    /// the keys, premise predicate ids, and the complete matches
    /// seeding discovered. Rolls itself back on failure.
    fn register_joins(
        &mut self,
        rid: u32,
        joins: &[JoinCondition],
    ) -> Result<RegisteredJoins, EngineError> {
        // Compile everything first: compilation is pure, so a failure
        // here leaves nothing to roll back.
        let mut compiled = Vec::with_capacity(joins.len());
        for join in joins {
            compiled.push(CompiledJoin::compile(join, self.db.catalog())?);
        }
        // Alpha layer: every premise is an ordinary single-relation
        // predicate in the Figure 1 index.
        let mut join_pids: Vec<Vec<PredicateId>> = Vec::with_capacity(compiled.len());
        for cj in &compiled {
            let mut pids = Vec::with_capacity(cj.arity());
            for premise in cj.condition().premises() {
                match self.index.insert(premise.clone(), self.db.catalog()) {
                    Ok(pid) => pids.push(pid),
                    Err(e) => {
                        for pid in pids.into_iter().chain(join_pids.into_iter().flatten()) {
                            self.index.remove(pid);
                        }
                        return Err(e.into());
                    }
                }
            }
            join_pids.push(pids);
        }
        // Beta layer: stable keys, premise routing, memo registration,
        // and a silent seed (the memo must hold every valid premise
        // prefix over the current tuples before the next event).
        let mut join_keys = Vec::with_capacity(compiled.len());
        let mut seeds = Vec::new();
        for (cj, pids) in compiled.into_iter().zip(&join_pids) {
            let key = self.next_join;
            self.next_join += 1;
            for (premise, pid) in pids.iter().enumerate() {
                self.pred_to_premise.insert(pid.0, (rid, key, premise));
            }
            self.joins.register(key, cj);
            seeds.extend(self.joins.seed(key, self.db.catalog()));
            join_keys.push(key);
        }
        Ok((join_keys, join_pids, seeds))
    }

    /// Registers a rule and immediately fires it on every tuple already
    /// in the database that satisfies its condition (as if each had just
    /// been inserted). Returns the rule id and the backfill report.
    ///
    /// This is how a trigger system brings a new rule up to date with
    /// existing facts — tuple-driven matching (the paper's problem) only
    /// covers changes arriving *after* registration.
    pub fn add_rule_retroactive(
        &mut self,
        rule: Rule,
    ) -> Result<(RuleId, FireReport), EngineError> {
        let (id, join_seeds) = self.add_rule_inner(rule)?;
        let stored = &self.rules[&id.0];
        // Collect matching existing tuples per condition, deduplicated
        // per tuple (a tuple matching several disjuncts fires once).
        let mut seeds: Vec<TupleEvent> = Vec::new();
        let mut seen: Vec<(String, TupleId)> = Vec::new();
        for pred in &stored.rule.conditions {
            let Some(rel) = self.db.catalog().relation(pred.relation()) else {
                continue;
            };
            let schema = rel.schema();
            let Ok(bound) = pred.bind(schema) else {
                continue;
            };
            for (tid, tuple) in bound.scan(rel) {
                let key = (pred.relation().to_string(), tid);
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                seeds.push(TupleEvent::Inserted {
                    relation: pred.relation().to_string(),
                    id: tid,
                    tuple: tuple.clone(),
                });
            }
        }
        // Fire only the NEW rule on the backfill seeds (other rules
        // already saw these tuples when they actually arrived); any
        // database operations the firings queue chain normally through
        // every rule.
        let mut report = FireReport::default();
        for seed in seeds {
            if !self.rules[&id.0].rule.mask.on_insert {
                break;
            }
            if report.fired.len() >= self.firing_limit {
                return Err(EngineError::FiringLimit {
                    limit: self.firing_limit,
                });
            }
            let follow_ups = self.fire_one(id.0, &seed, &[], &mut report)?;
            for ev in follow_ups {
                let r = self.chain(ev)?;
                report.fired.extend(r.fired);
                report.firings.extend(r.firings);
                report.ops_applied += r.ops_applied;
            }
        }
        // Join backfill: every complete match seeding discovered fires
        // once, presented as an insert of its last premise's tuple
        // (seeding runs premises in ascending order, so that is the
        // tuple whose arrival would have completed the match).
        for binding in join_seeds {
            if !self.rules[&id.0].rule.mask.on_insert {
                break;
            }
            if report.fired.len() >= self.firing_limit {
                return Err(EngineError::FiringLimit {
                    limit: self.firing_limit,
                });
            }
            let Some((relation, tid, tuple)) = binding.tuples.last().cloned() else {
                continue;
            };
            let ev = TupleEvent::Inserted {
                relation,
                id: tid,
                tuple,
            };
            let bound: Vec<BoundTuple> = binding
                .tuples
                .iter()
                .map(|(relation, id, tuple)| BoundTuple {
                    relation: relation.clone(),
                    id: *id,
                    tuple: tuple.clone(),
                })
                .collect();
            let follow_ups = self.fire_one(id.0, &ev, &bound, &mut report)?;
            for ev in follow_ups {
                let r = self.chain(ev)?;
                report.fired.extend(r.fired);
                report.firings.extend(r.firings);
                report.ops_applied += r.ops_applied;
            }
        }
        Ok((id, report))
    }

    /// Unregisters a rule and its predicates.
    pub fn remove_rule(&mut self, id: RuleId) -> Result<Rule, EngineError> {
        let stored = self
            .rules
            .remove(&id.0)
            .ok_or(EngineError::NoSuchRule(id))?;
        for pid in &stored.predicate_ids {
            self.index.remove(*pid);
            self.pred_to_rule.remove(&pid.0);
        }
        for (key, pids) in stored.join_keys.iter().zip(&stored.join_pids) {
            for pid in pids {
                self.index.remove(*pid);
                self.pred_to_premise.remove(&pid.0);
            }
            self.joins.unregister(*key);
        }
        Ok(stored.rule)
    }

    /// Inserts a tuple and runs the rule chain it triggers.
    pub fn insert(
        &mut self,
        relation: &str,
        values: Vec<Value>,
    ) -> Result<FireReport, EngineError> {
        let ev = self.db.insert_event(relation, values)?;
        self.chain(ev)
    }

    /// [`insert`](Self::insert) with an EXPLAIN trace: inserts the
    /// tuple, records the exact Figure 1 path it takes through the
    /// predicate index (relation hash, per-attribute IBS-tree stabs
    /// with attribute names from the schema, non-indexable sweep, every
    /// residual-test outcome), then runs the rule chain as usual.
    ///
    /// The trace covers the seed tuple's matching stage only — cascaded
    /// events match through the ordinary counted path.
    pub fn explain_insert(
        &mut self,
        relation: &str,
        values: Vec<Value>,
    ) -> Result<(MatchTrace, FireReport), EngineError> {
        let ev = self.db.insert_event(relation, values)?;
        let TupleEvent::Inserted { tuple, .. } = &ev else {
            // srclint:allow(no-panic-in-lib): insert_event constructs only Inserted events
            unreachable!("insert_event yields Inserted")
        };
        let mut trace = self.index.explain_tuple(relation, tuple);
        // The index speaks schema positions; the engine knows names.
        if let Some(rel) = self.db.catalog().relation(relation) {
            let attrs = rel.schema().attributes();
            for stab in &mut trace.stabs {
                if let Some(a) = attrs.get(stab.attr) {
                    stab.attr_name = a.name.clone();
                }
            }
        }
        let report = self.chain(ev)?;
        // Beta-layer narration: which join premises the tuple
        // alpha-matched, the memo state those matches produced, and the
        // complete matches that fired during the chain.
        for pid in trace.matched() {
            let Some(&(rid, key, premise)) = self.pred_to_premise.get(&pid) else {
                continue;
            };
            let Some(stored) = self.rules.get(&rid) else {
                continue;
            };
            let mut line = format!(
                "premise {} of rule {:?} matched",
                premise + 1,
                stored.rule.name
            );
            if let Some(stats) = self.joins.stats_for(key) {
                line.push_str(&format!(
                    " ({}); tokens per level {:?}, {} complete",
                    stats.relations.join(" ⋈ "),
                    stats.level_counts,
                    stats.level_counts.last().copied().unwrap_or(0),
                ));
            }
            trace.join_steps.push(line);
        }
        for firing in &report.firings {
            if firing.bindings.is_empty() {
                continue;
            }
            let bound: Vec<String> = firing
                .bindings
                .iter()
                .map(|b| format!("{}#{}{}", b.relation, b.id.0, b.tuple))
                .collect();
            trace.join_steps.push(format!(
                "complete match fired rule {:?}: {}",
                firing.name,
                bound.join(" * ")
            ));
        }
        Ok((trace, report))
    }

    /// Updates a tuple and runs the rule chain it triggers.
    pub fn update(
        &mut self,
        relation: &str,
        id: TupleId,
        values: Vec<Value>,
    ) -> Result<FireReport, EngineError> {
        let ev = self.db.update_event(relation, id, values)?;
        self.chain(ev)
    }

    /// Deletes a tuple and runs the rule chain it triggers.
    pub fn delete(&mut self, relation: &str, id: TupleId) -> Result<FireReport, EngineError> {
        let ev = self.db.delete_event(relation, id)?;
        self.chain(ev)
    }

    /// Inserts a batch of tuples, then runs the rule chain over all of
    /// them as one matching level. Firing order is exactly what
    /// inserting them one at a time would produce (the chain is
    /// breadth-first either way), but the matching stage runs once over
    /// the whole batch, fanned out across worker threads — the bulk-load
    /// path for trigger systems.
    pub fn insert_batch(
        &mut self,
        relation: &str,
        rows: Vec<Vec<Value>>,
    ) -> Result<FireReport, EngineError> {
        let mut events = Vec::with_capacity(rows.len());
        for values in rows {
            events.push(self.db.insert_event(relation, values)?);
        }
        self.chain_level(events)
    }

    /// The recognize-act cycle for a single seed event.
    fn chain(&mut self, first: TupleEvent) -> Result<FireReport, EngineError> {
        self.chain_level(vec![first])
    }

    /// The recognize-act cycle, level by level, with abort repair: if
    /// the chain errors midway (firing limit, bad cascaded operation),
    /// the database holds tuples whose events never reached the beta
    /// layer, so the join memos are rebuilt wholesale from the
    /// post-abort database before the error propagates. The rebuild is
    /// deterministic, so WAL replay — which re-executes the same
    /// command into the same error — repairs to the same memo.
    fn chain_level(&mut self, level: Vec<TupleEvent>) -> Result<FireReport, EngineError> {
        let result = self.chain_level_inner(level);
        if result.is_err() && !self.joins.is_empty() {
            self.joins.reseed_all(self.db.catalog());
        }
        result
    }

    /// The recognize-act cycle, level by level: batch-match every event
    /// queued at this level in one [`ShardedPredicateIndex::match_batch`]
    /// call, then walk the events in arrival order — agenda, fire, queue
    /// the actions' database events for the next level. Equivalent to
    /// the one-event-at-a-time FIFO loop (matching is pure and the rule
    /// set cannot change mid-chain: firing only queues database
    /// operations), but the matching stage parallelizes across the
    /// batch.
    fn chain_level_inner(&mut self, mut level: Vec<TupleEvent>) -> Result<FireReport, EngineError> {
        let mut report = FireReport::default();
        let mut depth = 0u64;
        // Cheap handle copy so span guards don't hold a `self` borrow.
        let tracer = self.tracer.clone();
        let _cascade = tracer.span_with("cascade", || vec![("seeds", level.len().to_string())]);
        // Attribution tags, parallel to `level`: the billing account of
        // each event — `None` (external) for the client-injected level
        // 0, the producing rule for cascaded events. Maintained only
        // when the profiler records, so the disabled path pays exactly
        // the `profiling` branch.
        let profiling = self.profiler.is_enabled();
        let mut tags: Vec<Option<u32>> = if profiling {
            vec![None; level.len()]
        } else {
            Vec::new()
        };
        while !level.is_empty() {
            depth += 1;
            let _level_span = tracer.span_with("cascade_level", || {
                vec![
                    ("level", depth.to_string()),
                    ("events", level.len().to_string()),
                ]
            });
            self.metrics.events_per_level.record(level.len() as u64);
            // The tuple to match: the post-state for insert/update, the
            // removed tuple for delete (so cleanup rules can see it).
            let batch: Vec<(&str, &Tuple)> = level
                .iter()
                .map(|event| {
                    let tuple = match event {
                        TupleEvent::Inserted { tuple, .. } => tuple,
                        TupleEvent::Updated { new, .. } => new,
                        TupleEvent::Deleted { tuple, .. } => tuple,
                    };
                    (event.relation(), tuple)
                })
                .collect();
            let matches = {
                let _match =
                    tracer.span_with("match_level", || vec![("tuples", batch.len().to_string())]);
                if profiling {
                    self.match_level_accounted(&batch, &tags)
                } else {
                    self.index.match_batch(&batch)
                }
            };
            drop(batch);

            let mut next: Vec<TupleEvent> = Vec::new();
            let mut next_tags: Vec<Option<u32>> = Vec::new();
            for (pos, (event, matched)) in level.iter().zip(matches).enumerate() {
                let account = tags.get(pos).copied().flatten();
                report.ops_applied += 1;
                self.metrics.ops.inc();
                self.profiler.credit_op(account);

                // Beta-layer maintenance runs on *every* event,
                // regardless of rule masks (masks gate firing, not
                // memo consistency): updates and deletes first retract
                // the tuple's old tokens, then the insert/update
                // post-state extends partial matches through every
                // premise it alpha-matched.
                let (tid, post): (u32, Option<&Tuple>) = match event {
                    TupleEvent::Inserted { id, tuple, .. } => (id.0, Some(tuple)),
                    TupleEvent::Updated { id, new, .. } => (id.0, Some(new)),
                    TupleEvent::Deleted { id, .. } => (id.0, None),
                };
                if !matches!(event, TupleEvent::Inserted { .. }) && !self.joins.is_empty() {
                    if profiling {
                        // Bill each condition's retractions to the
                        // rule owning it.
                        for (key, n) in self.joins.retract_counted(event.relation(), tid) {
                            if let Some(rid) = self.join_owner(key) {
                                self.profiler.credit_join_retractions(rid, n);
                            }
                        }
                    } else {
                        self.joins.retract(event.relation(), tid);
                    }
                }

                // Build the agenda: one instantiation per *rule* for
                // single-relation conditions (a rule whose DNF has
                // several matching disjuncts still fires once), plus
                // one instantiation per newly *completed join match*,
                // ordered by priority descending, then registration
                // recency (newest first), OPS5-style. The stable sort
                // keeps a rule's plain instantiation ahead of its join
                // instantiations at equal (priority, rule).
                let mut agenda: Vec<(i32, u32, Option<Vec<BoundTuple>>)> = Vec::new();
                let mut join_entries: Vec<(i32, u32, Option<Vec<BoundTuple>>)> = Vec::new();
                for pid in matched {
                    if let Some(&(rid, key, premise)) = self.pred_to_premise.get(&pid.0) {
                        let Some(tuple) = post else {
                            continue; // deletes only retract
                        };
                        let out = self.joins.insert(key, premise, tid, tuple);
                        self.profiler.credit_join_probes(rid, out.probes);
                        let stored = &self.rules[&rid];
                        if !stored.rule.mask.accepts(event) {
                            continue;
                        }
                        for binding in out.bindings {
                            let bound = binding
                                .tuples
                                .into_iter()
                                .map(|(relation, id, tuple)| BoundTuple {
                                    relation,
                                    id,
                                    tuple,
                                })
                                .collect();
                            join_entries.push((stored.rule.priority, rid, Some(bound)));
                        }
                        continue;
                    }
                    let Some(&rid) = self.pred_to_rule.get(&pid.0) else {
                        continue;
                    };
                    let stored = &self.rules[&rid];
                    if !stored.rule.mask.accepts(event) {
                        continue;
                    }
                    if !agenda.iter().any(|(_, r, _)| *r == rid) {
                        agenda.push((stored.rule.priority, rid, None));
                    }
                }
                agenda.extend(join_entries);
                agenda.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)));

                for (_, rid, bound) in agenda {
                    if report.fired.len() >= self.firing_limit {
                        return Err(EngineError::FiringLimit {
                            limit: self.firing_limit,
                        });
                    }
                    let bindings = bound.as_deref().unwrap_or(&[]);
                    let produced = self.fire_one(rid, event, bindings, &mut report)?;
                    if profiling {
                        // Cascaded events bill their producing rule.
                        next_tags.extend(std::iter::repeat_n(Some(rid), produced.len()));
                    }
                    next.extend(produced);
                }
            }
            level = next;
            tags = next_tags;
        }
        self.metrics.cascade_depth.record(depth);
        Ok(report)
    }

    /// The profiled matching stage: the level's events are grouped by
    /// billing account, each group batch-matched separately with the
    /// global cost counters snapshotted around it (exact deltas — the
    /// engine is serial), and the delta plus wall-clock credited to
    /// the account. Matching is pure, so regrouping changes no result
    /// and no global counter; only the per-call batch-size histogram
    /// distribution shifts.
    fn match_level_accounted(
        &self,
        batch: &[(&str, &Tuple)],
        tags: &[Option<u32>],
    ) -> Vec<Vec<PredicateId>> {
        let mut groups: BTreeMap<Option<u32>, Vec<usize>> = BTreeMap::new();
        for (i, &t) in tags.iter().enumerate() {
            groups.entry(t).or_default().push(i);
        }
        let mut out: Vec<Vec<PredicateId>> = vec![Vec::new(); batch.len()];
        for (account, positions) in groups {
            let sub: Vec<(&str, &Tuple)> = positions.iter().map(|&i| batch[i]).collect();
            let before = self.profiler.source_snapshot();
            let started = Instant::now();
            let results = self.index.match_batch(&sub);
            let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let mut delta = self.profiler.source_snapshot().delta_since(&before);
            delta.stab_nanos = nanos;
            self.profiler.credit_match(account, &delta);
            for (i, r) in positions.into_iter().zip(results) {
                out[i] = r;
            }
        }
        out
    }

    /// The rule owning join-condition `key`, via the premise routing
    /// table (retraction-attribution cold path).
    fn join_owner(&self, key: u64) -> Option<u32> {
        self.pred_to_premise
            .values()
            .find(|&&(_, k, _)| k == key)
            .map(|&(rid, _, _)| rid)
    }

    /// Fires one rule on one event: runs the action, applies its queued
    /// database operations, and returns the resulting events (which the
    /// caller feeds back into the chain).
    fn fire_one(
        &mut self,
        rid: u32,
        event: &TupleEvent,
        bindings: &[BoundTuple],
        report: &mut FireReport,
    ) -> Result<Vec<TupleEvent>, EngineError> {
        let tuple = match event {
            TupleEvent::Inserted { tuple, .. } => tuple.clone(),
            TupleEvent::Updated { new, .. } => new.clone(),
            TupleEvent::Deleted { tuple, .. } => tuple.clone(),
        };
        // srclint:allow(no-panic-in-lib): the agenda only holds ids of registered rules
        let stored = self.rules.get_mut(&rid).expect("agenda rule exists");
        let rule_name = stored.rule.name.clone();
        let action = stored.rule.action.clone();
        stored.fired += 1;
        self.total_fired += 1;
        self.metrics.fired.inc();
        self.profiler.credit_firing(rid);
        report.fired.push((RuleId(rid), rule_name.clone()));
        report.firings.push(Firing {
            rule: RuleId(rid),
            name: rule_name.clone(),
            bindings: bindings.to_vec(),
        });
        let tracer = self.tracer.clone();
        let _fire = tracer.span_with("rule_fire", || vec![("rule", rule_name.clone())]);

        let mut ops = Vec::new();
        match action {
            Action::Log(msg) => {
                let mut line = format!("[{rule_name}] {msg}: {}{}", event.relation(), tuple);
                if !bindings.is_empty() {
                    let parts: Vec<String> = bindings
                        .iter()
                        .map(|b| format!("{}#{}{}", b.relation, b.id.0, b.tuple))
                        .collect();
                    line.push_str(&format!(" [{}]", parts.join(" * ")));
                }
                self.log.push(line);
            }
            Action::Callback(f) => {
                let mut ctx = RuleContext {
                    event,
                    rule_name: &rule_name,
                    bindings,
                    log: &mut self.log,
                    ops: &mut ops,
                };
                f(&mut ctx);
            }
        }
        let mut out = Vec::with_capacity(ops.len());
        for op in ops {
            let ev = match op {
                DbOp::Insert { relation, values } => self.db.insert_event(&relation, values)?,
                DbOp::UpdateCurrent { values } => {
                    let (rel, id) = current_target(event)?;
                    self.db.update_event(&rel, id, values)?
                }
                DbOp::DeleteCurrent => {
                    let (rel, id) = current_target(event)?;
                    self.db.delete_event(&rel, id)?
                }
            };
            out.push(ev);
        }
        Ok(out)
    }
}

/// The `(relation, tuple id)` a `*Current` operation applies to.
fn current_target(event: &TupleEvent) -> Result<(String, TupleId), EngineError> {
    match event {
        TupleEvent::Inserted { relation, id, .. } | TupleEvent::Updated { relation, id, .. } => {
            Ok((relation.clone(), *id))
        }
        TupleEvent::Deleted { relation, .. } => {
            Err(EngineError::Catalog(CatalogError::NoSuchRelation(format!(
                "cannot modify the current tuple of a delete event on {relation}"
            ))))
        }
    }
}

/// A rule whose `RuleId` is attached — returned by rule listing.
impl RuleEngine {
    /// Iterates `(id, rule name)` pairs.
    pub fn rules(&self) -> impl Iterator<Item = (RuleId, &str)> {
        self.rules
            .iter()
            .map(|(&id, s)| (RuleId(id), s.rule.name.as_str()))
    }

    /// Iterates `(id, rule name, firings)` — per-rule activity counters
    /// for conflict-set tuning and dead-rule detection.
    pub fn fire_counts(&self) -> impl Iterator<Item = (RuleId, &str, u64)> {
        self.rules
            .iter()
            .map(|(&id, s)| (RuleId(id), s.rule.name.as_str(), s.fired))
    }

    /// The rule registered under `id`, if any.
    pub fn rule(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(&id.0).map(|s| &s.rule)
    }

    /// Iterates `(id, rule, firings)` in unspecified order — the full
    /// per-rule state a snapshot needs to capture.
    pub fn rules_detail(&self) -> impl Iterator<Item = (RuleId, &Rule, u64)> {
        self.rules
            .iter()
            .map(|(&id, s)| (RuleId(id), &s.rule, s.fired))
    }

    /// The current per-mutation firing limit.
    pub fn firing_limit(&self) -> usize {
        self.firing_limit
    }

    /// The id the next registered rule will receive.
    pub fn next_rule_id(&self) -> u32 {
        self.next_rule
    }

    /// Rebuilds an engine from externally persisted state: a restored
    /// database, the surviving rules with their original ids and fire
    /// counts, and the engine counters. Condition predicates are
    /// re-registered through [`ShardedPredicateIndex::insert_many`];
    /// the predicate ids themselves are fresh (they never escape the
    /// engine, so only the rule↔predicate wiring must be rebuilt).
    pub fn restore(
        db: Database,
        rules: Vec<(RuleId, Rule, u64)>,
        next_rule: u32,
        total_fired: u64,
        log: Vec<String>,
    ) -> Result<Self, EngineError> {
        let index = ShardedPredicateIndex::new();
        let mut flat = Vec::new();
        let mut counts = Vec::with_capacity(rules.len());
        for (_, rule, _) in &rules {
            counts.push(rule.conditions.len());
            flat.extend(rule.conditions.iter().cloned());
        }
        let ids = index.insert_many(flat, db.catalog())?;
        let mut stored = FnvHashMap::default();
        let mut pred_to_rule = FnvHashMap::default();
        let mut cursor = 0;
        let mut min_next = next_rule;
        for ((rid, rule, fired), n) in rules.into_iter().zip(counts) {
            let predicate_ids = ids[cursor..cursor + n].to_vec();
            cursor += n;
            for pid in &predicate_ids {
                pred_to_rule.insert(pid.0, rid.0);
            }
            min_next = min_next.max(rid.0 + 1);
            stored.insert(
                rid.0,
                StoredRule {
                    rule,
                    predicate_ids,
                    join_keys: Vec::new(),
                    join_pids: Vec::new(),
                    fired,
                },
            );
        }
        let mut engine = RuleEngine {
            db,
            index,
            rules: stored,
            pred_to_rule,
            pred_to_premise: FnvHashMap::default(),
            joins: JoinEngine::new(),
            next_rule: min_next,
            next_join: 0,
            log,
            firing_limit: 10_000,
            total_fired,
            registry: Arc::new(Registry::disabled()),
            metrics: EngineMetrics::disabled(),
            tracer: Tracer::disabled(),
            profiler: Profiler::disabled(),
        };
        // Re-register join conditions and reseed their memos from the
        // restored database (in rule-id order for determinism). The
        // memo invariant — tokens are exactly the valid premise
        // prefixes over the current tuples — makes the reseeded state
        // identical to the pre-crash incremental state, which
        // [`join_fingerprint`](Self::join_fingerprint) lets callers
        // verify.
        let mut rids: Vec<u32> = engine.rules.keys().copied().collect();
        rids.sort_unstable();
        for rid in rids {
            let joins = engine.rules[&rid].rule.joins.clone();
            if joins.is_empty() {
                continue;
            }
            let (join_keys, join_pids, _) = engine.register_joins(rid, &joins)?;
            // srclint:allow(no-panic-in-lib): rid came from the map's own keys
            let s = engine.rules.get_mut(&rid).expect("restored rule exists");
            s.join_keys = join_keys;
            s.join_pids = join_pids;
        }
        Ok(engine)
    }

    /// Per-rule join-memo statistics, sorted by rule id: one
    /// [`MemoStats`] per join condition. Rules without join conditions
    /// are omitted.
    pub fn join_stats(&self) -> Vec<(RuleId, String, Vec<MemoStats>)> {
        let mut out: Vec<(RuleId, String, Vec<MemoStats>)> = self
            .rules
            .iter()
            .filter(|(_, s)| !s.join_keys.is_empty())
            .map(|(&rid, s)| {
                let stats = s
                    .join_keys
                    .iter()
                    .filter_map(|&k| self.joins.stats_for(k))
                    .collect();
                (RuleId(rid), s.rule.name.clone(), stats)
            })
            .collect();
        out.sort_by_key(|(rid, _, _)| *rid);
        out
    }

    /// Order-independent digest of the whole join-memo state —
    /// identical rule sets over identical databases digest identically
    /// no matter how the state was built (incrementally or reseeded),
    /// which is what the durable layer checks after crash recovery.
    pub fn join_fingerprint(&self) -> u64 {
        self.joins.fingerprint()
    }

    /// Complete join matches of rule `id`: per join condition, the
    /// sorted tuple-id vectors (premise order) currently complete in
    /// the memo. `None` for unknown rules.
    pub fn join_matches(&self, id: RuleId) -> Option<Vec<Vec<Vec<u32>>>> {
        self.rules.get(&id.0).map(|s| {
            s.join_keys
                .iter()
                .map(|&k| self.joins.complete_matches(k))
                .collect()
        })
    }
}
