//! Rule definitions: `if condition then action` (§1 of the paper),
//! extended with multi-premise (join) conditions.

use predicate::{parse_rule_conditions, JoinCondition, ParseError, ParsedCondition, Predicate};
use relation::{Tuple, TupleEvent, TupleId, Value};
use std::fmt;
use std::sync::Arc;

/// Identifier of a registered rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u32);

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule#{}", self.0)
    }
}

/// Which tuple events a rule reacts to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventMask {
    pub on_insert: bool,
    pub on_update: bool,
    pub on_delete: bool,
}

impl EventMask {
    /// Insert + update — the paper's default framing ("each new or
    /// modified tuple").
    pub const INSERT_UPDATE: EventMask = EventMask {
        on_insert: true,
        on_update: true,
        on_delete: false,
    };

    /// Every event kind.
    pub const ALL: EventMask = EventMask {
        on_insert: true,
        on_update: true,
        on_delete: true,
    };

    /// Does the mask accept this event?
    pub fn accepts(&self, event: &TupleEvent) -> bool {
        match event {
            TupleEvent::Inserted { .. } => self.on_insert,
            TupleEvent::Updated { .. } => self.on_update,
            TupleEvent::Deleted { .. } => self.on_delete,
        }
    }
}

/// A database operation queued by a rule action, applied by the engine
/// after the action returns (this is what makes the engine
/// forward-chaining: applied operations raise new events which are
/// matched in turn).
#[derive(Debug, Clone, PartialEq)]
pub enum DbOp {
    /// Insert a tuple.
    Insert {
        relation: String,
        values: Vec<Value>,
    },
    /// Update the tuple the rule fired on (only valid for insert/update
    /// firings).
    UpdateCurrent { values: Vec<Value> },
    /// Delete the tuple the rule fired on.
    DeleteCurrent,
}

/// One premise's bound tuple in a multi-premise (join) firing.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundTuple {
    /// The premise's relation.
    pub relation: String,
    /// Id of the bound tuple.
    pub id: TupleId,
    /// The bound tuple's values at binding time.
    pub tuple: Tuple,
}

/// Execution context handed to a firing rule's action.
pub struct RuleContext<'a> {
    /// The event that matched the rule's condition.
    pub event: &'a TupleEvent,
    /// The firing rule's name.
    pub rule_name: &'a str,
    /// For multi-premise firings: every premise's bound tuple, in
    /// premise order. Empty for single-relation firings.
    pub bindings: &'a [BoundTuple],
    pub(crate) log: &'a mut Vec<String>,
    pub(crate) ops: &'a mut Vec<DbOp>,
}

impl RuleContext<'_> {
    /// Appends a message to the engine log.
    pub fn log(&mut self, message: impl Into<String>) {
        self.log.push(message.into());
    }

    /// Queues a database operation to run after this action returns.
    pub fn queue(&mut self, op: DbOp) {
        self.ops.push(op);
    }
}

/// What a rule does when it fires.
#[derive(Clone)]
pub enum Action {
    /// Append `"<message>: <tuple>"` to the engine log.
    Log(String),
    /// Run arbitrary code with a [`RuleContext`].
    Callback(Arc<dyn Fn(&mut RuleContext<'_>) + Send + Sync>),
}

impl Action {
    /// Convenience constructor for [`Action::Log`].
    pub fn log(message: impl Into<String>) -> Action {
        Action::Log(message.into())
    }

    /// Convenience constructor for [`Action::Callback`].
    pub fn callback(f: impl Fn(&mut RuleContext<'_>) + Send + Sync + 'static) -> Action {
        Action::Callback(Arc::new(f))
    }
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Log(m) => write!(f, "Log({m:?})"),
            Action::Callback(_) => write!(f, "Callback(..)"),
        }
    }
}

/// A production rule / trigger.
#[derive(Debug, Clone)]
pub struct Rule {
    pub name: String,
    /// The single-relation condition conjuncts, already split into DNF:
    /// the rule fires when *any* conjunct matches.
    pub conditions: Vec<Predicate>,
    /// Multi-premise (join) conjuncts — further DNF alternatives whose
    /// complete matches fire the rule through the join memo layer.
    pub joins: Vec<JoinCondition>,
    pub mask: EventMask,
    pub action: Action,
    /// Higher fires first when several rules match one event.
    pub priority: i32,
}

impl Rule {
    /// Starts building a rule called `name`.
    pub fn builder(name: impl Into<String>) -> RuleBuilder {
        RuleBuilder {
            name: name.into(),
            conditions: Vec::new(),
            joins: Vec::new(),
            mask: EventMask::INSERT_UPDATE,
            action: Action::log("fired"),
            priority: 0,
        }
    }
}

/// Builder for [`Rule`].
pub struct RuleBuilder {
    name: String,
    conditions: Vec<Predicate>,
    joins: Vec<JoinCondition>,
    mask: EventMask,
    action: Action,
    priority: i32,
}

impl RuleBuilder {
    /// Sets the condition from source text (disjunctions allowed; they
    /// are split into separate predicates per the paper). Conjuncts
    /// that reference more than one relation become join conditions
    /// (`emp.dno = dept.dno and dept.floor = 1`).
    pub fn when(mut self, condition: &str) -> Result<Self, ParseError> {
        self.conditions.clear();
        self.joins.clear();
        for cond in parse_rule_conditions(condition)? {
            match cond {
                ParsedCondition::Single(p) => self.conditions.push(p),
                ParsedCondition::Join(j) => self.joins.push(j),
            }
        }
        Ok(self)
    }

    /// Sets the condition from already-built predicates.
    pub fn when_predicates(mut self, preds: Vec<Predicate>) -> Self {
        self.conditions = preds;
        self
    }

    /// Adds an already-built join condition as a further alternative.
    pub fn when_join(mut self, join: JoinCondition) -> Self {
        self.joins.push(join);
        self
    }

    /// Sets the event mask.
    pub fn on(mut self, mask: EventMask) -> Self {
        self.mask = mask;
        self
    }

    /// Sets the action.
    pub fn then(mut self, action: Action) -> Self {
        self.action = action;
        self
    }

    /// Sets the priority (higher fires first).
    pub fn priority(mut self, p: i32) -> Self {
        self.priority = p;
        self
    }

    /// Finishes the rule. Panics if no condition was set (a rule with no
    /// condition is a programming error, not a data error).
    pub fn build(self) -> Rule {
        assert!(
            !self.conditions.is_empty() || !self.joins.is_empty(),
            "rule {:?} has no condition",
            self.name
        );
        Rule {
            name: self.name,
            conditions: self.conditions,
            joins: self.joins,
            mask: self.mask,
            action: self.action,
            priority: self.priority,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_basics() {
        let r = Rule::builder("watch")
            .when("emp.age > 50")
            .unwrap()
            .priority(3)
            .build();
        assert_eq!(r.name, "watch");
        assert_eq!(r.conditions.len(), 1);
        assert_eq!(r.priority, 3);
        assert!(r.mask.on_insert && r.mask.on_update && !r.mask.on_delete);
    }

    #[test]
    fn disjunction_splits_conditions() {
        let r = Rule::builder("extremes")
            .when("emp.age < 20 or emp.age > 60")
            .unwrap()
            .build();
        assert_eq!(r.conditions.len(), 2);
    }

    #[test]
    #[should_panic(expected = "has no condition")]
    fn empty_condition_panics() {
        Rule::builder("nope").build();
    }

    #[test]
    fn event_mask() {
        use relation::{Tuple, TupleId};
        let ev = TupleEvent::Deleted {
            relation: "r".into(),
            id: TupleId(0),
            tuple: Tuple::new(vec![]),
        };
        assert!(!EventMask::INSERT_UPDATE.accepts(&ev));
        assert!(EventMask::ALL.accepts(&ev));
    }
}
